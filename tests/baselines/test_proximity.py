"""Tests for repro.baselines.proximity (the pFP comparator)."""

import numpy as np
import pytest

from repro.baselines.proximity import ProximityPatternMiner
from repro.events.attributed_graph import AttributedGraph
from repro.exceptions import ConfigurationError
from repro.graph.generators import community_ring_graph


@pytest.fixture(scope="module")
def mining_graph():
    graph = community_ring_graph(6, 40, 6.0, 10, random_state=3)
    rng = np.random.default_rng(3)
    community = lambda index: np.arange(index * 40, (index + 1) * 40)
    frequent_a = rng.choice(community(0), 25, replace=False)
    frequent_b = rng.choice(community(0), 25, replace=False)
    rare_a = rng.choice(community(3), 3, replace=False)
    rare_b = rng.choice(community(3), 3, replace=False)
    far = rng.choice(community(4), 25, replace=False)
    return AttributedGraph(
        graph,
        {
            "frequent_a": frequent_a,
            "frequent_b": frequent_b,
            "rare_a": rare_a,
            "rare_b": rare_b,
            "far": far,
        },
    )


class TestProximityPatternMiner:
    def test_frequent_colocated_pair_found(self, mining_graph):
        miner = ProximityPatternMiner(mining_graph, minsup=10 / mining_graph.num_nodes)
        assert miner.discovers_pair("frequent_a", "frequent_b")

    def test_rare_pair_missed(self, mining_graph):
        miner = ProximityPatternMiner(mining_graph, minsup=10 / mining_graph.num_nodes)
        assert not miner.discovers_pair("rare_a", "rare_b")

    def test_far_apart_pair_missed(self, mining_graph):
        miner = ProximityPatternMiner(mining_graph, minsup=10 / mining_graph.num_nodes)
        assert not miner.discovers_pair("frequent_a", "far")

    def test_support_ordering(self, mining_graph):
        miner = ProximityPatternMiner(mining_graph, minsup=1e-9)
        assert miner.pair_support("frequent_a", "frequent_b") > miner.pair_support(
            "rare_a", "rare_b"
        )

    def test_mine_pairs_sorted_by_support(self, mining_graph):
        miner = ProximityPatternMiner(mining_graph, minsup=1e-9)
        patterns = miner.mine_pairs(["frequent_a", "frequent_b", "rare_a", "rare_b"])
        supports = [pattern.support for pattern in patterns]
        assert supports == sorted(supports, reverse=True)
        assert patterns[0].contains_pair("frequent_a", "frequent_b")

    def test_mine_pairs_respects_minsup(self, mining_graph):
        miner = ProximityPatternMiner(mining_graph, minsup=10 / mining_graph.num_nodes)
        patterns = miner.mine_pairs(["frequent_a", "frequent_b", "rare_a", "rare_b"])
        assert all(pattern.support >= miner.minsup for pattern in patterns)

    def test_invalid_damping(self, mining_graph):
        with pytest.raises(ConfigurationError):
            ProximityPatternMiner(mining_graph, minsup=0.1, damping=0.0)

    def test_epsilon_filters_weak_presence(self, mining_graph):
        strict = ProximityPatternMiner(mining_graph, minsup=1e-9, epsilon=0.9)
        lenient = ProximityPatternMiner(mining_graph, minsup=1e-9, epsilon=0.0)
        assert strict.pair_support("frequent_a", "frequent_b") <= lenient.pair_support(
            "frequent_a", "frequent_b"
        )
