"""Tests for repro.baselines.hitting_time."""

import pytest

from repro.baselines.hitting_time import hitting_time_affinity
from repro.events.attributed_graph import AttributedGraph


class TestHittingTimeAffinity:
    def test_range(self, attributed_random):
        affinity = hitting_time_affinity(
            attributed_random, "a", "b", max_steps=3, walks_per_source=5, random_state=1
        )
        assert 0.0 <= affinity <= 1.0

    def test_nearby_events_have_higher_affinity(self, path_graph):
        attributed = AttributedGraph(path_graph, {"a": [0], "near": [1], "far": [5]})
        near = hitting_time_affinity(
            attributed, "a", "near", max_steps=2, walks_per_source=200, random_state=2
        )
        far = hitting_time_affinity(
            attributed, "a", "far", max_steps=2, walks_per_source=200, random_state=2
        )
        assert near > far

    def test_deterministic_given_seed(self, attributed_random):
        first = hitting_time_affinity(attributed_random, "a", "b", random_state=5)
        second = hitting_time_affinity(attributed_random, "a", "b", random_state=5)
        assert first == second

    def test_empty_event_rejected(self, path_graph):
        attributed = AttributedGraph(path_graph, {"a": [0]})
        with pytest.raises(Exception):
            hitting_time_affinity(attributed, "a", "missing")

    def test_invalid_parameters(self, attributed_random):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            hitting_time_affinity(attributed_random, "a", "b", max_steps=0)
