"""Tests for repro.baselines.transaction."""

import pytest

from repro.baselines.transaction import (
    lift,
    transaction_correlation,
    transaction_tau_b_dense,
    transaction_z_dense,
)
from repro.events.event_set import EventLayer
from repro.stats.hypothesis import CorrelationVerdict


@pytest.fixture
def layer():
    # 100 transactions; a on 0..29, b on 20..49 (10 co-occurrences).
    return EventLayer.from_mapping(
        100, {"a": range(0, 30), "b": range(20, 50), "rare": [0], "other": [99]}
    )


class TestLift:
    def test_value(self, layer):
        # lift = N * n11 / (|a| * |b|) = 100 * 10 / 900
        assert lift(layer, "a", "b") == pytest.approx(100 * 10 / 900)

    def test_independent_events_lift_one(self):
        layer = EventLayer.from_mapping(100, {"a": range(0, 50), "b": range(25, 75)})
        assert lift(layer, "a", "b") == pytest.approx(1.0)

    def test_disjoint_events_lift_zero(self, layer):
        assert lift(layer, "rare", "other") == 0.0


class TestTransactionCorrelation:
    def test_positive_association(self):
        layer = EventLayer.from_mapping(200, {"a": range(0, 50), "b": range(0, 60)})
        result = transaction_correlation(layer, "a", "b")
        assert result.tau_b > 0.5
        assert result.z_score > 3.0
        assert result.verdict is CorrelationVerdict.POSITIVE

    def test_negative_association(self):
        layer = EventLayer.from_mapping(100, {"a": range(0, 50), "b": range(50, 100)})
        result = transaction_correlation(layer, "a", "b")
        assert result.tau_b < -0.5
        assert result.verdict is CorrelationVerdict.NEGATIVE

    def test_closed_form_matches_dense_computation(self, layer):
        result = transaction_correlation(layer, "a", "b")
        indicator_a = layer.indicator("a")
        indicator_b = layer.indicator("b")
        assert result.tau_b == pytest.approx(
            transaction_tau_b_dense(indicator_a, indicator_b), abs=1e-10
        )
        assert result.z_score == pytest.approx(
            transaction_z_dense(indicator_a, indicator_b), abs=1e-8
        )

    def test_universal_event_degenerate(self):
        layer = EventLayer.from_mapping(50, {"all": range(50), "b": range(10)})
        result = transaction_correlation(layer, "all", "b")
        assert result.z_score == 0.0

    def test_contingency_recorded(self, layer):
        result = transaction_correlation(layer, "a", "b")
        assert result.contingency == (10, 20, 20, 50)

    def test_matches_scipy_taub_on_dense_vectors(self, layer):
        from scipy import stats as scipy_stats

        indicator_a = layer.indicator("a").astype(float)
        indicator_b = layer.indicator("b").astype(float)
        expected = scipy_stats.kendalltau(indicator_a, indicator_b, variant="b").statistic
        result = transaction_correlation(layer, "a", "b")
        assert result.tau_b == pytest.approx(expected, abs=1e-10)
