"""Tests for repro.baselines.distance (the Section 6 strawman)."""

import pytest

from repro.baselines.distance import average_distance_measure, randomization_test
from repro.events.attributed_graph import AttributedGraph


class TestAverageDistanceMeasure:
    def test_adjacent_events_distance_one(self, path_graph):
        attributed = AttributedGraph(path_graph, {"a": [0, 1], "b": [1, 2]})
        value = average_distance_measure(attributed, "a", "b", random_state=1)
        assert value <= 1.0

    def test_far_events_have_larger_distance(self, path_graph):
        attributed = AttributedGraph(path_graph, {"a": [0], "near": [1], "far": [5]})
        near = average_distance_measure(attributed, "a", "near", random_state=1)
        far = average_distance_measure(attributed, "a", "far", random_state=1)
        assert far > near

    def test_unreachable_penalty(self):
        from repro.graph.adjacency import Graph

        graph = Graph(4)
        graph.add_edge(0, 1)  # nodes 2, 3 are isolated
        attributed = AttributedGraph(graph, {"a": [0], "b": [3]})
        value = average_distance_measure(attributed, "a", "b", unreachable_penalty=99.0)
        assert value == 99.0

    def test_empty_event_rejected(self, path_graph):
        attributed = AttributedGraph(path_graph, {"a": [0]})
        with pytest.raises(Exception):
            average_distance_measure(attributed, "a", "nope")


class TestRandomizationTest:
    def test_attracting_pair_has_small_p(self, two_triangles_graph):
        attributed = AttributedGraph(two_triangles_graph, {"a": [0, 1], "b": [1, 2]})
        result = randomization_test(attributed, "a", "b", num_randomizations=30,
                                    random_state=3)
        assert result.observed <= result.null_mean
        assert 0.0 < result.empirical_p_value <= 1.0

    def test_fields_populated(self, attributed_random):
        result = randomization_test(attributed_random, "a", "b", num_randomizations=5,
                                    max_sources=10, random_state=4)
        assert result.num_randomizations == 5
        assert isinstance(result.z_score, float)

    def test_invalid_rounds(self, attributed_random):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            randomization_test(attributed_random, "a", "b", num_randomizations=0)
