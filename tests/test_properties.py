"""Property-based tests (hypothesis) for the core statistics and structures.

These tests encode the invariants the paper's machinery rests on:
Kendall-statistic bounds and symmetries, the tie-corrected variance algebra,
BFS monotonicity, sampler containment, and estimator consistency between the
weighted and unweighted forms.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.estimators import importance_weighted_estimate, plain_estimate
from repro.graph.csr import CSRGraph
from repro.graph.traversal import BFSEngine
from repro.stats.kendall import kendall_tau_a, kendall_tau_b, pair_concordance_sum
from repro.stats.ties import (
    null_variance_numerator_with_ties,
    tie_corrected_sigma,
    tie_group_sizes,
)

# -- strategies --------------------------------------------------------------

density_vectors = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=3, max_size=40
)

small_int_vectors = st.lists(st.integers(min_value=0, max_value=4), min_size=3, max_size=40)


@st.composite
def paired_vectors(draw, elements=density_vectors):
    x = draw(elements)
    y = draw(st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=len(x), max_size=len(x),
    ))
    return np.asarray(x, dtype=float), np.asarray(y, dtype=float)


@st.composite
def random_graphs(draw):
    num_nodes = draw(st.integers(min_value=2, max_value=30))
    possible = [(u, v) for u in range(num_nodes) for v in range(u + 1, num_nodes)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=60, unique=True)) if possible else []
    return CSRGraph.from_edges(num_nodes, edges)


# -- Kendall statistics -------------------------------------------------------


class TestKendallProperties:
    @given(paired_vectors())
    @settings(max_examples=60, deadline=None)
    def test_tau_bounds_and_antisymmetry(self, pair):
        x, y = pair
        tau = kendall_tau_a(x, y)
        assert -1.0 <= tau <= 1.0
        assert kendall_tau_a(x, -y) == pytest.approx(-tau, abs=1e-12)

    @given(paired_vectors())
    @settings(max_examples=60, deadline=None)
    def test_tau_symmetric_in_arguments(self, pair):
        x, y = pair
        assert kendall_tau_a(x, y) == pytest.approx(kendall_tau_a(y, x), abs=1e-12)

    @given(paired_vectors(elements=small_int_vectors))
    @settings(max_examples=60, deadline=None)
    def test_s_invariant_under_monotone_transform(self, pair):
        # Integer-valued densities keep the affine transform exact, so the
        # invariant is not muddied by floating-point collapse of near-ties.
        x, y = pair
        transformed = 3.0 * np.asarray(x, dtype=float) + 1.0
        assert pair_concordance_sum(x, y) == pair_concordance_sum(transformed, y)

    @given(small_int_vectors)
    @settings(max_examples=60, deadline=None)
    def test_tau_b_bounds_with_ties(self, values):
        x = np.asarray(values, dtype=float)
        y = np.asarray(values[::-1], dtype=float)
        assert -1.0 <= kendall_tau_b(x, y) <= 1.0

    @given(st.lists(st.floats(min_value=0, max_value=1, allow_nan=False),
                    min_size=3, max_size=40, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_self_correlation_is_one(self, values):
        x = np.asarray(values, dtype=float)
        assert kendall_tau_a(x, x) == pytest.approx(1.0)


class TestTieVarianceProperties:
    @given(small_int_vectors, small_int_vectors)
    @settings(max_examples=60, deadline=None)
    def test_variance_non_negative_and_reduced_by_ties(self, x_values, y_values):
        n = min(len(x_values), len(y_values))
        x = np.asarray(x_values[:n], dtype=float)
        y = np.asarray(y_values[:n], dtype=float)
        with_ties = null_variance_numerator_with_ties(
            n, tie_group_sizes(x), tie_group_sizes(y)
        )
        without_ties = null_variance_numerator_with_ties(n, [], [])
        assert with_ties >= -1e-9
        assert with_ties <= without_ties + 1e-9

    @given(paired_vectors())
    @settings(max_examples=40, deadline=None)
    def test_z_score_finite_when_not_degenerate(self, pair):
        x, y = pair
        if np.unique(x).size <= 1 or np.unique(y).size <= 1:
            return
        sigma = tie_corrected_sigma(x, y)
        assert np.isfinite(sigma)
        assert sigma > 0


class TestEstimatorProperties:
    @given(paired_vectors())
    @settings(max_examples=40, deadline=None)
    def test_plain_estimate_bounds(self, pair):
        x, y = pair
        components = plain_estimate(x, y)
        assert -1.0 <= components.estimate <= 1.0
        assert np.isfinite(components.z_score)

    @given(paired_vectors())
    @settings(max_examples=40, deadline=None)
    def test_uniform_weights_match_plain(self, pair):
        x, y = pair
        n = len(x)
        weighted = importance_weighted_estimate(
            x, y, np.ones(n, dtype=int), np.full(n, 1.0 / max(n, 2))
        )
        plain = plain_estimate(x, y)
        assert weighted.estimate == pytest.approx(plain.estimate, abs=1e-9)
        assert weighted.z_score == pytest.approx(plain.z_score, abs=1e-9)


class TestGraphProperties:
    @given(random_graphs(), st.integers(min_value=0, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_vicinity_monotone_in_h(self, graph, hops):
        engine = BFSEngine(graph)
        source = 0
        smaller = set(int(x) for x in engine.vicinity(source, hops))
        larger = set(int(x) for x in engine.vicinity(source, hops + 1))
        assert smaller <= larger
        assert source in smaller

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_batch_bfs_equals_union_of_single_source(self, graph):
        engine = BFSEngine(graph)
        sources = list(range(0, graph.num_nodes, 3)) or [0]
        union = set()
        for source in sources:
            union |= set(int(x) for x in engine.vicinity(source, 2))
        batch = set(int(x) for x in engine.multi_source_vicinity(sources, 2))
        assert batch == union

    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_degrees_sum_to_twice_edges(self, graph):
        assert int(graph.degrees().sum()) == 2 * graph.num_edges


class TestSamplerProperties:
    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=2, max_value=15))
    @settings(max_examples=30, deadline=None)
    def test_batch_bfs_sample_contained_in_population(self, seed, sample_size):
        from repro.graph.generators import erdos_renyi_graph
        from repro.sampling.batch_bfs import BatchBFSSampler

        graph = erdos_renyi_graph(60, 0.05, random_state=seed).to_csr()
        rng = np.random.default_rng(seed)
        event_nodes = rng.choice(60, size=8, replace=False)
        sampler = BatchBFSSampler(graph, random_state=seed)
        sample = sampler.sample(event_nodes, 1, sample_size)
        population = set(int(x) for x in sampler.population(event_nodes, 1))
        assert set(int(x) for x in sample.nodes) <= population
        assert sample.num_distinct == min(sample_size, len(population))
