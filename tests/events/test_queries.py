"""Tests for repro.events.queries."""

import pytest

from repro.events.event_set import EventLayer
from repro.events.queries import (
    contingency_table,
    cooccurrence_count,
    event_node_union,
    jaccard_overlap,
)


@pytest.fixture
def layer():
    return EventLayer.from_mapping(10, {"a": [0, 1, 2, 3], "b": [2, 3, 4], "c": [9]})


class TestQueries:
    def test_union(self, layer):
        assert list(event_node_union(layer, "a", "b")) == [0, 1, 2, 3, 4]

    def test_cooccurrence(self, layer):
        assert cooccurrence_count(layer, "a", "b") == 2
        assert cooccurrence_count(layer, "a", "c") == 0

    def test_jaccard(self, layer):
        assert jaccard_overlap(layer, "a", "b") == pytest.approx(2 / 5)
        assert jaccard_overlap(layer, "a", "c") == 0.0

    def test_contingency_table_sums_to_n(self, layer):
        n11, n10, n01, n00 = contingency_table(layer, "a", "b")
        assert (n11, n10, n01) == (2, 2, 1)
        assert n11 + n10 + n01 + n00 == 10

    def test_contingency_disjoint_events(self, layer):
        n11, n10, n01, n00 = contingency_table(layer, "a", "c")
        assert n11 == 0
        assert n10 == 4
        assert n01 == 1
        assert n00 == 5

    def test_contingency_same_event(self, layer):
        n11, n10, n01, n00 = contingency_table(layer, "a", "a")
        assert n11 == 4
        assert n10 == n01 == 0
        assert n00 == 6
