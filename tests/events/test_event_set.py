"""Tests for repro.events.event_set."""

import numpy as np
import pytest

from repro.events.event_set import EventLayer
from repro.exceptions import EventError, UnknownEventError


class TestConstruction:
    def test_add_occurrence(self):
        layer = EventLayer(5)
        layer.add_occurrence("a", 3)
        assert list(layer.nodes_of("a")) == [3]
        assert layer.events_of(3) == {"a"}

    def test_add_occurrences_deduplicates(self):
        layer = EventLayer(5)
        layer.add_occurrences("a", [1, 2, 2, 1])
        assert layer.occurrence_count("a") == 2

    def test_from_mapping(self):
        layer = EventLayer.from_mapping(10, {"a": [1, 2], "b": range(3)})
        assert layer.occurrence_count("a") == 2
        assert layer.occurrence_count("b") == 3

    def test_out_of_range_node_rejected(self):
        with pytest.raises(EventError):
            EventLayer(3).add_occurrence("a", 5)

    def test_empty_event_name_rejected(self):
        with pytest.raises(EventError):
            EventLayer(3).add_occurrence("", 0)

    def test_negative_num_nodes_rejected(self):
        with pytest.raises(ValueError):
            EventLayer(-1)


class TestQueries:
    @pytest.fixture
    def layer(self):
        return EventLayer.from_mapping(10, {"a": [0, 1, 2], "b": [2, 3], "c": [9]})

    def test_events_sorted(self, layer):
        assert layer.events() == ["a", "b", "c"]
        assert list(layer) == ["a", "b", "c"]

    def test_contains_and_len(self, layer):
        assert "a" in layer and "z" not in layer
        assert len(layer) == 3

    def test_nodes_of_sorted_array(self, layer):
        nodes = layer.nodes_of("a")
        assert isinstance(nodes, np.ndarray)
        assert list(nodes) == [0, 1, 2]

    def test_unknown_event_raises(self, layer):
        with pytest.raises(UnknownEventError):
            layer.nodes_of("missing")
        with pytest.raises(UnknownEventError):
            layer.occurrence_count("missing")

    def test_events_of_returns_copy(self, layer):
        events = layer.events_of(2)
        events.add("zzz")
        assert "zzz" not in layer.events_of(2)

    def test_events_of_node_without_events(self, layer):
        assert layer.events_of(5) == set()

    def test_indicator(self, layer):
        indicator = layer.indicator("b")
        assert indicator.dtype == bool
        assert indicator.sum() == 2
        assert indicator[2] and indicator[3]

    def test_event_sizes(self, layer):
        assert layer.event_sizes() == {"a": 3, "b": 2, "c": 1}

    def test_to_mapping(self, layer):
        assert layer.to_mapping()["a"] == [0, 1, 2]


class TestMutation:
    def test_remove_event(self):
        layer = EventLayer.from_mapping(5, {"a": [0, 1], "b": [1]})
        layer.remove_event("a")
        assert "a" not in layer
        assert layer.events_of(1) == {"b"}
        assert layer.events_of(0) == set()

    def test_remove_unknown_event_raises(self):
        with pytest.raises(UnknownEventError):
            EventLayer(3).remove_event("ghost")

    def test_copy_is_independent(self):
        layer = EventLayer.from_mapping(5, {"a": [0]})
        clone = layer.copy()
        clone.add_occurrence("a", 1)
        assert layer.occurrence_count("a") == 1
        assert clone.occurrence_count("a") == 2


class TestOccurrenceDeltas:
    def test_add_occurrence_reports_novelty(self):
        layer = EventLayer(5)
        assert layer.add_occurrence("a", 1) is True
        assert layer.add_occurrence("a", 1) is False

    def test_version_bumps_only_on_change(self):
        layer = EventLayer.from_mapping(5, {"a": [0, 1]})
        version = layer.version
        layer.add_occurrence("a", 0)
        assert layer.version == version
        layer.add_occurrence("a", 3)
        assert layer.version == version + 1

    def test_remove_occurrence(self):
        layer = EventLayer.from_mapping(5, {"a": [0, 1], "b": [1]})
        assert layer.remove_occurrence("a", 1) is True
        assert layer.events_of(1) == {"b"}
        assert list(layer.nodes_of("a")) == [0]

    def test_remove_absent_occurrence_is_noop(self):
        layer = EventLayer.from_mapping(5, {"a": [0]})
        version = layer.version
        assert layer.remove_occurrence("a", 4) is False
        assert layer.remove_occurrence("ghost", 0) is False
        assert layer.version == version

    def test_removing_last_occurrence_keeps_event_registered(self):
        layer = EventLayer.from_mapping(5, {"a": [2]})
        assert layer.remove_occurrence("a", 2) is True
        assert "a" in layer
        assert layer.nodes_of("a").size == 0
        assert layer.occurrence_count("a") == 0

    def test_copy_preserves_emptied_events(self):
        layer = EventLayer.from_mapping(5, {"a": [2], "b": [3]})
        layer.remove_occurrence("a", 2)
        clone = layer.copy()
        assert "a" in clone
        assert clone.nodes_of("a").size == 0
        assert clone.events_of(3) == {"b"}
