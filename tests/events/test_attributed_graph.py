"""Tests for repro.events.attributed_graph."""

import numpy as np
import pytest

from repro.events.attributed_graph import AttributedGraph
from repro.events.event_set import EventLayer


class TestConstruction:
    def test_from_mutable_graph(self, path_graph):
        attributed = AttributedGraph(path_graph, {"a": [0]})
        assert attributed.num_nodes == 6
        assert attributed.num_edges == 5

    def test_from_csr_graph(self, path_graph):
        attributed = AttributedGraph(path_graph.to_csr(), {"a": [0]})
        assert attributed.num_nodes == 6

    def test_from_event_layer(self, path_graph):
        layer = EventLayer.from_mapping(6, {"a": [1]})
        attributed = AttributedGraph(path_graph, layer)
        assert attributed.events is layer

    def test_mismatched_event_layer_rejected(self, path_graph):
        layer = EventLayer.from_mapping(10, {"a": [1]})
        with pytest.raises(ValueError):
            AttributedGraph(path_graph, layer)

    def test_no_events(self, path_graph):
        attributed = AttributedGraph(path_graph)
        assert attributed.event_names() == []

    def test_invalid_graph_type(self):
        with pytest.raises(TypeError):
            AttributedGraph("nope")

    def test_labels_length_checked(self, path_graph):
        with pytest.raises(ValueError):
            AttributedGraph(path_graph, labels=["only-one"])


class TestEventHelpers:
    def test_event_nodes_and_union(self, attributed_path):
        assert list(attributed_path.event_nodes("a")) == [0, 1]
        assert list(attributed_path.event_union("a", "b")) == [0, 1, 4, 5]

    def test_event_indicator(self, attributed_path):
        indicator = attributed_path.event_indicator("b")
        assert indicator.sum() == 2

    def test_event_names_and_summary(self, attributed_path):
        assert attributed_path.event_names() == ["a", "b"]
        assert attributed_path.event_summary() == {"a": 2, "b": 2}

    def test_label_of_defaults_to_id(self, attributed_path):
        assert attributed_path.label_of(3) == "3"

    def test_label_of_with_labels(self, path_graph):
        attributed = AttributedGraph(path_graph, {"a": [0]}, labels=list("abcdef"))
        assert attributed.label_of(2) == "c"

    def test_repr(self, attributed_path):
        assert "AttributedGraph" in repr(attributed_path)


class TestVicinityIndexSharing:
    def test_same_index_returned(self, attributed_random):
        first = attributed_random.vicinity_index(levels=(1,))
        second = attributed_random.vicinity_index(levels=(1,))
        assert first is second

    def test_new_levels_extend_index(self, attributed_random):
        first = attributed_random.vicinity_index(levels=(1,))
        extended = attributed_random.vicinity_index(levels=(2,))
        assert 1 in extended.levels and 2 in extended.levels


class TestIndicatorCaching:
    def test_indicator_memoised_and_read_only(self, attributed_random):
        first = attributed_random.event_indicator("a")
        second = attributed_random.event_indicator("a")
        assert first is second
        assert not first.flags.writeable

    def test_cache_invalidated_on_event_mutation(self, path_graph):
        attributed = AttributedGraph(path_graph, {"a": [0, 1]})
        before = attributed.event_indicator("a")
        attributed.events.add_occurrence("a", 5)
        after = attributed.event_indicator("a")
        assert before is not after
        assert after[5]

    def test_indicator_matrix_stacks_rows(self, attributed_random):
        matrix = attributed_random.indicator_matrix(["a", "b"])
        assert matrix.shape == (2, attributed_random.num_nodes)
        assert np.array_equal(matrix[0], attributed_random.event_indicator("a"))
        empty = attributed_random.indicator_matrix([])
        assert empty.shape == (0, attributed_random.num_nodes)
