"""Tests for repro.events.intensity."""

import pytest

from repro.events.event_set import EventLayer
from repro.events.intensity import IntensityMap
from repro.exceptions import EventError


@pytest.fixture
def intensity_map():
    layer = EventLayer.from_mapping(6, {"kw": [0, 1, 2]})
    return IntensityMap(layer)


class TestIntensityMap:
    def test_default_intensity_is_one(self, intensity_map):
        assert intensity_map.intensity("kw", 0) == 1.0

    def test_absent_event_is_zero(self, intensity_map):
        assert intensity_map.intensity("kw", 5) == 0.0

    def test_explicit_intensity(self, intensity_map):
        intensity_map.set_intensity("kw", 1, 3.5)
        assert intensity_map.intensity("kw", 1) == 3.5

    def test_update_many(self, intensity_map):
        intensity_map.update("kw", {0: 2.0, 2: 4.0})
        assert intensity_map.intensity("kw", 2) == 4.0

    def test_negative_intensity_rejected(self, intensity_map):
        with pytest.raises(EventError):
            intensity_map.set_intensity("kw", 0, -1.0)

    def test_unknown_event_rejected(self, intensity_map):
        with pytest.raises(EventError):
            intensity_map.set_intensity("missing", 0, 1.0)

    def test_intensity_on_non_occurrence_rejected(self, intensity_map):
        with pytest.raises(EventError):
            intensity_map.set_intensity("kw", 5, 1.0)

    def test_intensity_vector(self, intensity_map):
        intensity_map.set_intensity("kw", 0, 2.0)
        vector = intensity_map.intensity_vector("kw")
        assert vector[0] == 2.0
        assert vector[1] == 1.0
        assert vector[5] == 0.0

    def test_total_intensity(self, intensity_map):
        intensity_map.set_intensity("kw", 0, 2.0)
        assert intensity_map.total_intensity("kw", [0, 1, 5]) == 3.0
