"""Unit tests for the dependency-free metrics registry."""

import math
import threading
import urllib.request

import pytest

from repro.obs import (
    MetricsHTTPServer,
    MetricsRegistry,
    NULL_METRIC,
    NULL_REGISTRY,
)


class TestCounter:
    def test_counts_and_reads_back(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help text")
        counter.inc()
        counter.inc(4)
        assert registry.value("c_total") == 5.0

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_exact_under_thread_hammering(self):
        # A bare += drops increments at bytecode boundaries; the locked
        # counter must reconcile exactly with the number of calls.
        registry = MetricsRegistry()
        counter = registry.counter("hammered_total")
        per_thread, num_threads = 5000, 8

        def hammer():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.value("hammered_total") == per_thread * num_threads


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == 11.5

    def test_pull_callback_read_at_snapshot_time(self):
        registry = MetricsRegistry()
        state = {"n": 1}
        registry.gauge("live").set_function(lambda: state["n"])
        assert registry.value("live") == 1
        state["n"] = 7
        assert registry.value("live") == 7

    def test_broken_callback_reports_nan_not_raise(self):
        registry = MetricsRegistry()
        registry.gauge("broken").set_function(lambda: 1 / 0)
        assert math.isnan(registry.value("broken"))
        assert "broken" in registry.exposition()


class TestHistogram:
    def test_cumulative_buckets_and_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        buckets = hist.cumulative_buckets()
        assert buckets == {"0.1": 1, "1": 3, "+Inf": 4}
        assert hist.count == 4
        assert hist.sum == pytest.approx(6.05)

    def test_rejects_non_monotonic_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("bad", buckets=(1.0, 0.5))


class TestLabels:
    def test_children_created_on_first_use(self):
        registry = MetricsRegistry()
        family = registry.counter("req_total", labels=("method",))
        family.labels(method="rank").inc(3)
        family.labels(method="topk").inc()
        assert registry.value("req_total", method="rank") == 3
        assert registry.value("req_total", method="topk") == 1

    def test_wrong_label_names_raise(self):
        family = MetricsRegistry().counter("req_total", labels=("method",))
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(verb="rank")

    def test_labelled_family_rejects_bare_inc(self):
        family = MetricsRegistry().counter("req_total", labels=("method",))
        with pytest.raises(ValueError, match="labels"):
            family.inc()


class TestRegistry:
    def test_reregistration_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help")
        second = registry.counter("c_total")
        assert first is second

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("name")

    def test_invalid_metric_name_raises(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            MetricsRegistry().counter("bad name")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "a counter").inc(2)
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["c_total"]["type"] == "counter"
        assert snap["c_total"]["values"] == [{"labels": {}, "value": 2.0}]
        hist = snap["h_seconds"]["values"][0]
        assert hist["count"] == 1 and hist["buckets"]["+Inf"] == 1

    def test_value_of_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            MetricsRegistry().value("nope")


class TestExpositionFormat:
    def test_counter_gauge_histogram_render(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "the counter").inc(2)
        registry.gauge("g").set(1.5)
        family = registry.counter("req_total", labels=("method",))
        family.labels(method="rank").inc()
        registry.histogram("h_seconds", buckets=(0.5,)).observe(0.1)
        text = registry.exposition()
        assert "# HELP c_total the counter" in text
        assert "# TYPE c_total counter" in text
        assert "c_total 2" in text
        assert "g 1.5" in text
        assert 'req_total{method="rank"} 1' in text
        assert 'h_seconds_bucket{le="0.5"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_count 1" in text
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", labels=("path",))
        family.labels(path='a"b\\c\nd').inc()
        assert 'path="a\\"b\\\\c\\nd"' in registry.exposition()


class TestNullRegistry:
    def test_disabled_registry_hands_out_null_metric(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("anything")
        assert counter is NULL_METRIC
        counter.inc()
        counter.labels(method="x").observe(1.0)
        assert registry.snapshot() == {}
        assert registry.exposition() == ""

    def test_shared_null_registry_is_disabled(self):
        assert NULL_REGISTRY.enabled is False
        assert NULL_REGISTRY.gauge("g") is NULL_METRIC


class TestHTTPEndpoint:
    def test_serves_exposition_and_404(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "served").inc(3)
        with MetricsHTTPServer(registry, port=0) as server:
            host, port = server.address
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics"
            ) as response:
                assert response.status == 200
                assert "version=0.0.4" in response.headers["Content-Type"]
                body = response.read().decode("utf-8")
            assert "c_total 3" in body
            with urllib.request.urlopen(f"http://{host}:{port}/") as response:
                assert b"/metrics" in response.read()
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"http://{host}:{port}/nope")
        # Closed server is torn down; close() is idempotent.
        server.close()
