"""Unit tests for span trees, fork propagation, the trace buffer and slowlog."""

import json
import logging

import pytest

from repro.obs import (
    SlowRequestLog,
    TraceBuffer,
    attach_remote,
    current_span,
    propagation,
    remote_record,
    stage,
    trace,
)


class TestTraceNesting:
    def test_root_span_is_recorded_via_sink(self):
        seen = []
        with trace("request", sink=seen.append, method="rank") as span:
            assert current_span() is span
        assert seen == [span]
        assert span.duration is not None and span.duration >= 0.0
        assert span.tags == {"method": "rank"}
        assert current_span() is None

    def test_children_nest_and_sink_fires_only_for_root(self):
        seen = []
        with trace("request", sink=seen.append) as root:
            with trace("rank", sink=seen.append) as inner:
                with stage("sampling"):
                    pass
        assert seen == [root]
        assert [child.name for child in root.children] == ["rank"]
        assert [child.name for child in inner.children] == ["sampling"]
        assert inner.trace_id == root.trace_id
        assert inner.parent_id == root.span_id

    def test_sink_sees_span_even_when_body_raises(self):
        seen = []
        with pytest.raises(RuntimeError):
            with trace("request", sink=seen.append):
                raise RuntimeError("boom")
        assert len(seen) == 1 and seen[0].duration is not None

    def test_sink_errors_are_swallowed(self):
        def bad_sink(_span):
            raise RuntimeError("sink broke")

        with trace("request", sink=bad_sink):
            pass  # must not raise

    def test_stage_outside_a_trace_records_nothing(self):
        with stage("sampling") as span:
            assert span is None
        assert current_span() is None

    def test_find_and_to_dict(self):
        with trace("request") as root:
            with stage("density"):
                with stage("density"):
                    pass
        assert len(root.find("density")) == 2
        tree = root.to_dict()
        assert tree["name"] == "request"
        assert tree["children"][0]["children"][0]["name"] == "density"
        json.dumps(tree)  # JSON-safe

    def test_child_seconds_bounded_by_parent(self):
        with trace("request") as root:
            with stage("a"):
                pass
            with stage("b"):
                pass
        assert 0.0 <= root.child_seconds() <= root.duration


class TestForkPropagation:
    def test_propagation_none_outside_trace(self):
        assert propagation() is None
        assert remote_record("w", 0.1, None) is None

    def test_remote_record_grafts_onto_current_span(self):
        with trace("request") as root:
            context = propagation()
            assert context == {
                "trace_id": root.trace_id,
                "span_id": root.span_id,
            }
            # What a worker process would send back over the pool boundary.
            record = remote_record(
                "worker:density_shard", 0.125, context, columns=32
            )
            grafted = attach_remote(record)
        assert grafted in root.children
        assert grafted.remote is True
        assert grafted.duration == 0.125
        assert grafted.tags["columns"] == 32
        assert "pid" in grafted.tags
        assert grafted.trace_id == root.trace_id

    def test_attach_remote_is_noop_outside_trace_or_for_none(self):
        assert attach_remote(None) is None
        record = {"name": "w", "seconds": 0.1}
        assert attach_remote(record) is None  # no current span


class TestTraceBuffer:
    def test_ring_keeps_newest(self):
        buffer = TraceBuffer(maxlen=2)
        spans = []
        for index in range(3):
            with trace(f"r{index}") as span:
                pass
            buffer.record(span)
            spans.append(span)
        assert buffer.recorded == 3
        assert len(buffer) == 2
        assert buffer.spans() == spans[1:]

    def test_snapshot_limits(self):
        buffer = TraceBuffer(maxlen=8)
        for index in range(4):
            with trace(f"r{index}") as span:
                pass
            buffer.record(span)
        assert [t["name"] for t in buffer.snapshot(limit=2)] == ["r2", "r3"]
        assert buffer.snapshot(limit=0) == []
        assert len(buffer.snapshot()) == 4
        buffer.clear()
        assert len(buffer) == 0


class TestSlowRequestLog:
    def _finished_span(self, name="rank"):
        with trace(name) as span:
            pass
        return span

    def test_disabled_by_default(self):
        log = SlowRequestLog()
        assert log.enabled is False
        assert log.maybe_log(self._finished_span()) is False
        assert log.emitted == 0

    def test_emits_json_line_with_span_tree(self, caplog):
        logger = logging.getLogger("test.slowlog")
        log = SlowRequestLog(threshold_seconds=0.0, logger=logger)
        span = self._finished_span()
        with caplog.at_level(logging.WARNING, logger="test.slowlog"):
            assert log.maybe_log(span) is True
        assert log.emitted == 1
        document = json.loads(caplog.records[-1].getMessage())
        assert document["event"] == "slow_request"
        assert document["request"] == "rank"
        assert document["trace_id"] == span.trace_id
        assert document["span_tree"]["name"] == "rank"

    def test_fast_requests_stay_quiet(self):
        log = SlowRequestLog(threshold_seconds=3600.0)
        assert log.maybe_log(self._finished_span()) is False
        assert log.emitted == 0
