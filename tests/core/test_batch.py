"""Tests for repro.core.batch — the batch pair-ranking engine."""

import numpy as np
import pytest

from repro.core.batch import BatchTescEngine, PairRanking, RankedPair, rank_pairs
from repro.core.config import TescConfig
from repro.core.tesc import TescTester
from repro.datasets.synthetic_dblp import make_dblp_like
from repro.exceptions import ConfigurationError, InsufficientSampleError, UnknownEventError
from repro.events.attributed_graph import AttributedGraph
from repro.graph.adjacency import Graph
from repro.graph.generators import community_ring_graph
from repro.stats.hypothesis import CorrelationVerdict


@pytest.fixture(scope="module")
def clustered_attributed():
    """Ring-of-communities graph with attracting, repulsing and noise events."""
    graph = community_ring_graph(10, 60, 6.0, 20, random_state=5)
    rng = np.random.default_rng(5)
    community = lambda index: np.arange(index * 60, (index + 1) * 60)
    nodes_x = np.concatenate([
        rng.choice(community(0), 30, replace=False),
        rng.choice(community(1), 15, replace=False),
    ])
    nodes_y = np.concatenate([
        rng.choice(community(0), 30, replace=False),
        rng.choice(community(1), 15, replace=False),
    ])
    nodes_far = np.concatenate([
        rng.choice(community(5), 30, replace=False),
        rng.choice(community(6), 15, replace=False),
    ])
    return AttributedGraph(graph, {"x": nodes_x, "y": nodes_y, "far": nodes_far})


@pytest.fixture(scope="module")
def dblp_dataset():
    """A small DBLP-like dataset with 25 planted and 50 background keywords."""
    return make_dblp_like(
        num_communities=28,
        community_size=60,
        num_positive_pairs=13,
        num_negative_pairs=12,
        num_background_keywords=50,
        random_state=11,
    )


def fifty_pairs(dataset):
    """25 planted pairs + 25 background pairs = 50 pairs (acceptance floor)."""
    pairs = list(dataset.positive_pairs) + list(dataset.negative_pairs)
    background = dataset.background_events
    pairs += [
        (background[i], background[i + 1]) for i in range(0, len(background), 2)
    ]
    assert len(pairs) >= 50
    return pairs


class TestExactAgreement:
    def test_exhaustive_mode_matches_looped_tester_exactly(self, clustered_attributed):
        """Shared-sample restriction reproduces per-pair populations bit-for-bit."""
        config = TescConfig(vicinity_level=1, sampler="exhaustive", random_state=1)
        ranking = BatchTescEngine(clustered_attributed, config).rank_pairs("all")
        tester = TescTester(clustered_attributed, config)
        assert len(ranking) == 3
        for pair in ranking:
            reference = tester.test(pair.event_a, pair.event_b)
            assert pair.score == reference.score
            assert pair.z_score == reference.z_score
            assert pair.p_value == reference.p_value
            assert pair.verdict is reference.verdict
            assert pair.num_reference_nodes == reference.num_reference_nodes

    def test_exhaustive_agreement_across_levels(self, clustered_attributed):
        for level in (1, 2):
            config = TescConfig(
                vicinity_level=level, sampler="exhaustive", random_state=1
            )
            ranking = BatchTescEngine(clustered_attributed, config).rank_pairs("all")
            tester = TescTester(clustered_attributed, config)
            for pair in ranking:
                reference = tester.test(pair.event_a, pair.event_b)
                assert pair.score == reference.score
                assert pair.verdict is reference.verdict


class TestDblpAcceptance:
    def test_fifty_pairs_same_verdicts_with_one_sampling_pass(self, dblp_dataset):
        """The ISSUE acceptance: >= 50 DBLP pairs, verdicts equal to the looped
        per-pair tester at a fixed seed, with sampling + vicinity work done at
        most once per level."""
        attributed = dblp_dataset.attributed
        pairs = fifty_pairs(dblp_dataset)
        # A sample size above the universe population makes both engines
        # exhaustive over their respective populations, so agreement is exact
        # rather than merely probable.
        config = TescConfig(vicinity_level=1, sample_size=5000, random_state=3)

        engine = BatchTescEngine(attributed, config)
        ranking = engine.rank_pairs(pairs)
        assert len(ranking) == len(pairs)
        assert engine.stats.samples_drawn == 1
        assert engine.stats.density_passes == 1
        # One BFS per shared reference node — not per pair.
        assert engine.stats.density_bfs_calls == ranking.sample.num_distinct

        tester = TescTester(attributed, config)
        batch_verdicts = {pair.events: pair.verdict for pair in ranking}
        for event_a, event_b in pairs:
            reference = tester.test(event_a, event_b)
            assert batch_verdicts[(event_a, event_b)] is reference.verdict

    def test_planted_pairs_detected_with_moderate_sample(self, dblp_dataset):
        attributed = dblp_dataset.attributed
        config = TescConfig(vicinity_level=1, sample_size=400, random_state=7)
        ranking = BatchTescEngine(attributed, config).rank_pairs(
            list(dblp_dataset.positive_pairs) + list(dblp_dataset.negative_pairs)
        )
        verdict_of = {pair.events: pair.verdict for pair in ranking}
        for planted in dblp_dataset.positive_pairs:
            assert verdict_of[planted] is CorrelationVerdict.POSITIVE
        for planted in dblp_dataset.negative_pairs:
            assert verdict_of[planted] is CorrelationVerdict.NEGATIVE
        # Ranking by score puts every positive pair above every negative pair.
        positions = {pair.events: pair.rank for pair in ranking}
        best_negative = min(positions[p] for p in dblp_dataset.negative_pairs)
        worst_positive = max(positions[p] for p in dblp_dataset.positive_pairs)
        assert worst_positive < best_negative


class TestRankingBehaviour:
    def test_deterministic_across_engines(self, clustered_attributed):
        config = TescConfig(vicinity_level=1, sample_size=200, random_state=9)
        first = BatchTescEngine(clustered_attributed, config).rank_pairs("all")
        second = BatchTescEngine(clustered_attributed, config).rank_pairs("all")
        assert [pair.events for pair in first] == [pair.events for pair in second]
        assert [pair.score for pair in first] == [pair.score for pair in second]
        assert [pair.z_score for pair in first] == [pair.z_score for pair in second]

    def test_sort_keys_and_top_k(self, clustered_attributed):
        config = TescConfig(vicinity_level=1, sample_size=200, random_state=9)
        engine = BatchTescEngine(clustered_attributed, config)
        by_score = engine.rank_pairs("all", sort_by="score")
        scores = [pair.score for pair in by_score]
        assert scores == sorted(scores, reverse=True)
        assert [pair.rank for pair in by_score] == [1, 2, 3]

        by_p = engine.rank_pairs("all", sort_by="p_value")
        p_values = [pair.p_value for pair in by_p]
        assert p_values == sorted(p_values)

        by_abs = engine.rank_pairs("all", sort_by="abs_z")
        abs_z = [abs(pair.z_score) for pair in by_abs]
        assert abs_z == sorted(abs_z, reverse=True)

        top = engine.rank_pairs("all", top_k=1)
        assert len(top) == 1
        assert top[0].rank == 1

    def test_sample_and_density_caches_reused_across_calls(self, clustered_attributed):
        config = TescConfig(vicinity_level=1, sample_size=200, random_state=9)
        engine = BatchTescEngine(clustered_attributed, config)
        engine.rank_pairs("all")
        assert engine.stats.samples_drawn == 1
        engine.rank_pairs("all", sort_by="abs_z")
        assert engine.stats.samples_drawn == 1
        assert engine.stats.sample_cache_hits >= 1
        assert engine.stats.density_passes == 1

    def test_ranking_stats_are_per_call(self, clustered_attributed):
        config = TescConfig(vicinity_level=1, sample_size=200, random_state=9)
        engine = BatchTescEngine(clustered_attributed, config)
        first = engine.rank_pairs([("x", "y")])
        assert first.stats.num_pairs == 1
        engine.rank_pairs("all")
        # The earlier ranking's stats must not be mutated by later calls.
        assert first.stats.num_pairs == 1
        assert engine.stats.num_pairs == 4

    def test_pair_order_shares_cached_density_pass(self, clustered_attributed):
        config = TescConfig(vicinity_level=1, sample_size=200, random_state=9)
        engine = BatchTescEngine(clustered_attributed, config)
        forward = engine.rank_pairs([("x", "y")])
        backward = engine.rank_pairs([("y", "x")])
        assert engine.stats.density_passes == 1
        assert forward[0].score == backward[0].score

    def test_explicit_pairs_and_convenience_wrapper(self, clustered_attributed):
        ranking = rank_pairs(
            clustered_attributed, [("x", "y")], vicinity_level=1,
            sample_size=200, random_state=9,
        )
        assert isinstance(ranking, PairRanking)
        assert len(ranking) == 1
        assert ranking[0].events == ("x", "y")
        assert ranking[0].verdict is CorrelationVerdict.POSITIVE

    def test_render_and_records(self, clustered_attributed):
        config = TescConfig(vicinity_level=1, sample_size=150, random_state=2)
        ranking = BatchTescEngine(clustered_attributed, config).rank_pairs("all")
        text = ranking.render()
        assert "verdict" in text and "rank" in text
        records = ranking.as_records()
        assert len(records) == 3
        assert records[0]["rank"] == 1
        counts = ranking.verdict_counts()
        assert sum(counts.values()) == 3


class TestDegenerateInputs:
    def test_unknown_event_raises(self, clustered_attributed):
        engine = BatchTescEngine(clustered_attributed)
        with pytest.raises(UnknownEventError):
            engine.rank_pairs([("x", "missing")])

    def test_all_needs_at_least_two_events(self):
        graph = Graph(4)
        graph.add_edges([(0, 1), (1, 2)])
        attributed = AttributedGraph(graph, {"only": [0, 1]})
        with pytest.raises(ConfigurationError):
            BatchTescEngine(attributed).rank_pairs("all")

    def test_self_pair_rejected(self, clustered_attributed):
        engine = BatchTescEngine(clustered_attributed)
        with pytest.raises(ConfigurationError):
            engine.rank_pairs([("x", "x")])

    def test_bad_sort_key_and_insufficient_mode(self, clustered_attributed):
        engine = BatchTescEngine(clustered_attributed)
        with pytest.raises(ConfigurationError):
            engine.rank_pairs("all", sort_by="magic")
        with pytest.raises(ConfigurationError):
            engine.rank_pairs("all", on_insufficient="ignore")

    def test_weighted_sampler_rejected(self, clustered_attributed):
        config = TescConfig(vicinity_level=1, sampler="importance", random_state=1)
        with pytest.raises(ConfigurationError):
            BatchTescEngine(clustered_attributed, config).rank_pairs("all")

    def test_insufficient_population_kept_as_independent(self):
        # Two events stacked on one isolated node: the pair's reference
        # population is that single node, so no estimate is possible.
        graph = Graph(5)
        graph.add_edges([(0, 1), (1, 2)])
        attributed = AttributedGraph(
            graph, {"i1": [4], "i2": [4], "a": [0, 1], "b": [1, 2]}
        )
        config = TescConfig(vicinity_level=1, sampler="exhaustive", random_state=0)
        engine = BatchTescEngine(attributed, config)
        ranking = engine.rank_pairs([("i1", "i2"), ("a", "b")])
        by_pair = {pair.events: pair for pair in ranking}
        starved = by_pair[("i1", "i2")]
        assert starved.insufficient
        assert starved.verdict is CorrelationVerdict.INDEPENDENT
        assert starved.num_reference_nodes == 1
        assert not by_pair[("a", "b")].insufficient
        with pytest.raises(InsufficientSampleError):
            engine.rank_pairs([("i1", "i2")], on_insufficient="raise")

    def test_degenerate_density_vectors_are_independent(self):
        # Both events everywhere: densities are constant 1.0, so the tie
        # structure is degenerate and the z-score is pinned to zero.
        graph = Graph(6)
        graph.add_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
        attributed = AttributedGraph(
            graph, {"all1": range(6), "all2": range(6)}
        )
        config = TescConfig(vicinity_level=1, sampler="exhaustive", random_state=0)
        ranking = BatchTescEngine(attributed, config).rank_pairs([("all1", "all2")])
        pair = ranking[0]
        assert pair.degenerate
        assert pair.z_score == 0.0
        assert pair.verdict is CorrelationVerdict.INDEPENDENT


class TestRankedPairApi:
    def test_str_and_properties(self, clustered_attributed):
        config = TescConfig(vicinity_level=1, sample_size=150, random_state=2)
        ranking = BatchTescEngine(clustered_attributed, config).rank_pairs("all")
        pair = ranking[0]
        assert isinstance(pair, RankedPair)
        assert pair.events == (pair.event_a, pair.event_b)
        assert "score" in str(pair)
        assert ranking.significant_pairs() == tuple(
            p for p in ranking if p.significant
        )
