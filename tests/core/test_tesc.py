"""Tests for repro.core.tesc — the end-to-end TESC tester."""

import numpy as np
import pytest

from repro.core.config import TescConfig
from repro.core.tesc import TescTester, measure_tesc
from repro.events.attributed_graph import AttributedGraph
from repro.graph.generators import community_ring_graph, erdos_renyi_graph
from repro.stats.hypothesis import CorrelationVerdict


@pytest.fixture(scope="module")
def clustered_attributed():
    """A ring-of-communities graph with one attracting and one repulsing pair.

    Events "x" and "y" are spread over the same two communities (attraction);
    events "x" and "far" live on opposite sides of the ring (repulsion).
    """
    graph = community_ring_graph(10, 60, 6.0, 20, random_state=5)
    rng = np.random.default_rng(5)
    community = lambda index: np.arange(index * 60, (index + 1) * 60)
    nodes_x = np.concatenate([
        rng.choice(community(0), 30, replace=False),
        rng.choice(community(1), 15, replace=False),
    ])
    nodes_y = np.concatenate([
        rng.choice(community(0), 30, replace=False),
        rng.choice(community(1), 15, replace=False),
    ])
    nodes_far = np.concatenate([
        rng.choice(community(5), 30, replace=False),
        rng.choice(community(6), 15, replace=False),
    ])
    return AttributedGraph(graph, {"x": nodes_x, "y": nodes_y, "far": nodes_far})


class TestTescTester:
    def test_positive_pair_detected(self, clustered_attributed):
        config = TescConfig(vicinity_level=1, sample_size=250, random_state=1)
        result = TescTester(clustered_attributed, config).test("x", "y")
        assert result.z_score > 2.0
        assert result.verdict is CorrelationVerdict.POSITIVE

    def test_negative_pair_detected(self, clustered_attributed):
        config = TescConfig(vicinity_level=2, sample_size=250, random_state=1)
        result = TescTester(clustered_attributed, config).test("x", "far")
        assert result.z_score < -2.0
        assert result.verdict is CorrelationVerdict.NEGATIVE

    def test_symmetry_of_events(self, clustered_attributed):
        config = TescConfig(vicinity_level=1, sample_size=200, random_state=3)
        tester = TescTester(clustered_attributed, config)
        forward = tester.test("x", "y")
        backward = tester.test("y", "x")
        assert forward.z_score == pytest.approx(backward.z_score, abs=1e-9)

    def test_reproducible_with_seed(self, clustered_attributed):
        config = TescConfig(vicinity_level=1, sample_size=150, random_state=11)
        first = TescTester(clustered_attributed, config).test("x", "y")
        second = TescTester(clustered_attributed, config).test("x", "y")
        assert first.z_score == second.z_score
        assert list(first.sample.nodes) == list(second.sample.nodes)

    def test_score_bounds_and_fields(self, clustered_attributed):
        config = TescConfig(vicinity_level=1, sample_size=150, random_state=2)
        result = TescTester(clustered_attributed, config).test("x", "y")
        assert -1.0 <= result.score <= 1.0
        assert 0.0 <= result.p_value <= 1.0
        assert result.num_reference_nodes == result.sample.num_distinct
        assert set(result.timings) == {"sampling", "densities", "measure"}
        assert "TESC" in str(result)

    def test_all_samplers_agree_on_strong_signal(self, clustered_attributed):
        for sampler in ("batch_bfs", "importance", "whole_graph", "exhaustive"):
            config = TescConfig(
                vicinity_level=1, sample_size=200, sampler=sampler, random_state=5
            )
            result = TescTester(clustered_attributed, config).test("x", "y")
            assert result.z_score > 1.5, sampler

    def test_test_levels_returns_all_levels(self, clustered_attributed):
        config = TescConfig(sample_size=100, random_state=5)
        results = TescTester(clustered_attributed, config).test_levels("x", "y", levels=(1, 2))
        assert set(results) == {1, 2}
        assert results[1].vicinity_level == 1

    def test_one_sided_alternative_respected(self, clustered_attributed):
        config = TescConfig(
            vicinity_level=1, sample_size=200, alternative="less", random_state=5
        )
        result = TescTester(clustered_attributed, config).test("x", "y")
        # Strong positive correlation is *not* significant under the "less" test.
        assert result.verdict is CorrelationVerdict.INDEPENDENT


class TestMeasureTesc:
    def test_convenience_wrapper(self, clustered_attributed):
        result = measure_tesc(
            clustered_attributed, "x", "y", vicinity_level=1, sample_size=150, random_state=1
        )
        assert result.event_a == "x"
        assert result.vicinity_level == 1

    def test_independent_events_usually_not_significant(self):
        # Use a graph dense enough that reference vicinities see several
        # occurrences of each event; with very sparse events the V^h_{a∪b}
        # selection itself induces a small negative bias (Berkson-style
        # conditioning), which is a property of the measure, not a bug.
        graph = erdos_renyi_graph(400, 0.05, random_state=9)
        rng = np.random.default_rng(0)
        detections = 0
        trials = 10
        for trial in range(trials):
            attributed = AttributedGraph(
                graph,
                {
                    "a": rng.choice(400, 60, replace=False),
                    "b": rng.choice(400, 60, replace=False),
                },
            )
            result = measure_tesc(
                attributed, "a", "b", vicinity_level=1, sample_size=150, random_state=trial
            )
            if result.significant:
                detections += 1
        # The Type I error should be near alpha; allow generous head-room.
        assert detections <= 3

    def test_unknown_event_raises(self, clustered_attributed):
        from repro.exceptions import UnknownEventError

        with pytest.raises(UnknownEventError):
            measure_tesc(clustered_attributed, "x", "missing", sample_size=50)
