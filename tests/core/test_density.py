"""Tests for repro.core.density (Eq. 2)."""

import numpy as np
import pytest

from repro.core.density import DensityComputer, density_vectors


class TestDensityComputer:
    def test_density_on_path_graph(self, path_graph):
        # Path 0-1-2-3-4-5, event a on {0, 1}.
        computer = DensityComputer(path_graph.to_csr())
        indicator = np.zeros(6, dtype=bool)
        indicator[[0, 1]] = True
        # 1-vicinity of node 2 is {1, 2, 3}: one occurrence out of three nodes.
        assert computer.density(2, indicator, 1) == pytest.approx(1 / 3)
        # 1-vicinity of node 5 is {4, 5}: no occurrences.
        assert computer.density(5, indicator, 1) == 0.0
        # 2-vicinity of node 2 is {0..4}: two occurrences out of five nodes.
        assert computer.density(2, indicator, 2) == pytest.approx(2 / 5)

    def test_density_includes_reference_node_itself(self, path_graph):
        computer = DensityComputer(path_graph.to_csr())
        indicator = np.zeros(6, dtype=bool)
        indicator[0] = True
        assert computer.density(0, indicator, 1) == pytest.approx(1 / 2)

    def test_density_pair_single_bfs(self, path_graph):
        computer = DensityComputer(path_graph.to_csr())
        indicator_a = np.zeros(6, dtype=bool)
        indicator_a[[0, 1]] = True
        indicator_b = np.zeros(6, dtype=bool)
        indicator_b[[3]] = True
        density_a, density_b = computer.density_pair(2, indicator_a, indicator_b, 1)
        assert density_a == pytest.approx(1 / 3)
        assert density_b == pytest.approx(1 / 3)

    def test_density_pair_uses_one_bfs_per_reference(self, path_graph):
        computer = DensityComputer(path_graph.to_csr())
        indicator = np.zeros(6, dtype=bool)
        computer.density_pair(2, indicator, indicator, 1)
        assert computer.engine.bfs_calls == 1

    def test_density_vectors_shape_and_range(self, attributed_random):
        computer = DensityComputer(attributed_random.csr)
        references = [0, 10, 20, 30]
        densities_a, densities_b = computer.density_vectors(
            references,
            attributed_random.event_indicator("a"),
            attributed_random.event_indicator("b"),
            2,
        )
        assert densities_a.shape == (4,)
        assert np.all((densities_a >= 0) & (densities_a <= 1))
        assert np.all((densities_b >= 0) & (densities_b <= 1))

    def test_invalid_level_rejected(self, path_graph):
        from repro.exceptions import ConfigurationError

        computer = DensityComputer(path_graph.to_csr())
        with pytest.raises(ConfigurationError):
            computer.density(0, np.zeros(6, dtype=bool), 0)


class TestDensityVectorsWrapper:
    def test_matches_direct_computation(self, attributed_path):
        densities_a, densities_b = density_vectors(attributed_path, "a", "b", [1, 2, 4], 1)
        # node 1: vicinity {0,1,2}; a on {0,1} -> 2/3, b on {4,5} -> 0
        assert densities_a[0] == pytest.approx(2 / 3)
        assert densities_b[0] == 0.0
        # node 4: vicinity {3,4,5}; a -> 0, b -> 2/3
        assert densities_a[2] == 0.0
        assert densities_b[2] == pytest.approx(2 / 3)


class TestDensityMatrix:
    def test_matches_density_vectors(self, attributed_random):
        computer = DensityComputer(attributed_random.csr)
        reference_nodes = [3, 17, 40, 99]
        matrix = computer.density_matrix(
            reference_nodes, attributed_random.indicator_matrix(["a", "b"]), 1
        )
        densities_a, densities_b = computer.density_vectors(
            reference_nodes,
            attributed_random.event_indicator("a"),
            attributed_random.event_indicator("b"),
            1,
        )
        assert np.array_equal(matrix.densities[0], densities_a)
        assert np.array_equal(matrix.densities[1], densities_b)
        assert matrix.num_events == 2
        assert matrix.num_reference_nodes == 4
        assert matrix.level == 1

    def test_counts_and_sizes_consistent(self, attributed_random):
        computer = DensityComputer(attributed_random.csr)
        matrix = computer.density_matrix(
            [0, 5, 10], attributed_random.indicator_matrix(["a", "b", "c"]), 2
        )
        recomputed = matrix.counts / matrix.vicinity_sizes[np.newaxis, :]
        assert np.allclose(matrix.densities, recomputed)

    def test_pair_rows_recovers_pair_population(self, attributed_path):
        # On the 6-path with a={0,1}, b={4,5}: node 2 sees a, node 3 sees b,
        # and every node is within one hop of some event node.
        computer = DensityComputer(attributed_path.csr)
        matrix = computer.density_matrix(
            range(6), attributed_path.indicator_matrix(["a", "b"]), 1
        )
        rows = matrix.pair_rows(0, 1)
        assert list(matrix.reference_nodes[rows]) == [0, 1, 2, 3, 4, 5]

    def test_rejects_bad_indicator_shape(self, attributed_path):
        computer = DensityComputer(attributed_path.csr)
        with pytest.raises(ValueError):
            computer.density_matrix([0], np.zeros((2, 3), dtype=bool), 1)


class TestAppendColumns:
    def test_bit_identical_to_one_shot_pass(self, attributed_random):
        computer = DensityComputer(attributed_random.csr)
        indicators = attributed_random.indicator_matrix(["a", "b", "c"])
        nodes = np.arange(0, 60)
        full = computer.density_matrix(nodes, indicators, 2)
        grown = computer.density_matrix(nodes[:25], indicators, 2)
        for stop in (40, 60):
            grown = computer.append_columns(
                grown, nodes[grown.num_reference_nodes:stop], indicators
            )
        assert np.array_equal(grown.densities, full.densities)
        assert np.array_equal(grown.counts, full.counts)
        assert np.array_equal(grown.vicinity_sizes, full.vicinity_sizes)
        assert np.array_equal(grown.reference_nodes, full.reference_nodes)

    def test_row_restricted_append_fills_only_live_rows(self, attributed_random):
        computer = DensityComputer(attributed_random.csr)
        indicators = attributed_random.indicator_matrix(["a", "b", "c"])
        nodes = np.arange(0, 40)
        full = computer.density_matrix(nodes, indicators, 1)
        base = computer.density_matrix(nodes[:15], indicators, 1)
        live = np.array([0, 2])
        grown = computer.append_columns(
            base, nodes[15:], indicators[live], rows=live
        )
        assert np.array_equal(grown.densities[live], full.densities[live])
        # Dead rows keep zero counts in the appended columns (never read).
        assert (grown.counts[1, 15:] == 0).all()
        # Shared per-column quantities are exact regardless of row subset.
        assert np.array_equal(grown.vicinity_sizes, full.vicinity_sizes)

    def test_only_new_nodes_are_traversed(self, attributed_random):
        computer = DensityComputer(attributed_random.csr)
        indicators = attributed_random.indicator_matrix(["a", "b"])
        base = computer.density_matrix(np.arange(30), indicators, 1)
        before = computer.engine.bfs_calls
        computer.append_columns(base, np.arange(30, 40), indicators)
        assert computer.engine.bfs_calls - before == 10

    def test_empty_append_is_identity(self, attributed_random):
        computer = DensityComputer(attributed_random.csr)
        indicators = attributed_random.indicator_matrix(["a", "b"])
        base = computer.density_matrix(np.arange(20), indicators, 1)
        grown = computer.append_columns(base, [], indicators)
        assert np.array_equal(grown.densities, base.densities)

    def test_validates_row_mapping(self, attributed_random):
        computer = DensityComputer(attributed_random.csr)
        indicators = attributed_random.indicator_matrix(["a", "b", "c"])
        base = computer.density_matrix(np.arange(10), indicators, 1)
        with pytest.raises(ValueError, match="rows"):
            computer.append_columns(
                base, [11], indicators[:2], rows=np.array([0])
            )
        with pytest.raises(ValueError, match="pass rows="):
            computer.append_columns(base, [11], indicators[:2])
