"""Tests for repro.core.concordance (Eq. 1)."""

import pytest

from repro.core.concordance import concordance, concordance_counts
from repro.exceptions import EstimationError


class TestConcordanceFunction:
    def test_both_increase(self):
        assert concordance(0.5, 0.2, 0.6, 0.1) == 1

    def test_both_decrease(self):
        assert concordance(0.1, 0.5, 0.2, 0.6) == 1

    def test_opposite_directions(self):
        assert concordance(0.5, 0.2, 0.1, 0.6) == -1

    def test_tie_in_first_event(self):
        assert concordance(0.5, 0.5, 0.1, 0.6) == 0

    def test_tie_in_second_event(self):
        assert concordance(0.5, 0.2, 0.3, 0.3) == 0


class TestConcordanceCounts:
    def test_perfectly_concordant(self):
        concordant, discordant, tied = concordance_counts([1, 2, 3], [4, 5, 6])
        assert (concordant, discordant, tied) == (3, 0, 0)

    def test_perfectly_discordant(self):
        concordant, discordant, tied = concordance_counts([1, 2, 3], [6, 5, 4])
        assert (concordant, discordant, tied) == (0, 3, 0)

    def test_counts_sum_to_pairs(self, rng):
        x = rng.integers(0, 3, size=25).astype(float)
        y = rng.integers(0, 3, size=25).astype(float)
        concordant, discordant, tied = concordance_counts(x, y)
        assert concordant + discordant + tied == 25 * 24 // 2

    def test_matches_pairwise_function(self, rng):
        x = rng.random(12)
        y = rng.random(12)
        concordant, discordant, tied = concordance_counts(x, y)
        expected = sum(
            1
            for i in range(12)
            for j in range(i + 1, 12)
            if concordance(x[i], x[j], y[i], y[j]) == 1
        )
        assert concordant == expected

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(EstimationError):
            concordance_counts([1, 2], [1, 2, 3])

    def test_single_node_rejected(self):
        with pytest.raises(EstimationError):
            concordance_counts([1], [2])
