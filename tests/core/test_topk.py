"""Tests for the progressive top-k engine and its CI-pruning machinery."""

import numpy as np
import pytest

from repro.core.batch import BatchTescEngine
from repro.core.config import TescConfig
from repro.core.topk import (
    ProgressiveTopKEngine,
    asymptotic_tau_sd,
    confidence_half_width,
    derive_growth_factor,
    round_schedule,
    top_k_pairs,
)
from repro.datasets.synthetic_dblp import make_dblp_like
from repro.exceptions import ConfigurationError
from repro.graph.generators import community_ring_graph
from repro.events.attributed_graph import AttributedGraph


# A small DBLP-like workload with planted structure: 2 positive pairs plus
# background keywords.  Budget 400 over an ~1.9k-node graph keeps the whole
# sampler x worker matrix fast while still running 3-4 progressive rounds.
DATASET = make_dblp_like(
    num_communities=24, community_size=60, num_positive_pairs=2,
    num_negative_pairs=1, num_background_keywords=4, random_state=13,
)

# A sharper variant for the pruning-behaviour tests: strongly co-occurring
# planted pairs separate from the background bulk within the first rounds.
SEPARABLE_DATASET = make_dblp_like(
    num_communities=24, community_size=60, num_positive_pairs=2,
    num_negative_pairs=1, num_background_keywords=4,
    cooccurrence_fraction=0.6, keyword_coverage=0.8, communities_per_pair=4,
    random_state=13,
)


def _separable_config(**kwargs):
    kwargs.setdefault("sample_size", 1500)
    kwargs.setdefault("topk_initial_sample_size", 128)
    return _config(**kwargs)


def _config(sampler="batch_bfs", **kwargs):
    kwargs.setdefault("vicinity_level", 1)
    kwargs.setdefault("sample_size", 400)
    kwargs.setdefault("topk_initial_sample_size", 64)
    kwargs.setdefault("random_state", 17)
    return TescConfig(sampler=sampler, **kwargs)


def _signature(pairs):
    return [
        (p.rank, p.events, p.score, p.z_score, p.p_value, p.verdict)
        for p in pairs
    ]


class TestRoundSchedule:
    def test_geometric_until_budget(self):
        assert round_schedule(256, 8000, 2.0) == [256, 512, 1024, 2048, 4096, 8000]

    def test_growth_factor_respected(self):
        sizes = round_schedule(100, 2000, 3.0)
        assert sizes[0] == 100 and sizes[-1] == 2000
        for small, large in zip(sizes, sizes[1:]):
            assert large <= max(small * 3, small + 1)

    def test_budget_below_initial_is_single_round(self):
        assert round_schedule(256, 100, 2.0) == [100]
        assert round_schedule(100, 100, 2.0) == [100]

    def test_fractional_growth_always_advances(self):
        sizes = round_schedule(2, 20, 1.2)
        assert sizes == sorted(set(sizes))
        assert sizes[-1] == 20

    def test_tiny_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            round_schedule(256, 1, 2.0)


class TestDeriveGrowthFactor:
    def test_round_count_recovered(self):
        factor = derive_growth_factor(256, 8000, 6)
        assert len(round_schedule(256, 8000, factor)) == 6

    def test_two_rounds_is_one_jump(self):
        factor = derive_growth_factor(100, 400, 2)
        assert round_schedule(100, 400, factor) == [100, 400]

    def test_degenerate_budget_keeps_default(self):
        assert derive_growth_factor(400, 300, 4) > 1.0

    def test_rejects_fewer_than_two_rounds(self):
        with pytest.raises(ConfigurationError):
            derive_growth_factor(256, 8000, 1)


class TestConfidenceBounds:
    def test_widths_shrink_monotonically_with_sample_size(self):
        for bound in ("asymptotic", "certified"):
            widths = [
                confidence_half_width(0.3, n, n * 4, z_star=2.576, bound=bound)
                for n in (8, 32, 128, 512, 2048)
            ]
            assert widths == sorted(widths, reverse=True)
            assert all(width > 0 for width in widths)

    def test_certified_is_wider_than_asymptotic(self):
        # The paper's 2(1 - tau^2)/n bound is several times the asymptotic
        # variance for moderate tau, so its intervals must be wider.
        for n in (16, 256, 4096):
            certified = confidence_half_width(0.2, n, n, 2.576, "certified")
            asymptotic = confidence_half_width(0.2, n, n, 2.576, "asymptotic")
            assert certified > asymptotic

    def test_projection_term_adds_slack(self):
        tight = confidence_half_width(0.0, 100, 10_000, 2.576)
        loose = confidence_half_width(0.0, 100, 100, 2.576)
        assert loose > tight > 2.576 * asymptotic_tau_sd(100)

    def test_small_samples_rejected(self):
        with pytest.raises(ValueError):
            asymptotic_tau_sd(1)
        with pytest.raises(ValueError):
            confidence_half_width(0.0, 1, 10, 2.576)


class TestValidation:
    def test_sort_by_must_be_score(self):
        engine = ProgressiveTopKEngine(DATASET.attributed, _config())
        with pytest.raises(ConfigurationError, match="score"):
            engine.top_k(3, sort_by="z_score")

    def test_k_must_be_positive(self):
        engine = ProgressiveTopKEngine(DATASET.attributed, _config())
        with pytest.raises(ConfigurationError, match="positive"):
            engine.top_k(0)

    def test_weighted_samplers_rejected(self):
        engine = ProgressiveTopKEngine(DATASET.attributed, _config("importance"))
        with pytest.raises(ConfigurationError, match="importance-weighted"):
            engine.top_k(3)

    def test_on_insufficient_validated(self):
        engine = ProgressiveTopKEngine(DATASET.attributed, _config())
        with pytest.raises(ConfigurationError, match="on_insufficient"):
            engine.top_k(3, on_insufficient="ignore")


class TestIdentityProperty:
    """The headline guarantee: progressive top-k == full-budget top-k.

    The full ranking and the progressive ranking draw through the same
    sampler configuration, so whenever the confidence intervals hold (fixed
    seeds make this deterministic) the surviving pairs' final estimates are
    computed on the identical full-budget sample and must agree bit for bit
    — keys, scores, z-scores, p-values, verdicts and ranks.
    """

    @pytest.mark.parametrize("sampler", ["batch_bfs", "whole_graph", "exhaustive"])
    def test_topk_matches_full_ranking(self, sampler):
        config = _config(sampler)
        full = BatchTescEngine(DATASET.attributed, config).rank_pairs("all")
        for k in (1, 3, 7, len(full)):
            ranking = ProgressiveTopKEngine(DATASET.attributed, config).top_k(k)
            assert _signature(ranking) == _signature(full.top(k)), (
                f"sampler={sampler} k={k}"
            )

    @pytest.mark.parametrize("sampler", ["batch_bfs", "whole_graph", "exhaustive"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_workers_change_nothing(self, sampler, workers):
        config = _config(sampler)
        full = BatchTescEngine(DATASET.attributed, config).rank_pairs("all")
        with ProgressiveTopKEngine(
            DATASET.attributed, config, workers=workers
        ) as engine:
            ranking = engine.top_k(4)
        assert _signature(ranking) == _signature(full.top(4))

    def test_explicit_pair_subset(self):
        config = _config()
        names = DATASET.attributed.event_names()
        subset = [(names[0], names[1]), (names[0], names[2]), (names[3], names[4])]
        full = BatchTescEngine(DATASET.attributed, config).rank_pairs(subset)
        ranking = ProgressiveTopKEngine(DATASET.attributed, config).top_k(
            2, pairs=subset
        )
        assert _signature(ranking) == _signature(full.top(2))

    def test_certified_bound_also_identical(self):
        config = _config(topk_bound="certified")
        full = BatchTescEngine(DATASET.attributed, config).rank_pairs("all")
        ranking = ProgressiveTopKEngine(DATASET.attributed, config).top_k(3)
        assert _signature(ranking) == _signature(full.top(3))


class TestKernelConservatism:
    """Pruning decisions must not depend on the concordance kernel.

    All kernels return the same exact integer S, so the screening estimates
    — and therefore every bound, the k-th threshold and the pruning set —
    are identical whichever kernel computed them.
    """

    @pytest.mark.parametrize("kernel", ["naive", "fast"])
    def test_forced_kernels_match_auto(self, kernel):
        auto = ProgressiveTopKEngine(DATASET.attributed, _config()).top_k(3)
        forced_engine = ProgressiveTopKEngine(
            DATASET.attributed, _config(kendall_kernel=kernel)
        )
        forced = forced_engine.top_k(3)
        assert _signature(forced) == _signature(auto)
        assert [
            (r.pairs_entering, r.pairs_pruned) for r in forced.rounds
        ] == [(r.pairs_entering, r.pairs_pruned) for r in auto.rounds]


class TestEngineBehaviour:
    def test_pruning_happens_and_is_accounted(self):
        ranking = ProgressiveTopKEngine(
            SEPARABLE_DATASET.attributed, _separable_config()
        ).top_k(2)
        stats = ranking.topk_stats
        assert stats.pairs_pruned > 0
        assert stats.pairs_survived >= 2
        assert stats.pairs_pruned + stats.pairs_survived == stats.num_pairs
        assert stats.screen_estimates > 0
        assert stats.final_estimates == stats.pairs_survived
        assert stats.rounds[-1].sample_size == stats.budget
        # Prefix sizes grow strictly monotonically across rounds.
        sizes = [r.sample_size for r in stats.rounds]
        assert sizes == sorted(set(sizes))

    def test_separable_identity_still_holds(self):
        config = _separable_config()
        full = BatchTescEngine(SEPARABLE_DATASET.attributed, config).rank_pairs("all")
        ranking = ProgressiveTopKEngine(
            SEPARABLE_DATASET.attributed, config
        ).top_k(2)
        assert _signature(ranking) == _signature(full.top(2))

    def test_survivors_only_see_full_sample(self):
        ranking = ProgressiveTopKEngine(
            SEPARABLE_DATASET.attributed, _separable_config()
        ).top_k(2)
        final = ranking.topk_stats.rounds[-1]
        assert final.pairs_entering == ranking.topk_stats.pairs_survived
        assert final.pairs_entering < ranking.topk_stats.num_pairs

    def test_kth_lower_bound_tightens(self):
        ranking = ProgressiveTopKEngine(
            SEPARABLE_DATASET.attributed, _separable_config()
        ).top_k(2)
        thresholds = [
            r.kth_lower_bound
            for r in ranking.rounds
            if r.kth_lower_bound is not None
        ]
        assert len(thresholds) >= 2
        assert thresholds[-1] > thresholds[0]

    def test_sample_is_canonical_full_budget_sample(self):
        config = _config()
        ranking = ProgressiveTopKEngine(DATASET.attributed, config).top_k(2)
        full = BatchTescEngine(DATASET.attributed, config).rank_pairs("all")
        np.testing.assert_array_equal(ranking.sample.nodes, full.sample.nodes)

    def test_convenience_wrapper(self):
        ranking = top_k_pairs(
            DATASET.attributed, 2, sample_size=400,
            topk_initial_sample_size=64, random_state=17,
        )
        assert len(ranking) == 2
        assert ranking[0].rank == 1
        assert ranking.k == 2
        assert "rank" in ranking.render()

    def test_k_larger_than_pair_count_returns_everything(self):
        config = _config()
        full = BatchTescEngine(DATASET.attributed, config).rank_pairs("all")
        ranking = ProgressiveTopKEngine(DATASET.attributed, config).top_k(
            len(full) + 10
        )
        assert _signature(ranking) == _signature(full)

    def test_sampler_cache_shared_across_calls(self):
        engine = ProgressiveTopKEngine(DATASET.attributed, _config())
        engine.top_k(2)
        first_draws = engine.stats.samples_drawn
        engine.top_k(3)
        assert engine.stats.samples_drawn == first_draws
        assert engine.stats.sample_cache_hits >= 1


class TestInsufficientPairs:
    """Pairs too sparse to estimate are never pruned and finish like rank_pairs."""

    @pytest.fixture
    def sparse_attributed(self):
        # Two well-connected events plus one event on an isolated clique far
        # from everything else: pairs with the isolated event have almost no
        # shared reference nodes at h=1 under a universe-wide sample.
        graph = community_ring_graph(6, 30, 5.0, 8, random_state=2)
        return AttributedGraph(
            graph,
            {"a": range(0, 30), "b": range(10, 40), "lonely": [150]},
        )

    def test_keep_matches_full_ranking(self, sparse_attributed):
        config = TescConfig(
            sample_size=120, topk_initial_sample_size=16, random_state=5
        )
        full = BatchTescEngine(sparse_attributed, config).rank_pairs(
            "all", on_insufficient="keep"
        )
        ranking = ProgressiveTopKEngine(sparse_attributed, config).top_k(
            len(full), on_insufficient="keep"
        )
        assert _signature(ranking) == _signature(full)
