"""Tests for repro.core.weighted (the distance-weighted Section 6 extension)."""

import numpy as np
import pytest

from repro.core.weighted import distance_weighted_densities, weighted_tesc_score
from repro.events.attributed_graph import AttributedGraph
from repro.exceptions import ConfigurationError


class TestDistanceWeightedDensities:
    def test_path_graph_decay(self, path_graph):
        attributed = AttributedGraph(path_graph, {"a": [0]})
        densities = distance_weighted_densities(attributed, "a", [0, 1, 3], decay=0.5,
                                                max_hops=2)
        # Reference 0: occurrence at distance 0 -> numerator 1.
        assert densities[0] > densities[1] > densities[2]

    def test_decay_one_matches_plain_density(self, path_graph):
        from repro.core.density import DensityComputer

        attributed = AttributedGraph(path_graph, {"a": [0, 1]})
        weighted = distance_weighted_densities(attributed, "a", [2], decay=1.0, max_hops=1)
        plain = DensityComputer(attributed.csr).density(
            2, attributed.event_indicator("a"), 1
        )
        assert weighted[0] == pytest.approx(plain)

    def test_values_in_unit_interval(self, attributed_random):
        densities = distance_weighted_densities(
            attributed_random, "a", range(0, 50, 5), decay=0.5, max_hops=3
        )
        assert np.all((densities >= 0) & (densities <= 1))

    def test_invalid_decay(self, attributed_path):
        with pytest.raises(ConfigurationError):
            distance_weighted_densities(attributed_path, "a", [0], decay=0.0)
        with pytest.raises(ConfigurationError):
            distance_weighted_densities(attributed_path, "a", [0], decay=1.5)


class TestWeightedTescScore:
    def test_score_range(self, attributed_random):
        score, densities_a, densities_b = weighted_tesc_score(
            attributed_random, "a", "b", range(0, 60, 3)
        )
        assert -1.0 <= score <= 1.0
        assert densities_a.shape == densities_b.shape

    def test_same_event_gives_positive_score(self, attributed_random):
        # τ-a over identical density vectors is 1 minus a small tie penalty.
        score, _, _ = weighted_tesc_score(attributed_random, "a", "a", range(0, 60, 3))
        assert score > 0.95
