"""Tests for repro.core.estimators (Eq. 4, Eq. 7, Eq. 8)."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.core.estimators import (
    exact_tau,
    importance_weighted_estimate,
    plain_estimate,
    variance_upper_bound,
)
from repro.exceptions import EstimationError, InsufficientSampleError


class TestPlainEstimate:
    def test_perfect_positive(self):
        x = np.arange(10, dtype=float)
        components = plain_estimate(x, x + 1)
        assert components.estimate == 1.0
        assert components.z_score > 3.0
        assert not components.degenerate

    def test_perfect_negative(self):
        x = np.arange(10, dtype=float)
        components = plain_estimate(x, -x)
        assert components.estimate == -1.0
        assert components.z_score < -3.0

    def test_estimate_in_range(self, rng):
        for _ in range(5):
            components = plain_estimate(rng.random(30), rng.random(30))
            assert -1.0 <= components.estimate <= 1.0

    def test_z_score_matches_scipy_significance(self, rng):
        """Our z-based p-value should track scipy's kendalltau p-value."""
        x = rng.random(120)
        y = x + rng.normal(0, 0.5, size=120)
        components = plain_estimate(x, y)
        _, scipy_p = scipy_stats.kendalltau(x, y)
        our_p = 2 * scipy_stats.norm.sf(abs(components.z_score))
        # Both should call this clearly significant.
        assert our_p < 0.01 and scipy_p < 0.01

    def test_degenerate_when_constant(self):
        components = plain_estimate([1.0, 1.0, 1.0], [1.0, 2.0, 3.0])
        assert components.degenerate
        assert components.z_score == 0.0

    def test_tie_groups_recorded(self):
        components = plain_estimate([1, 1, 2, 3], [1, 2, 2, 3])
        assert components.ties_a == (2,)
        assert components.ties_b == (2,)

    def test_insufficient_sample(self):
        with pytest.raises(InsufficientSampleError):
            plain_estimate([1.0], [2.0])

    def test_mismatched_lengths(self):
        with pytest.raises(EstimationError):
            plain_estimate([1.0, 2.0], [1.0])


class TestImportanceWeightedEstimate:
    def test_uniform_weights_match_plain(self, rng):
        x, y = rng.random(25), rng.random(25)
        plain = plain_estimate(x, y)
        weighted = importance_weighted_estimate(
            x, y, np.ones(25, dtype=int), np.full(25, 0.04)
        )
        assert weighted.estimate == pytest.approx(plain.estimate)
        assert weighted.z_score == pytest.approx(plain.z_score)

    def test_estimate_in_range(self, rng):
        x, y = rng.random(20), rng.random(20)
        frequencies = rng.integers(1, 4, size=20)
        probabilities = rng.random(20) * 0.5 + 0.01
        components = importance_weighted_estimate(x, y, frequencies, probabilities)
        assert -1.0 <= components.estimate <= 1.0

    def test_consistency_toward_exact_tau(self, rng):
        """With every node sampled and weights ∝ 1/p the estimator recovers τ."""
        x, y = rng.random(40), rng.random(40)
        probabilities = rng.random(40) * 0.5 + 0.05
        # Simulate a very large sample: frequencies proportional to probabilities.
        frequencies = np.maximum(1, np.round(probabilities * 10000).astype(int))
        components = importance_weighted_estimate(x, y, frequencies, probabilities)
        assert components.estimate == pytest.approx(exact_tau(x, y), abs=0.05)

    def test_zero_probability_rejected(self):
        with pytest.raises(EstimationError):
            importance_weighted_estimate([1, 2], [1, 2], [1, 1], [0.0, 0.5])

    def test_zero_frequency_rejected(self):
        with pytest.raises(EstimationError):
            importance_weighted_estimate([1, 2], [1, 2], [0, 1], [0.5, 0.5])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(EstimationError):
            importance_weighted_estimate([1, 2, 3], [1, 2, 3], [1, 1], [0.5, 0.5, 0.5])

    def test_degenerate_vector(self):
        components = importance_weighted_estimate(
            [1.0, 1.0, 1.0], [1.0, 2.0, 3.0], [1, 1, 1], [0.3, 0.3, 0.3]
        )
        assert components.degenerate


class TestExactTauAndBound:
    def test_exact_tau_equals_plain_estimate(self, rng):
        x, y = rng.random(30), rng.random(30)
        assert exact_tau(x, y) == pytest.approx(plain_estimate(x, y).estimate)

    def test_variance_upper_bound_formula(self):
        assert variance_upper_bound(0.0, 100) == pytest.approx(0.02)
        assert variance_upper_bound(1.0, 100) == 0.0

    def test_variance_bound_validation(self):
        with pytest.raises(EstimationError):
            variance_upper_bound(2.0, 10)
        # Fewer than two reference nodes: the statistic (and hence the
        # bound) is undefined — a clear ValueError, not a garbage value.
        for bad_size in (0, 1, -3):
            with pytest.raises(ValueError, match="sample_size >= 2"):
                variance_upper_bound(0.5, bad_size)


class TestPairEstimateBatcher:
    def test_matches_plain_estimate(self):
        from repro.core.estimators import PairEstimateBatcher

        rng = np.random.default_rng(3)
        matrix = np.round(rng.random((4, 60)), 2)  # rounding induces ties
        batcher = PairEstimateBatcher(matrix)
        for row_a, row_b in [(0, 1), (0, 2), (2, 3), (1, 3)]:
            batched = batcher.estimate_pair(row_a, row_b)
            direct = plain_estimate(matrix[row_a], matrix[row_b])
            assert batched.estimate == direct.estimate
            assert batched.z_score == direct.z_score
            assert batched.null_sigma == direct.null_sigma
            assert batched.ties_a == direct.ties_a

    def test_matches_plain_estimate_on_column_subset(self):
        from repro.core.estimators import PairEstimateBatcher

        rng = np.random.default_rng(4)
        matrix = np.round(rng.random((3, 50)), 1)
        columns = np.sort(rng.choice(50, size=20, replace=False))
        batcher = PairEstimateBatcher(matrix)
        batched = batcher.estimate_pair(0, 2, columns)
        direct = plain_estimate(matrix[0, columns], matrix[2, columns])
        assert batched.estimate == direct.estimate
        assert batched.z_score == direct.z_score
        assert batched.num_reference_nodes == 20

    def test_rejects_bad_inputs(self):
        from repro.core.estimators import PairEstimateBatcher
        from repro.exceptions import EstimationError, InsufficientSampleError

        with pytest.raises(EstimationError):
            PairEstimateBatcher(np.zeros(5))
        batcher = PairEstimateBatcher(np.zeros((2, 5)))
        with pytest.raises(InsufficientSampleError):
            batcher.estimate_pair(0, 1, np.array([2]))


class TestScreenPair:
    def test_matches_estimate_pair_exactly(self):
        from repro.core.estimators import PairEstimateBatcher

        rng = np.random.default_rng(8)
        matrix = np.round(rng.random((4, 80)), 1)  # tie-heavy
        batcher = PairEstimateBatcher(matrix)
        columns = np.sort(rng.choice(80, size=33, replace=False))
        estimate, count = batcher.screen_pair(0, 3, columns)
        reference = batcher.estimate_pair(0, 3, columns)
        assert estimate == reference.estimate
        assert count == reference.num_reference_nodes

    def test_insufficient_columns_raise(self):
        from repro.core.estimators import PairEstimateBatcher

        batcher = PairEstimateBatcher(np.zeros((2, 5)))
        with pytest.raises(InsufficientSampleError):
            batcher.screen_pair(0, 1, np.array([3]))


class TestBatcherGrown:
    def test_grown_requires_column_prefix(self):
        from repro.core.estimators import PairEstimateBatcher

        rng = np.random.default_rng(9)
        matrix = rng.random((3, 20))
        batcher = PairEstimateBatcher(matrix)
        wider = np.hstack([matrix, rng.random((3, 10))])
        grown = batcher.grown(wider)
        assert grown.num_reference_nodes == 30
        # Same kernel arithmetic over the grown matrix.
        direct = PairEstimateBatcher(wider).estimate_pair(0, 2)
        assert grown.estimate_pair(0, 2).estimate == direct.estimate

    def test_grown_rejects_non_prefix(self):
        from repro.core.estimators import PairEstimateBatcher

        rng = np.random.default_rng(10)
        matrix = rng.random((3, 20))
        batcher = PairEstimateBatcher(matrix)
        with pytest.raises(EstimationError, match="prefix"):
            batcher.grown(rng.random((3, 25)))
        with pytest.raises(EstimationError, match="prefix"):
            batcher.grown(matrix[:, :10])
        with pytest.raises(EstimationError, match="prefix"):
            batcher.grown(rng.random((4, 25)))
