"""Tests for repro.core.parallel — the sharded multi-process ranking engine."""

import time

import numpy as np
import pytest

from repro.core.batch import BatchTescEngine, rank_pairs
from repro.core.config import TescConfig
from repro.core.parallel import (
    ParallelBatchTescEngine,
    rank_pairs_parallel,
    resolve_workers,
    shard_pairs,
    shard_seeds,
)
from repro.service.pool import global_pool
from repro.datasets.synthetic_dblp import make_dblp_like
from repro.events.attributed_graph import AttributedGraph
from repro.exceptions import (
    ConfigurationError,
    InsufficientSampleError,
    UnknownEventError,
)
from repro.graph.adjacency import Graph


@pytest.fixture(scope="module")
def dblp_workload():
    """A DBLP-like dataset plus its pair list (planted + background pairs)."""
    dataset = make_dblp_like(
        num_communities=12,
        community_size=40,
        num_positive_pairs=4,
        num_negative_pairs=4,
        num_background_keywords=12,
        random_state=11,
    )
    pairs = list(dataset.positive_pairs) + list(dataset.negative_pairs)
    background = dataset.background_events
    pairs += [
        (background[i], background[i + 1]) for i in range(0, len(background), 2)
    ]
    return dataset.attributed, pairs


def assert_rankings_identical(serial, parallel):
    assert len(serial) == len(parallel)
    for expected, actual in zip(serial, parallel):
        assert actual.rank == expected.rank
        assert actual.events == expected.events
        assert actual.score == expected.score
        assert actual.z_score == expected.z_score
        assert actual.p_value == expected.p_value
        assert actual.verdict is expected.verdict
        assert actual.num_reference_nodes == expected.num_reference_nodes
        assert actual.insufficient == expected.insufficient


class TestWorkerSweep:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_exhaustive_mode_identical_to_serial(self, dblp_workload, workers):
        """Worker-count sweep: verdicts *and* scores agree bit-for-bit with the
        serial engine when the shared sample is the whole population."""
        attributed, pairs = dblp_workload
        config = TescConfig(vicinity_level=1, sample_size=5000, random_state=3)
        serial = BatchTescEngine(attributed, config).rank_pairs(pairs)
        with ParallelBatchTescEngine(attributed, config, workers=workers) as engine:
            ranking = engine.rank_pairs(pairs)
            assert engine.stats.num_pairs == len(pairs)
        assert_rankings_identical(serial, ranking)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_sampled_mode_identical_to_serial(self, dblp_workload, workers):
        """The shared sample is drawn once in the parent, so even sampled mode
        reproduces the serial engine exactly."""
        attributed, pairs = dblp_workload
        config = TescConfig(vicinity_level=1, sample_size=150, random_state=17)
        serial = BatchTescEngine(attributed, config).rank_pairs(pairs)
        with ParallelBatchTescEngine(attributed, config, workers=workers) as engine:
            ranking = engine.rank_pairs(pairs)
        assert_rankings_identical(serial, ranking)

    def test_shard_stats_recorded(self, dblp_workload):
        attributed, pairs = dblp_workload
        config = TescConfig(vicinity_level=1, sample_size=150, random_state=17)
        with ParallelBatchTescEngine(attributed, config, workers=2) as engine:
            ranking = engine.rank_pairs(pairs)
        assert ranking.stats.workers == 2
        assert ranking.stats.shards == 2
        assert ranking.stats.samples_drawn == 1
        # One column-sharded pass over the shared sample — the workers
        # split its columns, they do not repeat each other's traversal.
        assert ranking.stats.density_passes == 1


class TestParallelBehaviour:
    def test_workers_one_degrades_to_serial_in_process(self, dblp_workload):
        attributed, pairs = dblp_workload
        config = TescConfig(vicinity_level=1, sample_size=150, random_state=5)
        engine = ParallelBatchTescEngine(attributed, config, workers=1)
        batches_before = global_pool().stats.batches_dispatched
        ranking = engine.rank_pairs(pairs)
        # The shared pool was never touched: everything ran in-process.
        assert global_pool().stats.batches_dispatched == batches_before
        serial = BatchTescEngine(attributed, config).rank_pairs(pairs)
        assert_rankings_identical(serial, ranking)

    def test_top_k_and_sort_by(self, dblp_workload):
        attributed, pairs = dblp_workload
        config = TescConfig(vicinity_level=1, sample_size=150, random_state=5)
        serial = BatchTescEngine(attributed, config).rank_pairs(
            pairs, top_k=5, sort_by="abs_z"
        )
        with ParallelBatchTescEngine(attributed, config, workers=2) as engine:
            ranking = engine.rank_pairs(pairs, top_k=5, sort_by="abs_z")
        assert len(ranking) == 5
        assert_rankings_identical(serial, ranking)

    def test_one_shot_pair_iterable(self, dblp_workload):
        """Regression: the serial fallback must reuse the resolved pair list
        rather than re-resolving an already-drained iterator."""
        attributed, pairs = dblp_workload
        config = TescConfig(vicinity_level=1, sample_size=150, random_state=5)
        serial = BatchTescEngine(attributed, config).rank_pairs(pairs)
        engine = ParallelBatchTescEngine(attributed, config, workers=1)
        ranking = engine.rank_pairs(iter(pairs))
        assert_rankings_identical(serial, ranking)
        with ParallelBatchTescEngine(attributed, config, workers=2) as pooled:
            assert_rankings_identical(serial, pooled.rank_pairs(iter(pairs)))

    def test_pool_grows_but_never_shrinks(self, dblp_workload):
        """Smaller calls reuse the existing (larger) pool instead of
        re-forking and losing warm worker caches."""
        attributed, pairs = dblp_workload
        config = TescConfig(vicinity_level=1, sample_size=150, random_state=5)
        pool = global_pool()
        with ParallelBatchTescEngine(attributed, config, workers=3) as engine:
            engine.rank_pairs(pairs)
            assert pool.workers >= 3
            spawned = pool.stats.pools_spawned
            engine.rank_pairs(pairs[:2])  # 2 shards only
            assert pool.workers >= 3  # did not shrink for the smaller call
            assert pool.stats.pools_spawned == spawned  # and did not re-fork

    def test_convenience_wrappers(self, dblp_workload):
        attributed, pairs = dblp_workload
        serial = rank_pairs(
            attributed, pairs, vicinity_level=1, sample_size=150, random_state=5
        )
        via_workers_kwarg = rank_pairs(
            attributed, pairs, workers=2, vicinity_level=1,
            sample_size=150, random_state=5,
        )
        via_parallel = rank_pairs_parallel(
            attributed, pairs, workers=2, vicinity_level=1,
            sample_size=150, random_state=5,
        )
        assert_rankings_identical(serial, via_workers_kwarg)
        assert_rankings_identical(serial, via_parallel)

    def test_pool_reused_across_calls_and_engines(self, dblp_workload):
        """The persistent pool outlives engines: no re-fork per call, and no
        re-fork for a brand-new engine either — the BENCH_pr5 fix."""
        attributed, pairs = dblp_workload
        config = TescConfig(vicinity_level=1, sample_size=150, random_state=5)
        pool = global_pool()
        with ParallelBatchTescEngine(attributed, config, workers=2) as engine:
            engine.rank_pairs(pairs)
            spawned = pool.stats.pools_spawned
            engine.rank_pairs(pairs, sort_by="p_value")
            assert pool.stats.pools_spawned == spawned
        with ParallelBatchTescEngine(attributed, config, workers=2) as fresh:
            fresh.rank_pairs(pairs)
            assert pool.stats.pools_spawned == spawned
        assert pool.running  # engine close leaves the shared pool warm

    def test_estimate_pairs_on_nodes_matches_serial_restriction(self):
        graph = Graph(8)
        graph.add_edges(
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (0, 2)]
        )
        attributed = AttributedGraph(
            graph, {"a": [0, 1, 2], "b": [1, 2, 3], "c": [5, 6, 7]}
        )
        config = TescConfig(vicinity_level=1, sampler="exhaustive", random_state=0)
        engine = BatchTescEngine(attributed, config)
        full = engine.rank_pairs([("a", "b")])
        shard = BatchTescEngine(attributed, config).estimate_pairs_on_nodes(
            [("a", "b")], full.sample.nodes, config
        )
        assert len(shard) == 1
        assert shard[0].score == full[0].score
        assert shard[0].z_score == full[0].z_score
        assert shard[0].verdict is full[0].verdict


class TestWarmPoolPerformance:
    def test_warm_workers_never_much_slower_than_serial(self):
        """Regression guard for the fork-per-call-pool mistake: on the
        BENCH 50-pair workload, a *warm* workers=2 ranking must never fall
        behind serial by more than 1.5x (it historically lost 3-4x because
        every call re-forked the pool and re-ran the whole density pass in
        each shard).  Best-of-N on both sides to shrug off scheduler noise
        on small CI boxes."""
        dataset = make_dblp_like(
            num_communities=28, community_size=60,
            num_positive_pairs=13, num_negative_pairs=12,
            num_background_keywords=50, random_state=11,
        )
        attributed = dataset.attributed
        config = TescConfig(vicinity_level=1, sample_size=900, random_state=17)
        pairs = list(dataset.positive_pairs) + list(dataset.negative_pairs)
        names = attributed.event_names()
        taken = set(pairs)
        for i in range(len(names)):
            if len(pairs) >= 50:
                break
            pair = (names[i], names[(i * 7 + 3) % len(names)])
            if pair[0] != pair[1] and pair not in taken and pair[::-1] not in taken:
                pairs.append(pair)
                taken.add(pair)
        assert len(pairs) == 50

        def best_of(n, fn):
            best, result = float("inf"), None
            for _ in range(n):
                start = time.perf_counter()
                result = fn()
                best = min(best, time.perf_counter() - start)
            return best, result

        # Warm both sides before timing: parent BFS caches, pool workers,
        # shared-memory dataset publication.
        serial_ranking = BatchTescEngine(attributed, config).rank_pairs(pairs)
        with ParallelBatchTescEngine(attributed, config, workers=2) as engine:
            engine.rank_pairs(pairs)

        t_serial, _ = best_of(
            3, lambda: BatchTescEngine(attributed, config).rank_pairs(pairs)
        )
        # Fresh engines per round: the warm state lives in the process-wide
        # pool and on the graph object, exactly as a service would use it.
        t_warm, parallel_ranking = best_of(
            3,
            lambda: ParallelBatchTescEngine(
                attributed, config, workers=2
            ).rank_pairs(pairs),
        )
        assert_rankings_identical(serial_ranking, parallel_ranking)
        assert t_warm <= 1.5 * t_serial, (
            f"warm workers=2 took {t_warm * 1e3:.1f}ms vs serial "
            f"{t_serial * 1e3:.1f}ms ({t_warm / t_serial:.2f}x > 1.5x budget)"
        )


class TestErrorPropagation:
    def test_unknown_event_raises_in_parent(self, dblp_workload):
        attributed, _pairs = dblp_workload
        with ParallelBatchTescEngine(attributed, workers=2) as engine:
            with pytest.raises(UnknownEventError):
                engine.rank_pairs([("kw_pos_0_a", "missing")])

    def test_bad_sort_key_raises(self, dblp_workload):
        attributed, pairs = dblp_workload
        with ParallelBatchTescEngine(attributed, workers=2) as engine:
            with pytest.raises(ConfigurationError):
                engine.rank_pairs(pairs, sort_by="magic")
            with pytest.raises(ConfigurationError):
                engine.rank_pairs(pairs, on_insufficient="ignore")

    def test_weighted_sampler_rejected_in_parent(self, dblp_workload):
        attributed, pairs = dblp_workload
        config = TescConfig(vicinity_level=1, sampler="importance", random_state=1)
        with ParallelBatchTescEngine(attributed, config, workers=2) as engine:
            with pytest.raises(ConfigurationError):
                engine.rank_pairs(pairs)

    def test_insufficient_raise_propagates_from_worker(self):
        graph = Graph(5)
        graph.add_edges([(0, 1), (1, 2)])
        attributed = AttributedGraph(
            graph, {"i1": [4], "i2": [4], "a": [0, 1], "b": [1, 2]}
        )
        config = TescConfig(vicinity_level=1, sampler="exhaustive", random_state=0)
        with ParallelBatchTescEngine(attributed, config, workers=2) as engine:
            ranking = engine.rank_pairs([("i1", "i2"), ("a", "b")])
            by_pair = {pair.events: pair for pair in ranking}
            assert by_pair[("i1", "i2")].insufficient
            with pytest.raises(InsufficientSampleError):
                engine.rank_pairs(
                    [("i1", "i2"), ("a", "b")], on_insufficient="raise"
                )


class TestShardingHelpers:
    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1
        assert resolve_workers(-1) >= 1

    def test_shard_pairs_round_robin(self):
        pairs = [(f"a{i}", f"b{i}") for i in range(7)]
        shards = shard_pairs(pairs, 3)
        assert [len(shard) for shard in shards] == [3, 2, 2]
        flattened = [pair for shard in shards for pair in shard]
        assert sorted(flattened) == sorted(pairs)
        # Never more shards than pairs.
        assert len(shard_pairs(pairs[:2], 8)) == 2

    def test_shard_seeds_deterministic(self):
        first = shard_seeds(42, 4)
        second = shard_seeds(42, 4)
        assert first == second
        assert len(set(first)) == 4
        assert shard_seeds(None, 3) == [None, None, None]
        assert shard_seeds(np.random.default_rng(1), 2) == [None, None]
        assert shard_seeds(42, 0) == []

    def test_shard_seeds_do_not_mutate_seed_sequence_root(self):
        """Repeated calls with the same SeedSequence root must return the
        same seeds (spawn() is stateful; shard_seeds snapshots the root)."""
        root = np.random.SeedSequence(7)
        first = shard_seeds(root, 3)
        second = shard_seeds(root, 3)
        assert first == second == shard_seeds(7, 3)
        assert root.n_children_spawned == 0

    def test_shard_seed_prefix_stable(self):
        """Shard i's seed does not depend on how many shards there are."""
        assert shard_seeds(7, 2) == shard_seeds(7, 4)[:2]
