"""Engine-level agreement tests for the size-dispatched Kendall kernels.

The ISSUE 4 acceptance bar: `BatchTescEngine.rank_pairs` and
`ContinuousRanker` outputs (scores, z-scores, verdicts) must be identical
whichever concordance kernel computes them, for every sampler × worker-count
combination — the kernels return the same exact integer ``S``, so this is a
bit-identity property, not an approximation.
"""

import numpy as np
import pytest

from repro.core.batch import BatchTescEngine
from repro.core.config import TescConfig
from repro.core.estimators import PairEstimateBatcher, plain_estimate
from repro.core.parallel import ParallelBatchTescEngine
from repro.datasets.synthetic_dblp import make_dblp_like
from repro.exceptions import ConfigurationError
from repro.streaming import ContinuousRanker, Delta, DynamicAttributedGraph


@pytest.fixture(scope="module")
def dblp_workload():
    """A DBLP-like dataset plus its pair list (planted + background pairs)."""
    dataset = make_dblp_like(
        num_communities=10,
        community_size=40,
        num_positive_pairs=3,
        num_negative_pairs=3,
        num_background_keywords=8,
        random_state=23,
    )
    pairs = list(dataset.positive_pairs) + list(dataset.negative_pairs)
    background = dataset.background_events
    pairs += [
        (background[i], background[i + 1]) for i in range(0, len(background), 2)
    ]
    return dataset, pairs


def assert_rankings_identical(expected, actual):
    assert len(expected) == len(actual)
    for left, right in zip(expected, actual):
        assert right.rank == left.rank
        assert right.events == left.events
        assert right.score == left.score
        assert right.z_score == left.z_score
        assert right.p_value == left.p_value
        assert right.verdict is left.verdict
        assert right.num_reference_nodes == left.num_reference_nodes


class TestBatchEngineKernelAgreement:
    @pytest.mark.parametrize("sampler", ["batch_bfs", "exhaustive", "whole_graph"])
    def test_rank_pairs_kernel_invariant(self, dblp_workload, sampler):
        """Naive, fast and auto kernels produce bit-identical rankings —
        at n=900-ish sample sizes auto routes to the fast path, so this
        also pins the default configuration against the pre-kernel output."""
        dataset, pairs = dblp_workload
        rankings = {}
        for kernel in ("naive", "fast", "auto"):
            config = TescConfig(
                vicinity_level=1, sample_size=400, random_state=5,
                sampler=sampler, kendall_kernel=kernel,
            )
            engine = BatchTescEngine(dataset.attributed, config)
            rankings[kernel] = engine.rank_pairs(pairs)
        assert_rankings_identical(rankings["naive"], rankings["fast"])
        assert_rankings_identical(rankings["naive"], rankings["auto"])

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_sweep_with_fast_kernel(self, dblp_workload, workers):
        """rank_pairs(workers=1/2/4) is unchanged by the new kernels: every
        worker count with the forced-fast kernel reproduces the serial
        naive-kernel ranking bit for bit."""
        dataset, pairs = dblp_workload
        naive_config = TescConfig(
            vicinity_level=1, sample_size=300, random_state=11,
            kendall_kernel="naive",
        )
        serial = BatchTescEngine(dataset.attributed, naive_config).rank_pairs(pairs)
        fast_config = naive_config.with_kernel("fast")
        with ParallelBatchTescEngine(
            dataset.attributed, fast_config, workers=workers
        ) as engine:
            ranking = engine.rank_pairs(pairs)
        assert_rankings_identical(serial, ranking)

    def test_crossover_override_dispatches_naive(self, dblp_workload):
        """A crossover above the sample size keeps auto on the naive path;
        either way the ranking is identical (dispatch is cost-only)."""
        dataset, pairs = dblp_workload
        high = TescConfig(
            vicinity_level=1, sample_size=200, random_state=7,
            kendall_crossover=10**6,
        )
        low = TescConfig(
            vicinity_level=1, sample_size=200, random_state=7,
            kendall_crossover=2,
        )
        ranking_high = BatchTescEngine(dataset.attributed, high).rank_pairs(pairs)
        ranking_low = BatchTescEngine(dataset.attributed, low).rank_pairs(pairs)
        assert_rankings_identical(ranking_high, ranking_low)


class TestContinuousRankerKernelAgreement:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_streaming_verdicts_kernel_invariant(self, dblp_workload, workers):
        """Two rankers over identical delta streams — one forced naive, one
        forced fast — agree on every score, z-score and verdict after every
        commit."""
        dataset, pairs = dblp_workload
        monitored = pairs[:6]
        rng = np.random.default_rng(31)
        num_nodes = dataset.attributed.num_nodes
        batches = []
        for _ in range(3):
            nodes = rng.integers(0, num_nodes, size=6)
            batches.append(
                [
                    Delta.edge_add(int(nodes[0]), int(nodes[1])),
                    Delta.edge_add(int(nodes[2]), int(nodes[3])),
                    Delta.edge_remove(int(nodes[0]), int(nodes[1])),
                    Delta.event_attach(monitored[0][0], int(nodes[4])),
                    Delta.event_detach(monitored[0][0], int(nodes[4])),
                    Delta.edge_add(int(nodes[4]), int(nodes[5])),
                ]
            )

        def run(kernel):
            dynamic = DynamicAttributedGraph(
                dataset.graph.copy(), dataset.attributed.events.copy()
            )
            config = TescConfig(
                vicinity_level=1, sample_size=250, random_state=13,
                kendall_kernel=kernel,
            )
            with ContinuousRanker(
                dynamic, monitored, config, workers=workers
            ) as ranker:
                deltas = [ranker.commit()]
                for batch in batches:
                    deltas.append(ranker.commit(batch))
                return [delta.ranking for delta in deltas]

        for naive, fast in zip(run("naive"), run("fast")):
            assert_rankings_identical(naive, fast)


class TestColumnCacheRealignment:
    def test_unwatch_reuses_and_realigns_columns(self, dblp_workload):
        """After unwatch shrinks the monitored events, cached columns that
        cover the new event set are reused without a BFS and re-aligned in
        place, so subsequent commits take the aligned fast path again."""
        dataset, pairs = dblp_workload
        dynamic = DynamicAttributedGraph(
            dataset.graph.copy(), dataset.attributed.events.copy()
        )
        config = TescConfig(vicinity_level=1, sample_size=200, random_state=3)
        ranker = ContinuousRanker(dynamic, pairs, config)
        ranker.commit()
        ranker.unwatch([pairs[-1]])
        delta = ranker.commit()
        # The sample is redrawn over the shrunken universe, so brand-new
        # reference nodes need a BFS — but every cached column covering the
        # surviving events is reused without one...
        assert 0 < delta.stats.columns_recomputed < delta.stats.columns_total
        # ...and reused columns were rewritten to the current alignment, so
        # the follow-up commit is all-aligned and recomputes nothing.
        events = tuple(sorted({event for pair in ranker.pairs for event in pair}))
        sampled = set(int(node) for node in delta.ranking.sample.nodes.tolist())
        aligned = [
            entry.events == events
            for node, entry in ranker._columns.items()
            if node in sampled
        ]
        assert aligned and all(aligned)
        follow_up = ranker.commit()
        assert follow_up.stats.columns_recomputed == 0


class TestBatcherRankCache:
    def test_cache_is_linear_in_sample_size(self):
        """The satellite fix: the per-event cache is an O(n) rank vector,
        not an O(n²) sign matrix (and the sign-matrix cache is gone)."""
        n = 500
        rng = np.random.default_rng(3)
        matrix = np.round(rng.random((4, n)), 2)
        batcher = PairEstimateBatcher(matrix)
        batcher.estimate_pair(0, 1)
        batcher.estimate_pair(2, 3)
        assert not hasattr(batcher, "_signs")
        assert set(batcher._ranks) == {0, 1, 2, 3}
        for ranks in batcher._ranks.values():
            assert ranks.ndim == 1
            assert ranks.size == n
            assert ranks.nbytes == 8 * n  # int64 rank vector, not n×n signs

    @pytest.mark.parametrize("kernel", ["naive", "fast", "auto"])
    def test_matches_plain_estimate_on_subsets(self, kernel):
        rng = np.random.default_rng(9)
        matrix = np.round(rng.random((3, 230)), 1)  # heavy ties
        columns = np.sort(rng.choice(230, size=180, replace=False))
        batcher = PairEstimateBatcher(matrix, kernel=kernel)
        batched = batcher.estimate_pair(0, 2, columns)
        direct = plain_estimate(matrix[0, columns], matrix[2, columns])
        assert batched.estimate == direct.estimate
        assert batched.z_score == direct.z_score
        assert batched.concordance_sum == direct.concordance_sum
        assert batched.ties_a == direct.ties_a
        assert batched.ties_b == direct.ties_b


class TestConfigValidation:
    def test_rejects_unknown_kernel(self):
        with pytest.raises(ConfigurationError):
            TescConfig(kendall_kernel="blas")

    def test_rejects_bad_crossover(self):
        with pytest.raises(ConfigurationError):
            TescConfig(kendall_crossover=0)

    def test_with_kernel(self):
        config = TescConfig().with_kernel("fast", kendall_crossover=32)
        assert config.kendall_kernel == "fast"
        assert config.kendall_crossover == 32
        assert TescConfig().kendall_kernel == "auto"

    def test_with_kernel_preserves_configured_crossover(self):
        config = TescConfig(kendall_crossover=500)
        assert config.with_kernel("fast").kendall_crossover == 500
        assert config.with_kernel("auto").kendall_crossover == 500
        assert config.with_kernel("auto", kendall_crossover=None).kendall_crossover is None
