"""Tests for repro.core.config."""

import pytest

from repro.core.config import DEFAULT_SAMPLE_SIZE, TescConfig
from repro.exceptions import ConfigurationError


class TestTescConfig:
    def test_defaults_match_paper(self):
        config = TescConfig()
        assert config.sample_size == DEFAULT_SAMPLE_SIZE == 900
        assert config.alpha == 0.05
        assert config.vicinity_level == 1
        assert config.sampler == "batch_bfs"

    def test_with_level(self):
        config = TescConfig(vicinity_level=1).with_level(3)
        assert config.vicinity_level == 3

    def test_with_sampler(self):
        config = TescConfig().with_sampler("importance", batch_per_vicinity=5)
        assert config.sampler == "importance"
        assert config.batch_per_vicinity == 5

    def test_with_random_state(self):
        config = TescConfig().with_random_state(99)
        assert config.random_state == 99

    @pytest.mark.parametrize("level", [0, -1])
    def test_invalid_level(self, level):
        with pytest.raises(ConfigurationError):
            TescConfig(vicinity_level=level)

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.1])
    def test_invalid_alpha(self, alpha):
        with pytest.raises(ConfigurationError):
            TescConfig(alpha=alpha)

    def test_invalid_alternative(self):
        with pytest.raises(ConfigurationError):
            TescConfig(alternative="both")

    def test_invalid_sample_size(self):
        with pytest.raises(ConfigurationError):
            TescConfig(sample_size=0)

    def test_invalid_sampler_name_type(self):
        with pytest.raises(ConfigurationError):
            TescConfig(sampler="")

    def test_random_state_not_compared(self):
        assert TescConfig(random_state=1) == TescConfig(random_state=2)
