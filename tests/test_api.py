"""Tests for the public Session façade (repro.api) and deprecation shims."""

import warnings

import pytest

import repro
from repro import EpochView, Session, TescConfig, open_session
from repro.core.batch import BatchTescEngine
from repro.events.attributed_graph import AttributedGraph
from repro.exceptions import SnapshotExpiredError
from repro.graph.generators import community_ring_graph
from repro.service.protocol import BadRequestError
from repro.streaming import DynamicAttributedGraph
from repro.streaming.ranker import ContinuousRanker


EVENTS = {"a": range(0, 40), "b": range(20, 60), "c": range(120, 160)}


def _config():
    return TescConfig(sample_size=80, random_state=13)


@pytest.fixture()
def session():
    graph = community_ring_graph(6, 30, 5.0, 8, random_state=2)
    with open_session(graph, _config(), events=EVENTS) as handle:
        yield handle


class TestOpenSession:
    def test_exported_from_package_root(self):
        assert repro.open_session is open_session
        assert repro.Session is Session
        assert repro.EpochView is EpochView

    def test_bare_graph_becomes_dynamic(self, session):
        assert session.dynamic
        assert isinstance(session.graph, DynamicAttributedGraph)
        assert session.epoch == 0

    def test_attributed_graph_accepted(self):
        graph = community_ring_graph(6, 30, 5.0, 8, random_state=2)
        attributed = AttributedGraph(graph, EVENTS)
        with open_session(attributed, _config()) as handle:
            assert handle.dynamic
            # The wrap shares storage instead of copying it.
            assert handle.graph.csr is attributed.csr

    def test_static_session_rejects_commits(self):
        graph = community_ring_graph(6, 30, 5.0, 8, random_state=2)
        with open_session(graph, _config(), events=EVENTS,
                          dynamic=False) as handle:
            assert not handle.dynamic
            with pytest.raises(BadRequestError):
                handle.commit([("edge_add", 0, 100)])

    def test_rejects_junk_graph(self):
        with pytest.raises(TypeError):
            open_session("not a graph", _config())


class TestSessionReads:
    def test_rank_carries_epoch(self, session):
        response = session.rank()
        assert response["epoch"] == 0
        assert response["pairs"]

    def test_rank_matches_reference(self, session):
        response = session.rank()
        reference = session.reference_ranking()
        assert response["pairs"] == [
            {
                "rank": pair.rank, "event_a": pair.event_a,
                "event_b": pair.event_b, "score": pair.score,
                "z_score": pair.z_score, "p_value": pair.p_value,
                "verdict": pair.verdict.value,
                "num_reference_nodes": pair.num_reference_nodes,
                "degenerate": pair.degenerate,
                "insufficient": pair.insufficient,
            }
            for pair in reference.pairs
        ]

    def test_topk_carries_epoch(self, session):
        response = session.topk(2)
        assert response["epoch"] == 0
        assert len(response["pairs"]) == 2

    def test_config_overrides_per_call(self, session):
        small = session.rank(sample_size=40)
        assert small["pairs"]
        assert session.config.sample_size == 80  # session default untouched


class TestSessionCommits:
    def test_commit_shapes(self, session):
        from repro.streaming import Delta, DeltaBatch

        tuple_receipt = session.commit([("event_attach", "a", 100)])
        delta_receipt = session.commit([Delta.event_attach("a", 101)])
        record_receipt = session.commit(
            [{"op": "event_attach", "event": "a", "node": 102}]
        )
        batch_receipt = session.commit(
            DeltaBatch.coerce([Delta.event_attach("a", 103)])
        )
        epochs = [tuple_receipt["epoch"], delta_receipt["epoch"],
                  record_receipt["epoch"], batch_receipt["epoch"]]
        assert epochs == [1, 2, 3, 4]

    def test_unknown_tuple_op_rejected(self, session):
        with pytest.raises(ValueError):
            session.commit([("explode", 1, 2)])

    def test_read_your_writes(self, session):
        before = session.rank()
        receipt = session.commit([("event_attach", "a", 100)])
        after = session.rank(at_epoch=receipt["epoch"])
        assert after["epoch"] == before["epoch"] + 1
        assert after["pairs"] != before["pairs"]


class TestEpochView:
    def test_view_pins_history(self, session):
        before = session.rank()
        with session.at_epoch() as view:
            session.commit([("event_attach", "a", 100)])
            replay = view.rank()
        assert view.epoch == 0
        assert replay["epoch"] == 0
        assert replay["pairs"] == before["pairs"]

    def test_view_reference_ranking_pins(self, session):
        with session.at_epoch() as view:
            session.commit([("event_attach", "a", 100)])
            reference = view.reference_ranking()
            live = session.reference_ranking()
        assert [p.score for p in reference.pairs] != [p.score for p in live.pairs]

    def test_expired_epoch_rejected(self, session):
        session.commit([("event_attach", "a", 100)])
        with pytest.raises(SnapshotExpiredError):
            session.at_epoch(0)
        with pytest.raises(SnapshotExpiredError):
            session.rank(at_epoch=0)

    def test_snapshot_is_frozen(self, session):
        frozen = session.snapshot()
        nodes = list(frozen.event_nodes("a"))
        session.commit([("event_attach", "a", 100)])
        assert list(frozen.event_nodes("a")) == nodes


class TestDeprecationShims:
    def _graph(self):
        graph = community_ring_graph(6, 30, 5.0, 8, random_state=2)
        return AttributedGraph(graph, EVENTS)

    def test_batch_engine_construction_warns(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            BatchTescEngine(self._graph(), _config())
        messages = [str(w.message) for w in caught
                    if issubclass(w.category, DeprecationWarning)]
        assert any("open_session" in message for message in messages)

    def test_continuous_ranker_construction_warns(self):
        dynamic = DynamicAttributedGraph(
            community_ring_graph(6, 30, 5.0, 8, random_state=2), EVENTS
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ContinuousRanker(dynamic, "all", _config())
        messages = [str(w.message) for w in caught
                    if issubclass(w.category, DeprecationWarning)]
        assert any("open_session" in message for message in messages)

    def test_session_reads_do_not_warn(self, session):
        # The façade constructs the engines internally; internal callers
        # must not trip the shim.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            session.rank()
            session.reference_ranking()
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
