"""Crash-consistent checkpoints: every kill phase recovers bit-identically.

The acceptance bar mirrors the WAL chaos suite: whatever phase of the
checkpoint commit a crash lands in — mid-temp-write, pre-rename,
post-rename-but-pre-compact, or an injected fsync failure at *every* fsync
site — a cold boot must produce exactly the ranking a full from-scratch WAL
replay produces, and must replay only the batches past the checkpoint's
coverage when one survives.
"""

import os
import shutil

import pytest

from repro.service import faults
from repro.service.engine import ServiceEngine, pair_record
from repro.service.protocol import UnavailableError
from repro.storage.checkpoint import CheckpointStore, digest_string
from repro.storage.recovery import recover
from repro.streaming.delta import Delta, DeltaBatch, WriteAheadLog

TAIL = 3  # batches committed after the checkpoint — the recovery bound


def _digest(config):
    return digest_string(ServiceEngine._config_digest(config, persistent=True))


def _mutation(events, num_nodes, step):
    """A deterministic, idempotence-free delta for commit ``step``."""
    if step % 3 == 2:
        u = (5 * step) % num_nodes
        v = (5 * step + num_nodes // 2) % num_nodes
        return Delta.edge_add(u, v) if u != v else Delta.edge_add(u, v + 1)
    return Delta.event_attach(events[step % len(events)], (7 * step) % num_nodes)


def _commit(graph, wal, events, step):
    batch = DeltaBatch(deltas=(_mutation(events, graph.num_nodes, step),))
    wal.append_batch(batch)
    graph.apply(batch)


def _ranking(graph, config):
    engine = ServiceEngine(graph, config, workers=1)
    try:
        return [pair_record(p) for p in engine.reference_ranking("all", top_k=5)]
    finally:
        engine.close()


def _full_replay_ranking(make_dynamic_graph, config, wal_path):
    """The oracle: a fresh graph with every WAL batch replayed serially."""
    graph = make_dynamic_graph()
    wal = WriteAheadLog(wal_path, fsync=False)
    try:
        for batch in wal.batches:
            graph.apply(batch)
    finally:
        wal.close()
    return graph, _ranking(graph, config)


def _boot(make_dynamic_graph, config, wal_path, store_root):
    """One cold start through the real recovery ladder."""
    graph = make_dynamic_graph()
    store = CheckpointStore(store_root, fsync=False)
    wal = WriteAheadLog(wal_path, fsync=False)
    try:
        report = recover(graph, wal, store=store, config_digest=_digest(config))
    finally:
        wal.close()
    return graph, report


def _seed(make_dynamic_graph, config, tmp_path, checkpointed=5, tail=TAIL,
          compact=False):
    """Commit ``checkpointed`` batches, cut a checkpoint, commit ``tail``
    more.  ``compact=False`` leaves the WAL un-truncated — exactly the
    state after a kill -9 between the rename and the compaction call."""
    wal_path = os.fspath(tmp_path / "wal.log")
    store_root = os.fspath(tmp_path / "store")
    graph = make_dynamic_graph()
    events = graph.event_names()
    store = CheckpointStore(store_root, fsync=False)
    with WriteAheadLog(wal_path, fsync=False) as wal:
        for step in range(checkpointed):
            _commit(graph, wal, events, step)
        info = store.write(
            graph.snapshot().checkpoint_state(),
            config_digest=_digest(config),
            wal_batches=wal.total_batches,
            wal_offset=wal.committed_offset,
        )
        if compact:
            wal.compact(info.wal_offset)
        for step in range(checkpointed, checkpointed + tail):
            _commit(graph, wal, events, step)
    return wal_path, store_root, info


class TestKillPhases:
    def test_kill_mid_temp_write(self, make_dynamic_graph, chaos_dataset,
                                 tmp_path):
        """Half-written segment files in a tmp- dir: swept, older checkpoint
        still authoritative, state bit-identical to full replay."""
        _dataset, config = chaos_dataset
        wal_path, store_root, info = _seed(make_dynamic_graph, config, tmp_path)
        litter = os.path.join(store_root, "tmp-ckpt-000000000099-0000")
        os.makedirs(litter)
        with open(os.path.join(litter, "indices.bin"), "wb") as handle:
            handle.write(b"\x01\x02\x03 torn mid-write")

        recovered, report = _boot(make_dynamic_graph, config, wal_path,
                                  store_root)
        assert report.path == "checkpoint"
        assert report.checkpoint == info.name
        assert report.replayed_batches == TAIL
        assert not os.path.exists(litter)
        _oracle, expected = _full_replay_ranking(make_dynamic_graph, config,
                                                 wal_path)
        assert _ranking(recovered, config) == expected

    def test_kill_pre_rename(self, make_dynamic_graph, chaos_dataset, tmp_path):
        """A COMPLETE but never-renamed temp checkpoint: it must be ignored
        (rename is the commit point) and the boot falls through to full
        replay — still bit-identical."""
        _dataset, config = chaos_dataset
        wal_path, store_root, info = _seed(make_dynamic_graph, config, tmp_path)
        # Demote the committed checkpoint back to its pre-rename temp name:
        # on disk this is indistinguishable from a kill between the last
        # fsync and the rename.
        os.rename(os.path.join(store_root, info.name),
                  os.path.join(store_root, "tmp-" + info.name))

        recovered, report = _boot(make_dynamic_graph, config, wal_path,
                                  store_root)
        assert report.path == "full_replay"
        assert report.checkpoint is None
        assert report.replayed_batches == 5 + TAIL
        assert CheckpointStore(store_root, fsync=False).list_checkpoints() == []
        _oracle, expected = _full_replay_ranking(make_dynamic_graph, config,
                                                 wal_path)
        assert _ranking(recovered, config) == expected

    def test_kill_post_rename_pre_compact(self, make_dynamic_graph,
                                          chaos_dataset, tmp_path):
        """Checkpoint committed, WAL never compacted: the tail must be
        selected by *total* batch index, so exactly TAIL batches replay and
        the covered prefix is not double-applied."""
        _dataset, config = chaos_dataset
        wal_path, store_root, info = _seed(make_dynamic_graph, config, tmp_path,
                                           compact=False)
        recovered, report = _boot(make_dynamic_graph, config, wal_path,
                                  store_root)
        assert report.path == "checkpoint"
        assert report.replayed_batches == TAIL
        oracle, expected = _full_replay_ranking(make_dynamic_graph, config,
                                                wal_path)
        assert recovered.versions() == oracle.versions()
        assert _ranking(recovered, config) == expected

        # Finishing the interrupted compaction must not change anything:
        # same tail count, same answer, on the now-truncated log.
        with WriteAheadLog(wal_path, fsync=False) as wal:
            assert wal.compact(info.wal_offset) > 0
        again, report2 = _boot(make_dynamic_graph, config, wal_path, store_root)
        assert report2.path == "checkpoint"
        assert report2.replayed_batches == TAIL
        assert _ranking(again, config) == expected


class TestFsyncFaultPhases:
    #: fsync order inside CheckpointStore.write — 4 segment files, the
    #: manifest, the temp directory (pre-rename), the store root (post-
    #: rename).  Arming the seam at each index kills a different phase.
    PHASES = range(1, 8)

    @pytest.mark.parametrize("at", PHASES)
    def test_fault_at_every_fsync_recovers_bit_identical(
        self, at, make_dynamic_graph, chaos_dataset, tmp_path
    ):
        _dataset, config = chaos_dataset
        wal_path = os.fspath(tmp_path / "wal.log")
        store_root = os.fspath(tmp_path / "store")
        graph = make_dynamic_graph()
        events = graph.event_names()
        engine = ServiceEngine(graph, config, workers=1, wal=wal_path,
                               store=store_root)
        try:
            for step in range(5):
                record = _mutation(events, graph.num_nodes, step)
                engine.commit([record.to_record()])
            with faults.armed(
                faults.FaultRule(faults.CHECKPOINT_FSYNC, action="error",
                                 at=at, message=f"fsync died (site {at})")
            ):
                with pytest.raises(UnavailableError):
                    engine.checkpoint(force=True)
            assert engine._m_checkpoint_failures.value == 1
            for step in range(5, 5 + TAIL):
                record = _mutation(events, graph.num_nodes, step)
                engine.commit([record.to_record()])
        finally:
            engine.close()

        recovered, report = _boot(make_dynamic_graph, config, wal_path,
                                  store_root)
        if at == 7:
            # The store-root fsync runs after the atomic rename: the writer
            # reported failure but the checkpoint itself committed.
            assert report.path == "checkpoint"
            assert report.replayed_batches == TAIL
        else:
            assert report.path == "full_replay"
            assert report.replayed_batches == 5 + TAIL
        _oracle, expected = _full_replay_ranking(make_dynamic_graph, config,
                                                 wal_path)
        assert _ranking(recovered, config) == expected
        # Never any half-written litter left behind.
        assert not [
            entry for entry in os.listdir(store_root)
            if entry.startswith("tmp-")
        ]


class TestEngineCheckpointing:
    def test_checkpoint_compacts_and_bounds_the_next_boot(
        self, make_dynamic_graph, chaos_dataset, tmp_path
    ):
        """The happy path end to end at the engine level: checkpoint +
        compaction, then a reboot that replays only the tail."""
        _dataset, config = chaos_dataset
        wal_path = os.fspath(tmp_path / "wal.log")
        store_root = os.fspath(tmp_path / "store")
        graph = make_dynamic_graph()
        events = graph.event_names()
        engine = ServiceEngine(graph, config, workers=1, wal=wal_path,
                               store=store_root)
        try:
            for step in range(5):
                engine.commit([_mutation(events, graph.num_nodes,
                                         step).to_record()])
            result = engine.checkpoint()
            assert not result["skipped"]
            assert result["wal_batches"] == 5
            assert result["reclaimed_bytes"] > 0
            # Same epoch again: deduplicated unless forced.
            assert engine.checkpoint()["skipped"]
            assert not engine.checkpoint(force=True)["skipped"]
            for step in range(5, 5 + TAIL):
                engine.commit([_mutation(events, graph.num_nodes,
                                         step).to_record()])
            assert engine._m_checkpoints.value == 2
        finally:
            engine.close()
        # The WAL was compacted, so a fresh replay of what is left on disk
        # is NOT full history — the oracle is the live pre-kill graph.
        expected = _ranking(graph, config)

        recovered, report = _boot(make_dynamic_graph, config, wal_path,
                                  store_root)
        assert report.path == "checkpoint"
        assert report.replayed_batches == TAIL
        assert recovered.versions() == graph.versions()
        assert _ranking(recovered, config) == expected

    def test_compaction_keeps_retained_fallbacks_replayable(
        self, make_dynamic_graph, chaos_dataset, tmp_path
    ):
        """Two engine checkpoints at different epochs, newest corrupts on
        disk: compaction is bounded by the oldest retained checkpoint's
        coverage, so the fallback still bridges to the surviving tail and
        the reboot is bit-identical to the live pre-kill graph."""
        _dataset, config = chaos_dataset
        wal_path = os.fspath(tmp_path / "wal.log")
        store_root = os.fspath(tmp_path / "store")
        graph = make_dynamic_graph()
        events = graph.event_names()
        engine = ServiceEngine(graph, config, workers=1, wal=wal_path,
                               store=store_root)
        try:
            for step in range(5):
                engine.commit([_mutation(events, graph.num_nodes,
                                         step).to_record()])
            first = engine.checkpoint()
            for step in range(5, 8):
                engine.commit([_mutation(events, graph.num_nodes,
                                         step).to_record()])
            second = engine.checkpoint()
            # The second compaction stops at the FIRST checkpoint's
            # coverage (5 batches, already compacted), not its own (8).
            assert second["wal_batches"] == 8
            assert second["reclaimed_bytes"] == 0
            for step in range(8, 8 + TAIL):
                engine.commit([_mutation(events, graph.num_nodes,
                                         step).to_record()])
        finally:
            engine.close()
        expected = _ranking(graph, config)

        # Corrupt the newest checkpoint: recovery must fall back to the
        # first one and replay batches 6..11 from the surviving tail.
        newest = os.path.join(store_root, second["checkpoint"])
        with open(os.path.join(newest, "indices.bin"), "r+b") as handle:
            handle.seek(4)
            byte = handle.read(1)
            handle.seek(4)
            handle.write(bytes([byte[0] ^ 0xFF]))

        recovered, report = _boot(make_dynamic_graph, config, wal_path,
                                  store_root)
        assert report.path == "fallback"
        assert report.checkpoint == first["checkpoint"]
        assert report.replayed_batches == 3 + TAIL
        assert recovered.versions() == graph.versions()
        assert _ranking(recovered, config) == expected

    def test_checkpoint_retries_when_a_commit_races_the_prebuild(
        self, make_dynamic_graph, chaos_dataset, tmp_path, monkeypatch
    ):
        """A commit landing between the outside-the-lock snapshot prebuild
        and the commit-lock acquisition must not be checkpointed against
        stale state: the engine drops the stale lease and re-pins."""
        _dataset, config = chaos_dataset
        graph = make_dynamic_graph()
        events = graph.event_names()
        engine = ServiceEngine(graph, config, workers=1,
                               wal=os.fspath(tmp_path / "wal.log"),
                               store=os.fspath(tmp_path / "store"))
        try:
            engine.commit([_mutation(events, graph.num_nodes, 0).to_record()])
            real_pin = graph.pin
            raced = {"done": False}

            def racing_pin(epoch=None):
                lease = real_pin(epoch)
                if not raced["done"]:
                    # Slip one mutation in right after the prebuild, before
                    # checkpoint() can take the commit lock.
                    raced["done"] = True
                    graph.apply([_mutation(events, graph.num_nodes, 1)])
                return lease

            monkeypatch.setattr(graph, "pin", racing_pin)
            result = engine.checkpoint(force=True)
            assert not result["skipped"]
            # The cut checkpoint belongs to the post-race epoch, not the
            # stale prebuilt one.
            assert result["epoch"] == graph.epoch
        finally:
            engine.close()

    def test_generator_seed_digest_survives_a_restart(
        self, make_dynamic_graph, chaos_dataset, tmp_path
    ):
        """A non-int random_state (np.random.Generator) must not poison the
        persisted config digest with a process-specific id(): the reboot —
        which constructs its own Generator object — still accepts the
        checkpoint instead of silently falling back to full replay."""
        import numpy as np

        _dataset, base = chaos_dataset
        config = base.with_random_state(np.random.default_rng(17))
        wal_path = os.fspath(tmp_path / "wal.log")
        store_root = os.fspath(tmp_path / "store")
        graph = make_dynamic_graph()
        events = graph.event_names()
        engine = ServiceEngine(graph, config, workers=1, wal=wal_path,
                               store=store_root)
        try:
            for step in range(5):
                engine.commit([_mutation(events, graph.num_nodes,
                                         step).to_record()])
            assert not engine.checkpoint()["skipped"]
        finally:
            engine.close()

        rebooted_config = base.with_random_state(np.random.default_rng(17))
        recovered, report = _boot(make_dynamic_graph, rebooted_config,
                                  wal_path, store_root)
        assert report.path == "checkpoint"
        assert report.replayed_batches == 0
        assert recovered.versions() == graph.versions()
        # In-process memo keys still distinguish distinct generator objects.
        assert (
            ServiceEngine._config_digest(config)
            != ServiceEngine._config_digest(rebooted_config)
        )
        assert ServiceEngine._config_digest(
            config, persistent=True
        ) == ServiceEngine._config_digest(rebooted_config, persistent=True)

    def test_recovery_at_checkpoint_skips_the_duplicate(
        self, make_dynamic_graph, chaos_dataset, tmp_path
    ):
        """Booting exactly at a checkpoint (no tail) must not immediately
        cut an identical one: record_recovery pins the checkpointed epoch."""
        _dataset, config = chaos_dataset
        wal_path, store_root, _info = _seed(make_dynamic_graph, config,
                                            tmp_path, tail=0, compact=True)
        recovered, report = _boot(make_dynamic_graph, config, wal_path,
                                  store_root)
        assert report.replayed_batches == 0
        engine = ServiceEngine(recovered, config, workers=1, wal=wal_path,
                               store=store_root)
        try:
            engine.record_recovery(report)
            assert engine.checkpoint()["skipped"]
            events = recovered.event_names()
            engine.commit([_mutation(events, recovered.num_nodes,
                                     99).to_record()])
            assert not engine.checkpoint()["skipped"]
        finally:
            engine.close()
