"""Shared fixtures for the chaos suite.

Every test here runs with the fault registry disarmed before and after, so
a failing assertion can never leak an armed plan into the next test (or
into the rest of the session's suites).
"""

import contextlib

import pytest

from repro.core.config import TescConfig
from repro.datasets.synthetic_dblp import make_dblp_like
from repro.service import faults
from repro.service.pool import shutdown_global_pool
from repro.streaming.dynamic_graph import DynamicAttributedGraph


@pytest.fixture(autouse=True)
def _disarm_faults():
    """No plan leaks in or out of a test, pass or fail."""
    faults.disarm()
    yield
    faults.disarm()


@pytest.fixture(scope="module")
def chaos_dataset():
    """A small DBLP-like attributed graph plus a matching config."""
    dataset = make_dblp_like(
        num_communities=10,
        community_size=24,
        num_positive_pairs=3,
        num_negative_pairs=2,
        num_background_keywords=8,
        random_state=11,
    )
    config = TescConfig(vicinity_level=1, sample_size=120, random_state=17)
    return dataset, config


@pytest.fixture()
def make_dynamic_graph(chaos_dataset):
    """Factory for fresh dynamic copies of the dataset's graph.

    Chaos scenarios need *several* identical graphs — one per engine or
    server replica being compared bit-for-bit — so this yields a factory
    rather than a single instance.
    """
    dataset, _config = chaos_dataset
    attributed = dataset.attributed

    def _make():
        return DynamicAttributedGraph(
            attributed.csr,
            {name: attributed.event_nodes(name) for name in attributed.event_names()},
        )

    return _make


@contextlib.contextmanager
def running_server(graph, config, **kwargs):
    """Start a CorrelationServer, yield it, and always tear it down."""
    from repro.service.server import CorrelationServer

    server = CorrelationServer(graph, config, **kwargs)
    server.start()
    try:
        yield server
    finally:
        server.close()


@pytest.fixture(scope="session", autouse=True)
def _shutdown_pool_after_session():
    """Leave no worker processes behind once the test session finishes."""
    yield
    shutdown_global_pool()
