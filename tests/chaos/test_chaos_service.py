"""End-to-end chaos: the self-healing service under injected faults.

The acceptance bar for every scenario is *bit-identity*: whatever faults
fire, a retrying client (or the degraded engine) must produce exactly the
answer a fault-free serial run produces — degraded means slower, never
different.
"""

import threading

import pytest

from repro.service import faults
from repro.service.client import CorrelationClient
from repro.service.engine import ServiceEngine
from repro.service.pool import CircuitBreaker, global_pool
from repro.service.protocol import UnavailableError
from repro.streaming.delta import WriteAheadLog

from tests.chaos.conftest import running_server
from tests.service.conftest import shm_segments


def _event_pair(chaos_dataset):
    dataset, _config = chaos_dataset
    return sorted(dataset.attributed.event_names())[0]


@pytest.fixture(scope="module")
def serial_reference(chaos_dataset):
    """The fault-free serial answer every chaos scenario must reproduce."""
    from repro.streaming.dynamic_graph import DynamicAttributedGraph

    dataset, config = chaos_dataset
    attributed = dataset.attributed
    graph = DynamicAttributedGraph(
        attributed.csr,
        {name: attributed.event_nodes(name) for name in attributed.event_names()},
    )
    engine = ServiceEngine(graph, config, workers=1)
    try:
        rank = engine.rank()
        topk = engine.topk(k=3)
    finally:
        engine.close()
    return {"rank": rank["pairs"], "topk": topk["pairs"]}


def _primed_pool(workers=2):
    """The global pool with live worker processes (kills need victims)."""
    pool = global_pool()
    pool.ensure(workers)
    assert pool.probe().ok
    return pool


class TestWorkerKill:
    def test_single_kill_is_transparent_and_bit_identical(
        self, make_dynamic_graph, chaos_dataset, serial_reference
    ):
        _dataset, config = chaos_dataset
        pool = _primed_pool()
        recovered_before = pool.stats.crashes_recovered
        engine = ServiceEngine(make_dynamic_graph(), config, workers=2)
        try:
            with faults.armed(
                faults.FaultRule(
                    faults.WORKER_DISPATCH, action="kill_worker", at=1,
                    times=1, match={"task": "_density_columns_task"},
                )
            ) as plan:
                result = engine.rank()
            assert len(plan.fired_at(faults.WORKER_DISPATCH)) == 1
            assert result["pairs"] == serial_reference["rank"]
            # The kill was absorbed by the pool's transparent respawn: the
            # breaker never saw a failure and nothing is degraded.
            assert pool.stats.crashes_recovered > recovered_before
            assert not engine.supervisor.degraded
            assert engine.describe()["breaker"]["breaker_state"] == "closed"
        finally:
            engine.close()

    def test_crash_loop_trips_breaker_into_serial_fallback(
        self, make_dynamic_graph, chaos_dataset, serial_reference
    ):
        """Worker killed + respawn budget exhausted: the pool goes down for
        good, the breaker opens, and the request completes serially with the
        exact fault-free answer.  Resetting the budget heals the breaker
        through its half-open trial."""
        _dataset, config = chaos_dataset
        pool = _primed_pool()
        denied_before = pool.stats.respawns_denied
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=0.0)
        engine = ServiceEngine(make_dynamic_graph(), config, workers=2,
                               breaker=breaker)
        try:
            pool.set_respawn_budget(0)
            with faults.armed(
                faults.FaultRule(
                    faults.WORKER_DISPATCH, action="kill_worker", at=1,
                    times=1, match={"task": "_density_columns_task"},
                )
            ):
                # The kill breaks the pool; the denied respawn surfaces as
                # WorkerCrashedError; the engine records the failure and
                # completes serially — same answer.
                result = engine.rank()
            assert result["pairs"] == serial_reference["rank"]
            assert engine._m_pool_fallbacks.value >= 1
            assert engine.supervisor.failures >= 1
            assert pool.stats.respawns_denied > denied_before
            described = engine.describe()
            assert "WorkerCrashedError" in described["breaker"]["last_error"]
            # Budget restored + cooldown 0: the next *uncached* pooled
            # request is the half-open trial, it succeeds, and the shared
            # breaker heals closed.  (The first engine memoised its serial
            # answer, so heal through a fresh engine on the same breaker.)
            pool.set_respawn_budget(None)
            fresh = ServiceEngine(make_dynamic_graph(), config, workers=2,
                                  breaker=breaker)
            try:
                healed = fresh.rank()
            finally:
                fresh.close()
            assert healed["pairs"] == serial_reference["rank"]
            assert engine.describe()["breaker"]["breaker_state"] == "closed"
        finally:
            pool.set_respawn_budget(None)
            engine.close()

    def test_open_breaker_counts_degraded_requests(
        self, make_dynamic_graph, chaos_dataset, serial_reference
    ):
        _dataset, config = chaos_dataset
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=3600.0)
        engine = ServiceEngine(make_dynamic_graph(), config, workers=2,
                               breaker=breaker)
        try:
            breaker.record_failure()  # trip it by hand: pool is distrusted
            assert engine.supervisor.degraded
            result = engine.rank()
            assert result["pairs"] == serial_reference["rank"]
            assert engine._m_degraded_requests.value == 1
            assert engine.describe()["degraded"] is True
            topk = engine.topk(k=3)
            assert topk["pairs"] == serial_reference["topk"]
            assert engine._m_degraded_requests.value == 2
        finally:
            engine.close()


class TestSocketChaos:
    def test_drop_after_third_response_retrying_client_completes(
        self, make_dynamic_graph, chaos_dataset, serial_reference
    ):
        _dataset, config = chaos_dataset
        with running_server(make_dynamic_graph(), config, workers=1) as server:
            with CorrelationClient(*server.address, max_retries=3,
                                   backoff_base=0.01, retry_seed=7) as client:
                with faults.armed(
                    faults.FaultRule(faults.SOCKET_SEND, action="drop", at=3)
                ):
                    answers = [client.rank()["pairs"] for _ in range(5)]
                assert all(a == serial_reference["rank"] for a in answers)
                assert client.retry_stats.reconnects >= 1

    def test_recv_drop_kills_request_before_processing(
        self, make_dynamic_graph, chaos_dataset
    ):
        """A connection dropped on *read* never reaches dispatch — the
        retried request is the first one the engine sees."""
        _dataset, config = chaos_dataset
        with running_server(make_dynamic_graph(), config, workers=1) as server:
            requests_before = server.engine._m_requests.labels(method="rank").value
            with CorrelationClient(*server.address, max_retries=2,
                                   backoff_base=0.01, retry_seed=7) as client:
                with faults.armed(
                    faults.FaultRule(faults.SOCKET_RECV, action="drop", at=1)
                ):
                    client.rank()
            assert (
                server.engine._m_requests.labels(method="rank").value
                == requests_before + 1
            )


class TestIdempotentCommits:
    def test_stream_retry_advances_epoch_exactly_once(
        self, make_dynamic_graph, chaos_dataset
    ):
        _dataset, config = chaos_dataset
        event = _event_pair(chaos_dataset)
        with running_server(make_dynamic_graph(), config, workers=1) as server:
            with CorrelationClient(*server.address, max_retries=3,
                                   backoff_base=0.01, retry_seed=7) as client:
                epoch0 = client.status()["epoch"]
                with faults.armed(
                    faults.FaultRule(faults.SOCKET_SEND, action="drop", at=1,
                                     match={"method": "stream"})
                ):
                    result = client.stream(
                        [{"op": "event_attach", "event": event, "node": 0}]
                    )
                # The commit applied once; the client's answer is the
                # replayed record of that single application.
                assert result["epoch"] == epoch0 + 1
                assert result.get("replayed") is True
                assert client.status()["epoch"] == epoch0 + 1
                assert server.engine._m_commit_replays.value == 1

    def test_distinct_commits_are_not_deduplicated(
        self, make_dynamic_graph, chaos_dataset
    ):
        _dataset, config = chaos_dataset
        event = _event_pair(chaos_dataset)
        with running_server(make_dynamic_graph(), config, workers=1) as server:
            with CorrelationClient(*server.address) as client:
                epoch0 = client.status()["epoch"]
                for node in (0, 1, 2):
                    result = client.stream(
                        [{"op": "event_attach", "event": event, "node": node}]
                    )
                    assert result.get("replayed") is None
                assert client.status()["epoch"] == epoch0 + 3


class TestWalFaults:
    def test_fsync_failure_rejects_then_retry_commits(
        self, make_dynamic_graph, chaos_dataset, tmp_path
    ):
        _dataset, config = chaos_dataset
        event = _event_pair(chaos_dataset)
        wal_path = tmp_path / "deltas.wal"
        with running_server(make_dynamic_graph(), config, workers=1,
                            wal=str(wal_path)) as server:
            with CorrelationClient(*server.address, max_retries=3,
                                   backoff_base=0.01, retry_seed=7) as client:
                epoch0 = client.status()["epoch"]
                with faults.armed(
                    faults.FaultRule(faults.WAL_FSYNC, action="error", at=1)
                ):
                    result = client.stream(
                        [{"op": "event_attach", "event": event, "node": 0}]
                    )
                assert result["epoch"] == epoch0 + 1
                assert client.retry_stats.retries == 1
                assert server.engine._m_wal_failures.value == 1
                assert server.engine._m_wal_commits.value == 1
        # The log holds exactly the one committed batch — the failed
        # attempt rolled back and the retry wrote it once.
        recovered = WriteAheadLog(wal_path)
        try:
            assert recovered.recovered_batches == 1
        finally:
            recovered.close()

    def test_fsync_failure_without_retries_is_a_503(
        self, make_dynamic_graph, chaos_dataset, tmp_path
    ):
        _dataset, config = chaos_dataset
        event = _event_pair(chaos_dataset)
        with running_server(make_dynamic_graph(), config, workers=1,
                            wal=str(tmp_path / "deltas.wal")) as server:
            with CorrelationClient(*server.address) as client:
                epoch0 = client.status()["epoch"]
                with faults.armed(
                    faults.FaultRule(faults.WAL_FSYNC, action="error", at=1)
                ):
                    with pytest.raises(UnavailableError) as excinfo:
                        client.stream(
                            [{"op": "event_attach", "event": event, "node": 0}]
                        )
                assert excinfo.value.retryable
                # Nothing applied: graph and epoch are untouched.
                assert client.status()["epoch"] == epoch0


class TestOverloadChaos:
    def test_retrying_clients_all_complete_and_counters_reconcile(
        self, make_dynamic_graph, chaos_dataset, serial_reference
    ):
        _dataset, config = chaos_dataset
        with running_server(make_dynamic_graph(), config, workers=1,
                            max_concurrency=1, max_queue=0,
                            queue_timeout=0.5) as server:
            clients = 4
            per_client = 3
            answers = []
            errors = []
            lock = threading.Lock()

            def _worker(seed):
                try:
                    with CorrelationClient(*server.address, max_retries=40,
                                           backoff_base=0.02,
                                           retry_seed=seed) as client:
                        mine = [client.rank()["pairs"] for _ in range(per_client)]
                        with lock:
                            answers.extend(mine)
                            stats.append(client.retry_stats)
                except Exception as exc:  # pragma: no cover - fails the test
                    with lock:
                        errors.append(exc)

            stats = []
            threads = [
                threading.Thread(target=_worker, args=(seed,))
                for seed in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            assert not errors, errors
            assert len(answers) == clients * per_client
            assert all(a == serial_reference["rank"] for a in answers)
            admission = server.admission.stats
            total_attempts = sum(s.attempts for s in stats)
            # Every wire attempt of a gated request ended in exactly one of
            # the admission outcomes; the ledgers must agree to the unit.
            assert total_attempts == (
                admission.admitted + admission.rejected + admission.timed_out
            )
            assert admission.admitted == clients * per_client

    def test_shm_is_clean_after_chaos(self):
        assert all(name.split("_")[1] in ("indptr", "indices", "evnodes",
                                          "evoffs")
                   for name in shm_segments())
