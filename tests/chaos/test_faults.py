"""Unit tests of the deterministic fault-injection registry."""

import pytest

from repro.service import faults
from repro.service.faults import FaultPlan, FaultRule


class TestFaultRule:
    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule("no.such.seam")

    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule(faults.SOCKET_SEND, action="explode")

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultRule(faults.SOCKET_SEND, at=0)
        with pytest.raises(ValueError, match="times"):
            FaultRule(faults.SOCKET_SEND, times=0)

    def test_match_narrows_by_context(self):
        rule = FaultRule(faults.SOCKET_SEND, match={"method": "stream"})
        assert rule.matches({"method": "stream", "extra": 1})
        assert not rule.matches({"method": "rank"})
        assert not rule.matches({})


class TestFaultPlan:
    def test_fires_inside_window_only(self):
        plan = FaultPlan(FaultRule(faults.SHM_ALLOC, at=2, times=2))
        fired = [plan.fire(faults.SHM_ALLOC, {}) is not None for _ in range(5)]
        assert fired == [False, True, True, False, False]
        assert plan.invocations(faults.SHM_ALLOC) == 5
        events = plan.fired_at(faults.SHM_ALLOC)
        assert [event.invocation for event in events] == [2, 3]

    def test_match_filtered_invocations_do_not_count(self):
        plan = FaultPlan(
            FaultRule(faults.SOCKET_SEND, action="drop", at=2,
                      match={"method": "stream"})
        )
        assert plan.fire(faults.SOCKET_SEND, {"method": "rank"}) is None
        assert plan.fire(faults.SOCKET_SEND, {"method": "stream"}) is None  # 1st match
        assert plan.fire(faults.SOCKET_SEND, {"method": "rank"}) is None
        rule = plan.fire(faults.SOCKET_SEND, {"method": "stream"})  # 2nd match
        assert rule is not None and rule.action == "drop"

    def test_rules_keep_independent_counters(self):
        """"Kill on call 2" and "kill on call 4" coexist in one plan."""
        plan = FaultPlan(
            FaultRule(faults.WORKER_DISPATCH, action="kill_worker", at=2),
            FaultRule(faults.WORKER_DISPATCH, action="kill_worker", at=4),
        )
        fired = [
            plan.fire(faults.WORKER_DISPATCH, {}) is not None for _ in range(5)
        ]
        assert fired == [False, True, False, True, False]

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(
            FaultRule(faults.SHM_ALLOC, message="first"),
            FaultRule(faults.SHM_ALLOC, message="second"),
        )
        rule = plan.fire(faults.SHM_ALLOC, {})
        assert rule is not None and rule.message == "first"
        # The loser's counter advanced too: it never fires later.
        assert plan.fire(faults.SHM_ALLOC, {}) is None

    def test_reset_replays_identically(self):
        plan = FaultPlan(FaultRule(faults.WAL_FSYNC, at=3))
        first = [plan.fire(faults.WAL_FSYNC, {}) is not None for _ in range(4)]
        plan.reset()
        second = [plan.fire(faults.WAL_FSYNC, {}) is not None for _ in range(4)]
        assert first == second == [False, False, True, False]
        assert plan.invocations(faults.WAL_FSYNC) == 4


class TestArming:
    def test_inject_is_noop_when_disarmed(self):
        assert faults.active() is None
        assert faults.inject(faults.SOCKET_RECV) is None

    def test_armed_context_disarms_on_exit(self):
        with faults.armed(FaultRule(faults.SOCKET_RECV, action="drop")) as plan:
            assert faults.active() is plan
            assert faults.inject(faults.SOCKET_RECV) is not None
        assert faults.active() is None

    def test_armed_context_disarms_on_error(self):
        with pytest.raises(RuntimeError):
            with faults.armed(FaultRule(faults.SOCKET_RECV)):
                raise RuntimeError("test escape")
        assert faults.active() is None

    def test_arm_replaces_previous_plan(self):
        first = faults.arm(FaultPlan())
        second = faults.arm(FaultPlan())
        assert faults.active() is second is not first
        faults.disarm()
        assert faults.active() is None

    def test_event_audit_trail_records_context(self):
        with faults.armed(
            FaultRule(faults.SOCKET_SEND, action="drop", match={"method": "stream"})
        ) as plan:
            faults.inject(faults.SOCKET_SEND, method="stream")
        (event,) = plan.fired
        assert event.site == faults.SOCKET_SEND
        assert event.action == "drop"
        assert dict(event.context) == {"method": "stream"}
