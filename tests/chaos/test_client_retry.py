"""The client's retry matrix, backoff schedule, and socket hygiene."""

import socket
import threading
import time

import pytest

from repro.service import faults
from repro.service.client import CorrelationClient
from repro.service.protocol import (
    BadRequestError,
    ConnectionLostError,
    OverloadedError,
    RequestTimeoutError,
)

from tests.chaos.conftest import running_server


@pytest.fixture()
def server(make_dynamic_graph, chaos_dataset):
    _dataset, config = chaos_dataset
    with running_server(make_dynamic_graph(), config, workers=1) as srv:
        yield srv


@pytest.fixture()
def silent_listener():
    """A TCP listener that accepts connections and never answers."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    sock.listen(8)
    accepted = []

    def _accept_loop():
        while True:
            try:
                conn, _addr = sock.accept()
            except OSError:
                return
            accepted.append(conn)

    thread = threading.Thread(target=_accept_loop, daemon=True)
    thread.start()
    yield sock.getsockname()
    sock.close()
    for conn in accepted:
        try:
            conn.close()
        except OSError:
            pass


class TestRetryMatrix:
    def test_400_is_never_retried(self, server):
        with CorrelationClient(*server.address, max_retries=5) as client:
            before = client.retry_stats.attempts
            with pytest.raises(BadRequestError):
                client.request("no_such_method")
            assert client.retry_stats.attempts == before + 1
            assert client.retry_stats.retries == 0

    def test_429_retried_until_slot_frees(self, server):
        admission = server.admission
        admission.max_concurrency = 1
        admission.max_queue = 0
        with CorrelationClient(*server.address, max_retries=10,
                               backoff_base=0.02, retry_seed=5) as client:
            slot = admission.admit()
            threading.Timer(0.2, lambda: slot.__exit__(None, None, None)).start()
            result = client.rank()
            assert result["pairs"]
            assert client.retry_stats.retries >= 1

    def test_429_surfaces_once_retries_exhausted(self, server):
        admission = server.admission
        admission.max_concurrency = 1
        admission.max_queue = 0
        slot = admission.admit()
        try:
            with CorrelationClient(*server.address, max_retries=2,
                                   backoff_base=0.01, retry_seed=5) as client:
                with pytest.raises(OverloadedError) as excinfo:
                    client.rank()
                assert excinfo.value.retryable
                assert client.retry_stats.retries == 2
        finally:
            slot.__exit__(None, None, None)

    def test_zero_retries_is_the_default(self, server):
        admission = server.admission
        admission.max_concurrency = 1
        admission.max_queue = 0
        slot = admission.admit()
        try:
            with CorrelationClient(*server.address) as client:
                with pytest.raises(OverloadedError):
                    client.rank()
                assert client.retry_stats.attempts == 1
        finally:
            slot.__exit__(None, None, None)

    def test_dropped_connection_is_retried_transparently(self, server):
        with CorrelationClient(*server.address, max_retries=3,
                               backoff_base=0.01, retry_seed=5) as client:
            client.ping()  # a healthy round trip first
            with faults.armed(
                faults.FaultRule(faults.SOCKET_RECV, action="drop", at=1)
            ):
                assert client.ping()
            assert client.retry_stats.reconnects >= 1


class TestBackoffSchedule:
    @staticmethod
    def _client_off_wire(**kwargs):
        """A client instance without a connection (schedule-only tests)."""
        client = CorrelationClient.__new__(CorrelationClient)
        import random
        client.backoff_base = kwargs.get("backoff_base", 0.05)
        client.backoff_max = kwargs.get("backoff_max", 2.0)
        client._random = random.Random(kwargs.get("retry_seed"))
        return client

    def test_deterministic_with_seed(self):
        first = self._client_off_wire(retry_seed=42)
        second = self._client_off_wire(retry_seed=42)
        error = ConnectionLostError("x")
        schedule_a = [first._backoff_for(n, error) for n in range(1, 6)]
        schedule_b = [second._backoff_for(n, error) for n in range(1, 6)]
        assert schedule_a == schedule_b

    def test_exponential_growth_capped(self):
        client = self._client_off_wire(backoff_base=0.1, backoff_max=0.4,
                                       retry_seed=1)
        error = ConnectionLostError("x")
        sleeps = [client._backoff_for(n, error) for n in range(1, 8)]
        # Jitter scales by [0.5, 1.5); the cap bounds every sleep.
        assert all(sleep <= 0.4 * 1.5 for sleep in sleeps)
        assert sleeps[0] <= 0.1 * 1.5

    def test_retry_after_hint_is_a_floor(self):
        client = self._client_off_wire(backoff_base=0.001, retry_seed=3)
        error = OverloadedError("busy")
        error.retry_after = 0.25
        assert client._backoff_for(1, error) >= 0.25

    def test_no_hint_means_pure_backoff(self):
        client = self._client_off_wire(backoff_base=0.001, retry_seed=3)
        assert client._backoff_for(1, ConnectionLostError("x")) < 0.25


class TestSocketHygiene:
    def test_per_call_timeout_override(self, silent_listener):
        client = CorrelationClient(*silent_listener, timeout=30.0)
        started = time.monotonic()
        with pytest.raises(ConnectionLostError, match="timed out"):
            client.request("ping", timeout=0.2)
        assert time.monotonic() - started < 5.0  # nowhere near the default
        client.close()

    def test_default_timeout_restored_after_override(self, server):
        with CorrelationClient(*server.address, timeout=30.0) as client:
            client.request("ping", timeout=5.0)
            assert client._socket.gettimeout() == 30.0

    def test_close_tolerates_dead_socket(self, server):
        client = CorrelationClient(*server.address)
        client.ping()
        # Kill the transport underneath the client, then close politely.
        client._socket.close()
        client.close()
        client.close()  # and stays idempotent

    def test_deadline_bounds_connection_retries(self, silent_listener):
        client = CorrelationClient(*silent_listener, max_retries=50,
                                   backoff_base=0.05, retry_seed=9)
        started = time.monotonic()
        # The final raise is the last transport error — or, when the budget
        # dies between attempts, the client-side deadline expiry (a 408).
        with pytest.raises((ConnectionLostError, RequestTimeoutError)):
            client.request("ping", timeout=0.1, deadline=0.5)
        assert time.monotonic() - started < 3.0
        assert client.retry_stats.retries < 50
        client.close()

    def test_context_manager_closes(self, server):
        with CorrelationClient(*server.address) as client:
            assert client.ping()
        from repro.service.protocol import RemoteError
        with pytest.raises(RemoteError, match="closed"):
            client.request("ping")
