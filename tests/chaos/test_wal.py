"""The durable delta log: CRC framing, torn-tail recovery, fsync faults."""

import os

import pytest

from repro.service import faults
from repro.streaming.delta import Delta, DeltaBatch, DeltaError, WriteAheadLog


def _batch(*nodes, event="A"):
    return DeltaBatch(
        deltas=tuple(Delta.event_attach(event, node) for node in nodes)
    )


def _edge_batch(*edges):
    return DeltaBatch(deltas=tuple(Delta.edge_add(u, v) for u, v in edges))


class TestRoundTrip:
    def test_committed_batches_survive_reopen(self, tmp_path):
        path = tmp_path / "deltas.wal"
        with WriteAheadLog(path) as wal:
            wal.append_batch(_batch(1, 2))
            wal.append_batch(_edge_batch((0, 5), (2, 7)))
        reopened = WriteAheadLog(path)
        try:
            assert reopened.recovered_batches == 2
            assert reopened.truncated_bytes == 0
            replayed = list(reopened.replay())
            assert replayed[0] == _batch(1, 2)
            assert replayed[1] == _edge_batch((0, 5), (2, 7))
        finally:
            reopened.close()

    def test_every_line_is_crc_prefixed(self, tmp_path):
        path = tmp_path / "deltas.wal"
        with WriteAheadLog(path) as wal:
            wal.append_batch(_batch(3))
        for line in path.read_bytes().splitlines():
            assert WriteAheadLog._parse_line(line) is not None

    def test_seal_commits_pending(self, tmp_path):
        path = tmp_path / "deltas.wal"
        with WriteAheadLog(path) as wal:
            wal.attach_event("A", 4)
            wal.seal()
        reopened = WriteAheadLog(path)
        try:
            assert reopened.recovered_batches == 1
        finally:
            reopened.close()

    def test_closed_log_rejects_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "deltas.wal")
        wal.close()
        wal.close()  # idempotent
        with pytest.raises(DeltaError, match="closed"):
            wal.append_batch(_batch(1))


class TestRecovery:
    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "deltas.wal"
        with WriteAheadLog(path) as wal:
            wal.append_batch(_batch(1))
        intact = path.read_bytes()
        # A power cut mid-write: half a record, no newline.
        path.write_bytes(intact + b"89abcdef {\"op\":\"commi")
        recovered = WriteAheadLog(path)
        try:
            assert recovered.recovered_batches == 1
            assert recovered.truncated_bytes > 0
            assert path.read_bytes() == intact
        finally:
            recovered.close()

    def test_corrupt_crc_truncates_from_there(self, tmp_path):
        path = tmp_path / "deltas.wal"
        with WriteAheadLog(path) as wal:
            wal.append_batch(_batch(1))
            wal.append_batch(_batch(2))
        lines = path.read_bytes().splitlines(keepends=True)
        # Flip a byte inside the second batch's first record.
        corrupted = lines[2][:12] + b"X" + lines[2][13:]
        path.write_bytes(b"".join(lines[:2] + [corrupted] + lines[3:]))
        recovered = WriteAheadLog(path)
        try:
            # Batch 1 survives; everything at and after the corruption goes.
            assert recovered.recovered_batches == 1
            assert list(recovered.replay()) == [_batch(1)]
        finally:
            recovered.close()

    def test_uncommitted_tail_is_dropped(self, tmp_path):
        path = tmp_path / "deltas.wal"
        with WriteAheadLog(path) as wal:
            wal.append_batch(_batch(1))
        # Valid records after the last commit line — a batch that was being
        # written when the process died.  Not committed, so not replayed.
        with open(path, "ab") as handle:
            handle.write(
                WriteAheadLog._format_record({"op": "event_attach",
                                              "event": "A", "node": 9})
            )
        recovered = WriteAheadLog(path)
        try:
            assert recovered.recovered_batches == 1
            assert recovered.truncated_bytes > 0
            assert list(recovered.replay()) == [_batch(1)]
        finally:
            recovered.close()

    def test_empty_or_missing_file_recovers_to_nothing(self, tmp_path):
        missing = WriteAheadLog(tmp_path / "fresh.wal")
        try:
            assert missing.recovered_batches == 0
        finally:
            missing.close()


class TestFsyncFaults:
    def test_injected_fsync_failure_rolls_back(self, tmp_path):
        path = tmp_path / "deltas.wal"
        wal = WriteAheadLog(path)
        try:
            wal.append_batch(_batch(1))
            size_before = os.path.getsize(path)
            with faults.armed(
                faults.FaultRule(faults.WAL_FSYNC, action="error", at=1,
                                 message="disk on fire")
            ):
                with pytest.raises(OSError, match="disk on fire"):
                    wal.append_batch(_batch(2))
            # All-or-nothing: the failed batch left no bytes and no state.
            assert os.path.getsize(path) == size_before
            assert list(wal.replay()) == [_batch(1)]
            # The log keeps working once the fault passes.
            wal.append_batch(_batch(3))
            assert list(wal.replay()) == [_batch(1), _batch(3)]
        finally:
            wal.close()

    def test_seal_restages_pending_on_fsync_failure(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "deltas.wal")
        try:
            wal.attach_event("A", 7)
            with faults.armed(
                faults.FaultRule(faults.WAL_FSYNC, action="error", at=1)
            ):
                with pytest.raises(OSError):
                    wal.seal()
            # The deltas are still pending: the commit can be retried.
            assert wal.num_pending == 1
            wal.seal()
            assert list(wal.replay()) == [_batch(7)]
        finally:
            wal.close()

    def test_fsync_disabled_skips_the_syscall_but_keeps_the_seam(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "deltas.wal", fsync=False)
        try:
            with faults.armed(
                faults.FaultRule(faults.WAL_FSYNC, action="error", at=1)
            ):
                with pytest.raises(OSError):
                    wal.append_batch(_batch(1))
            wal.append_batch(_batch(2))
            assert list(wal.replay()) == [_batch(2)]
        finally:
            wal.close()
