"""The durable delta log: CRC framing, torn-tail recovery, fsync faults,
and prefix compaction."""

import os
import threading

import pytest

from repro.service import faults
from repro.streaming.delta import Delta, DeltaBatch, DeltaError, WriteAheadLog


def _batch(*nodes, event="A"):
    return DeltaBatch(
        deltas=tuple(Delta.event_attach(event, node) for node in nodes)
    )


def _edge_batch(*edges):
    return DeltaBatch(deltas=tuple(Delta.edge_add(u, v) for u, v in edges))


class TestRoundTrip:
    def test_committed_batches_survive_reopen(self, tmp_path):
        path = tmp_path / "deltas.wal"
        with WriteAheadLog(path) as wal:
            wal.append_batch(_batch(1, 2))
            wal.append_batch(_edge_batch((0, 5), (2, 7)))
        reopened = WriteAheadLog(path)
        try:
            assert reopened.recovered_batches == 2
            assert reopened.truncated_bytes == 0
            replayed = list(reopened.replay())
            assert replayed[0] == _batch(1, 2)
            assert replayed[1] == _edge_batch((0, 5), (2, 7))
        finally:
            reopened.close()

    def test_every_line_is_crc_prefixed(self, tmp_path):
        path = tmp_path / "deltas.wal"
        with WriteAheadLog(path) as wal:
            wal.append_batch(_batch(3))
        for line in path.read_bytes().splitlines():
            assert WriteAheadLog._parse_line(line) is not None

    def test_seal_commits_pending(self, tmp_path):
        path = tmp_path / "deltas.wal"
        with WriteAheadLog(path) as wal:
            wal.attach_event("A", 4)
            wal.seal()
        reopened = WriteAheadLog(path)
        try:
            assert reopened.recovered_batches == 1
        finally:
            reopened.close()

    def test_closed_log_rejects_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "deltas.wal")
        wal.close()
        wal.close()  # idempotent
        with pytest.raises(DeltaError, match="closed"):
            wal.append_batch(_batch(1))


class TestRecovery:
    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "deltas.wal"
        with WriteAheadLog(path) as wal:
            wal.append_batch(_batch(1))
        intact = path.read_bytes()
        # A power cut mid-write: half a record, no newline.
        path.write_bytes(intact + b"89abcdef {\"op\":\"commi")
        recovered = WriteAheadLog(path)
        try:
            assert recovered.recovered_batches == 1
            assert recovered.truncated_bytes > 0
            assert path.read_bytes() == intact
        finally:
            recovered.close()

    def test_corrupt_crc_truncates_from_there(self, tmp_path):
        path = tmp_path / "deltas.wal"
        with WriteAheadLog(path) as wal:
            wal.append_batch(_batch(1))
            wal.append_batch(_batch(2))
        lines = path.read_bytes().splitlines(keepends=True)
        # Flip a byte inside the second batch's first record.
        corrupted = lines[2][:12] + b"X" + lines[2][13:]
        path.write_bytes(b"".join(lines[:2] + [corrupted] + lines[3:]))
        recovered = WriteAheadLog(path)
        try:
            # Batch 1 survives; everything at and after the corruption goes.
            assert recovered.recovered_batches == 1
            assert list(recovered.replay()) == [_batch(1)]
        finally:
            recovered.close()

    def test_uncommitted_tail_is_dropped(self, tmp_path):
        path = tmp_path / "deltas.wal"
        with WriteAheadLog(path) as wal:
            wal.append_batch(_batch(1))
        # Valid records after the last commit line — a batch that was being
        # written when the process died.  Not committed, so not replayed.
        with open(path, "ab") as handle:
            handle.write(
                WriteAheadLog._format_record({"op": "event_attach",
                                              "event": "A", "node": 9})
            )
        recovered = WriteAheadLog(path)
        try:
            assert recovered.recovered_batches == 1
            assert recovered.truncated_bytes > 0
            assert list(recovered.replay()) == [_batch(1)]
        finally:
            recovered.close()

    def test_empty_or_missing_file_recovers_to_nothing(self, tmp_path):
        missing = WriteAheadLog(tmp_path / "fresh.wal")
        try:
            assert missing.recovered_batches == 0
        finally:
            missing.close()


class TestFsyncFaults:
    def test_injected_fsync_failure_rolls_back(self, tmp_path):
        path = tmp_path / "deltas.wal"
        wal = WriteAheadLog(path)
        try:
            wal.append_batch(_batch(1))
            size_before = os.path.getsize(path)
            with faults.armed(
                faults.FaultRule(faults.WAL_FSYNC, action="error", at=1,
                                 message="disk on fire")
            ):
                with pytest.raises(OSError, match="disk on fire"):
                    wal.append_batch(_batch(2))
            # All-or-nothing: the failed batch left no bytes and no state.
            assert os.path.getsize(path) == size_before
            assert list(wal.replay()) == [_batch(1)]
            # The log keeps working once the fault passes.
            wal.append_batch(_batch(3))
            assert list(wal.replay()) == [_batch(1), _batch(3)]
        finally:
            wal.close()

    def test_seal_restages_pending_on_fsync_failure(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "deltas.wal")
        try:
            wal.attach_event("A", 7)
            with faults.armed(
                faults.FaultRule(faults.WAL_FSYNC, action="error", at=1)
            ):
                with pytest.raises(OSError):
                    wal.seal()
            # The deltas are still pending: the commit can be retried.
            assert wal.num_pending == 1
            wal.seal()
            assert list(wal.replay()) == [_batch(7)]
        finally:
            wal.close()

    def test_compaction_fault_leaves_the_log_untouched(self, tmp_path):
        path = tmp_path / "deltas.wal"
        wal = WriteAheadLog(path)
        try:
            wal.append_batch(_batch(1))
            wal.append_batch(_batch(2))
            before = path.read_bytes()
            with faults.armed(
                faults.FaultRule(faults.WAL_FSYNC, action="error", at=1)
            ):
                with pytest.raises(OSError):
                    wal.compact(wal.committed_offset)
            # The rewrite died before the rename: nothing changed, and the
            # log keeps accepting appends.
            assert path.read_bytes() == before
            assert wal.compacted_batches == 0
            wal.append_batch(_batch(3))
            assert list(wal.replay()) == [_batch(1), _batch(2), _batch(3)]
        finally:
            wal.close()

    def test_fsync_disabled_skips_the_syscall_but_keeps_the_seam(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "deltas.wal", fsync=False)
        try:
            with faults.armed(
                faults.FaultRule(faults.WAL_FSYNC, action="error", at=1)
            ):
                with pytest.raises(OSError):
                    wal.append_batch(_batch(1))
            wal.append_batch(_batch(2))
            assert list(wal.replay()) == [_batch(2)]
        finally:
            wal.close()


class TestCompaction:
    def test_compact_drops_the_prefix_but_keeps_total_coordinates(self, tmp_path):
        path = tmp_path / "deltas.wal"
        with WriteAheadLog(path) as wal:
            for node in range(5):
                wal.append_batch(_batch(node))
            cut = wal.offset_of_total(3)
            assert wal.compact(cut) > 0
            assert wal.compacted_batches == 3
            assert wal.total_batches == 5
            assert list(wal.replay()) == [_batch(3), _batch(4)]
            wal.append_batch(_batch(5))
        reopened = WriteAheadLog(path)
        try:
            # The logical coordinate system survives the reopen: batch
            # totals keep counting from before the compaction.
            assert reopened.compacted_batches == 3
            assert reopened.total_batches == 6
            assert list(reopened.replay()) == [_batch(3), _batch(4), _batch(5)]
        finally:
            reopened.close()

    def test_compact_to_empty_and_keep_appending(self, tmp_path):
        path = tmp_path / "deltas.wal"
        with WriteAheadLog(path) as wal:
            wal.append_batch(_batch(1))
            wal.append_batch(_batch(2))
            wal.compact(wal.committed_offset)
            assert wal.batches == []
            assert wal.total_batches == 2
            # Nothing left to drop: compacting again is a no-op.
            assert wal.compact(wal.committed_offset) == 0
            wal.append_batch(_batch(3))
        reopened = WriteAheadLog(path)
        try:
            assert reopened.compacted_batches == 2
            assert list(reopened.replay()) == [_batch(3)]
        finally:
            reopened.close()

    def test_offset_past_a_torn_tail_clamps_to_the_last_commit(self, tmp_path):
        path = tmp_path / "deltas.wal"
        with WriteAheadLog(path) as wal:
            wal.append_batch(_batch(1))
            wal.append_batch(_batch(2))
        # Crash appends half a record; the file is now LONGER than the last
        # commit boundary.
        with open(path, "ab") as handle:
            handle.write(b'deadbeef {"torn": tr')
        wal = WriteAheadLog(path)
        try:
            # Asking to compact past end-of-file must clamp to the last
            # commit boundary, never split a record.
            reclaimed = wal.compact(os.path.getsize(path) + 1000)
            assert reclaimed > 0
            assert wal.compacted_batches == 2
            assert wal.batches == []
            wal.append_batch(_batch(3))
            assert list(wal.replay()) == [_batch(3)]
        finally:
            wal.close()
        recovered = WriteAheadLog(path)
        try:
            assert recovered.compacted_batches == 2
            assert list(recovered.replay()) == [_batch(3)]
        finally:
            recovered.close()

    def test_mid_file_compaction_header_is_a_corruption_boundary(self, tmp_path):
        path = tmp_path / "deltas.wal"
        with WriteAheadLog(path) as wal:
            wal.append_batch(_batch(1))
            wal.compact(wal.committed_offset)
            header_only = path.read_bytes()
            wal.append_batch(_batch(2))
        # Splice a second compaction header after the first batch: valid CRC,
        # but a header anywhere except record 0 means a botched rewrite.
        with open(path, "ab") as handle:
            handle.write(header_only)
        recovered = WriteAheadLog(path)
        try:
            assert recovered.compacted_batches == 1
            assert recovered.recovered_batches == 1
            assert recovered.truncated_bytes > 0
            assert list(recovered.replay()) == [_batch(2)]
        finally:
            recovered.close()

    def test_concurrent_commits_during_compaction_lose_nothing(self, tmp_path):
        """Writers hammering append_batch while compactions run: every
        committed batch must survive, in order, exactly once."""
        path = tmp_path / "deltas.wal"
        wal = WriteAheadLog(path, fsync=False)
        errors = []

        def writer():
            try:
                for node in range(50):
                    wal.append_batch(_batch(node))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def compactor():
            try:
                for _ in range(20):
                    wal.compact(wal.committed_offset)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=compactor)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        try:
            assert errors == []
            assert wal.total_batches == 50
            # The in-file tail plus the compacted count partition the full
            # history; whatever survived in-file is the exact ordered suffix.
            assert list(wal.replay()) == [
                _batch(node) for node in range(wal.compacted_batches, 50)
            ]
        finally:
            wal.close()
        reopened = WriteAheadLog(path)
        try:
            assert reopened.total_batches == 50
            assert list(reopened.replay()) == [
                _batch(node) for node in range(reopened.compacted_batches, 50)
            ]
        finally:
            reopened.close()
