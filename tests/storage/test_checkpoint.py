"""Checkpoint store: atomic commit, the validation ladder, bounded recovery."""

import os

import numpy as np
import pytest

from repro.graph.adjacency import Graph
from repro.service import faults
from repro.storage.checkpoint import (
    CheckpointCorruptError,
    CheckpointStore,
    MANIFEST_NAME,
    QUARANTINE_DIR,
    _frame,
    _unframe,
)
from repro.storage.recovery import recover
from repro.streaming.delta import Delta, DeltaBatch, WriteAheadLog
from repro.streaming.dynamic_graph import DynamicAttributedGraph


def fresh_graph(num_nodes=24):
    graph = Graph(num_nodes=num_nodes)
    for u in range(num_nodes - 1):
        graph.add_edge(u, u + 1)
    for u in range(0, num_nodes - 2, 2):
        graph.add_edge(u, u + 2)
    return DynamicAttributedGraph(
        graph, {"a": [0, 2, 4, 6], "b": [1, 3, 5], "c": [7, 9]}
    )


def commit(graph, wal, *deltas):
    batch = DeltaBatch(deltas=tuple(deltas))
    wal.append_batch(batch)
    graph.apply(batch)


def checkpoint_now(store, graph, wal, digest="cfg"):
    """Cut a checkpoint of the graph's current epoch by hand."""
    return store.write(
        graph.snapshot().checkpoint_state(),
        config_digest=digest,
        wal_batches=wal.total_batches,
        wal_offset=wal.committed_offset,
    )


class TestWriteAndLoad:
    def test_round_trip_is_bit_identical(self, tmp_path):
        graph = fresh_graph()
        # Empty one event entirely: the layer keeps it registered, and the
        # checkpoint must preserve that (from_mapping alone would drop it).
        graph.apply([Delta.event_detach("c", 7), Delta.event_detach("c", 9)])
        index = graph.vicinity_index(levels=[1])
        index.size(0, 1)  # warm one column entry
        store = CheckpointStore(tmp_path / "store", fsync=False)
        info = store.write(
            graph.snapshot().checkpoint_state(),
            config_digest="cfg",
            wal_batches=5,
            wal_offset=123,
            vicinity_sizes=index.export_sizes(),
        )
        assert info.epoch == graph.epoch
        assert info.wal_batches == 5
        assert info.wal_offset == 123
        assert info.num_nodes == graph.num_nodes

        loaded = store.load(info.name)
        np.testing.assert_array_equal(loaded.indptr, graph.csr.indptr)
        np.testing.assert_array_equal(loaded.indices, graph.csr.indices)
        assert loaded.events == {
            "a": [0, 2, 4, 6], "b": [1, 3, 5], "c": [],
        }
        assert loaded.info.events_version == graph.events.version
        assert loaded.info.structure_version == graph.structure_version
        np.testing.assert_array_equal(
            loaded.vicinity_sizes[1], index.export_sizes()[1]
        )

    def test_commit_leaves_no_temp_dirs_and_a_framed_manifest(self, tmp_path):
        store = CheckpointStore(tmp_path / "store", fsync=False)
        info = checkpoint_now(store, fresh_graph(), _EmptyWal())
        entries = os.listdir(store.root)
        assert not any(entry.startswith("tmp-") for entry in entries)
        with open(os.path.join(info.path, MANIFEST_NAME), "rb") as handle:
            assert _unframe(handle.read().rstrip(b"\n")) is not None

    def test_sequence_numbers_order_within_an_epoch(self, tmp_path):
        graph = fresh_graph()
        store = CheckpointStore(tmp_path / "store", fsync=False)
        wal = _EmptyWal()
        first = checkpoint_now(store, graph, wal)
        second = checkpoint_now(store, graph, wal)
        assert first.name.endswith("-0000")
        assert second.name.endswith("-0001")
        # Newest first: same epoch, higher sequence wins.
        assert store.list_checkpoints() == [second.name, first.name]

    def test_crashed_temp_dir_is_cleaned_on_open(self, tmp_path):
        root = tmp_path / "store"
        store = CheckpointStore(root, fsync=False)
        checkpoint_now(store, fresh_graph(), _EmptyWal())
        litter = root / "tmp-ckpt-000000000009-0000"
        litter.mkdir()
        (litter / "indptr.bin").write_bytes(b"half a segm")
        reopened = CheckpointStore(root, fsync=False)
        assert not (litter).exists()
        assert len(reopened.list_checkpoints()) == 1


class _EmptyWal:
    """Stand-in WAL coordinates for store-only tests."""

    total_batches = 0
    committed_offset = 0


def _corrupt_byte(path, offset=4):
    raw = bytearray(path.read_bytes())
    raw[offset] ^= 0xFF
    path.write_bytes(bytes(raw))


class TestValidationLadder:
    @pytest.fixture()
    def store_with_checkpoint(self, tmp_path):
        store = CheckpointStore(tmp_path / "store", fsync=False)
        info = checkpoint_now(store, fresh_graph(), _EmptyWal())
        return store, info

    def test_manifest_corruption_is_detected(self, store_with_checkpoint, tmp_path):
        store, info = store_with_checkpoint
        _corrupt_byte(tmp_path / "store" / info.name / MANIFEST_NAME, offset=12)
        with pytest.raises(CheckpointCorruptError, match="manifest"):
            store.load(info.name)

    def test_missing_segment_is_detected(self, store_with_checkpoint, tmp_path):
        store, info = store_with_checkpoint
        os.remove(tmp_path / "store" / info.name / "indices.bin")
        with pytest.raises(CheckpointCorruptError, match="indices.*missing"):
            store.load(info.name)

    def test_segment_bit_flip_is_detected(self, store_with_checkpoint, tmp_path):
        store, info = store_with_checkpoint
        _corrupt_byte(tmp_path / "store" / info.name / "event_nodes.bin")
        with pytest.raises(CheckpointCorruptError, match="CRC mismatch"):
            store.load(info.name)

    def test_truncated_segment_is_detected(self, store_with_checkpoint, tmp_path):
        store, info = store_with_checkpoint
        path = tmp_path / "store" / info.name / "indptr.bin"
        path.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(CheckpointCorruptError, match="bytes"):
            store.load(info.name)

    def test_inconsistent_geometry_is_detected(self, store_with_checkpoint, tmp_path):
        # Every segment passes its CRC but the manifest describes a graph
        # one node larger: the cross-segment rung must still reject it.
        store, info = store_with_checkpoint
        path = tmp_path / "store" / info.name / MANIFEST_NAME
        manifest = _unframe(path.read_bytes().rstrip(b"\n"))
        manifest["num_nodes"] += 1
        path.write_bytes(_frame(manifest))
        with pytest.raises(CheckpointCorruptError, match="indptr"):
            store.load(info.name)

    def test_newest_corrupt_falls_back_and_quarantines(self, tmp_path):
        graph = fresh_graph()
        store = CheckpointStore(tmp_path / "store", fsync=False)
        older = checkpoint_now(store, graph, _EmptyWal())
        graph.apply([Delta.event_attach("a", 10)])
        newer = checkpoint_now(store, graph, _EmptyWal())
        _corrupt_byte(tmp_path / "store" / newer.name / "indptr.bin")

        loaded, rejections = store.load_newest_valid()
        assert loaded.info.name == older.name
        assert [name for name, _reason in rejections] == [newer.name]
        # The corrupt directory moved aside with its reason on record.
        quarantined = tmp_path / "store" / QUARANTINE_DIR / newer.name
        assert quarantined.is_dir()
        assert "CRC mismatch" in (quarantined / "REASON").read_text()
        assert store.list_checkpoints() == [older.name]

    def test_config_mismatch_skips_without_quarantine(self, store_with_checkpoint, tmp_path):
        store, info = store_with_checkpoint
        loaded, rejections = store.load_newest_valid(config_digest="other")
        assert loaded is None
        assert rejections and "config digest" in rejections[0][1]
        # Sound data for another deployment: stays in place.
        assert store.list_checkpoints() == [info.name]
        assert not os.listdir(tmp_path / "store" / QUARANTINE_DIR)

    def test_graph_size_mismatch_skips_without_quarantine(self, store_with_checkpoint):
        store, info = store_with_checkpoint
        loaded, rejections = store.load_newest_valid(num_nodes=999)
        assert loaded is None
        assert rejections and "999" in rejections[0][1]
        assert store.list_checkpoints() == [info.name]


class TestFsyncFaultSeam:
    def test_fault_discards_temp_and_keeps_previous_authoritative(self, tmp_path):
        graph = fresh_graph()
        store = CheckpointStore(tmp_path / "store", fsync=False)
        first = checkpoint_now(store, graph, _EmptyWal())
        with faults.armed(
            faults.FaultRule(faults.CHECKPOINT_FSYNC, action="error", at=1,
                             message="power cut")
        ):
            with pytest.raises(OSError, match="power cut"):
                checkpoint_now(store, graph, _EmptyWal())
        assert store.list_checkpoints() == [first.name]
        assert not any(
            entry.startswith("tmp-") for entry in os.listdir(store.root)
        )
        store.load(first.name)  # still fully valid
        # And the store keeps working once the fault passes.
        second = checkpoint_now(store, graph, _EmptyWal())
        assert store.list_checkpoints() == [second.name, first.name]

    def test_fault_just_before_rename_commits_nothing(self, tmp_path):
        # fsync order: 4 segments, manifest, temp dir (=6th), rename,
        # store root (=7th).  Dying on the 6th is the pre-rename crash.
        store = CheckpointStore(tmp_path / "store", fsync=False)
        with faults.armed(
            faults.FaultRule(faults.CHECKPOINT_FSYNC, action="error", at=6)
        ):
            with pytest.raises(OSError):
                checkpoint_now(store, fresh_graph(), _EmptyWal())
        assert store.list_checkpoints() == []

    def test_fault_after_rename_still_leaves_a_valid_checkpoint(self, tmp_path):
        # The 7th fsync (store root) happens after the atomic rename: the
        # writer reports failure, but the checkpoint itself is committed
        # and must validate — exactly the post-rename crash window.
        store = CheckpointStore(tmp_path / "store", fsync=False)
        with faults.armed(
            faults.FaultRule(faults.CHECKPOINT_FSYNC, action="error", at=7)
        ):
            with pytest.raises(OSError):
                checkpoint_now(store, fresh_graph(), _EmptyWal())
        names = store.list_checkpoints()
        assert len(names) == 1
        store.load(names[0])


class TestPrune:
    def test_prune_keeps_the_newest(self, tmp_path):
        graph = fresh_graph()
        store = CheckpointStore(tmp_path / "store", retain=2, fsync=False)
        names = []
        for step in range(4):
            graph.apply([Delta.event_attach("a", 11 + step)])
            names.append(checkpoint_now(store, graph, _EmptyWal()).name)
        removed = store.prune()
        assert sorted(removed) == sorted(names[:2])
        assert store.list_checkpoints() == [names[3], names[2]]
        # retain is floored at one: pruning can never delete everything.
        store.prune(retain=0)
        assert store.list_checkpoints() == [names[3]]


class TestRecoveryLadder:
    def test_fresh_start_with_nothing_on_disk(self, tmp_path):
        graph = fresh_graph()
        with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
            report = recover(graph, wal)
        assert report.path == "fresh"
        assert report.replayed_batches == 0

    def test_full_replay_without_a_checkpoint(self, tmp_path):
        graph = fresh_graph()
        store = CheckpointStore(tmp_path / "store", fsync=False)
        with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
            for node in (10, 11, 12):
                commit(graph, wal, Delta.event_attach("b", node))
        rebooted = fresh_graph()
        with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
            report = recover(rebooted, wal, store=store)
        assert report.path == "full_replay"
        assert report.replayed_batches == 3
        assert rebooted.versions() == graph.versions()

    def test_checkpoint_bounds_the_tail(self, tmp_path):
        graph = fresh_graph()
        store = CheckpointStore(tmp_path / "store", fsync=False)
        with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
            for node in range(10, 16):
                commit(graph, wal, Delta.event_attach("a", node))
            info = checkpoint_now(store, graph, wal)
            assert wal.compact(info.wal_offset) > 0
            for u, v in ((0, 9), (1, 8), (2, 7)):
                commit(graph, wal, Delta.edge_add(u, v))

        rebooted = fresh_graph()
        with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
            report = recover(rebooted, wal, store=store, config_digest="cfg")
        assert report.path == "checkpoint"
        assert report.checkpoint == info.name
        # The recovery bound: only the 3 batches past coverage replay.
        assert report.replayed_batches == 3
        assert rebooted.versions() == graph.versions()
        assert rebooted.epoch == graph.epoch
        np.testing.assert_array_equal(
            rebooted.csr.indptr, graph.csr.indptr
        )
        np.testing.assert_array_equal(
            rebooted.csr.indices, graph.csr.indices
        )

    def test_fallback_path_after_quarantine(self, tmp_path):
        graph = fresh_graph()
        store = CheckpointStore(tmp_path / "store", fsync=False)
        with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
            commit(graph, wal, Delta.event_attach("a", 10))
            older = checkpoint_now(store, graph, wal)
            commit(graph, wal, Delta.event_attach("a", 11))
            newer = checkpoint_now(store, graph, wal)
        _corrupt_byte(tmp_path / "store" / newer.name / "indices.bin")

        rebooted = fresh_graph()
        with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
            report = recover(rebooted, wal, store=store, config_digest="cfg")
        assert report.path == "fallback"
        assert report.checkpoint == older.name
        assert report.replayed_batches == 1  # just the batch past `older`
        assert report.rejected and newer.name == report.rejected[0][0]
        assert rebooted.versions() == graph.versions()

    def test_fallback_rejects_checkpoint_that_cannot_bridge_compaction(
        self, tmp_path, caplog
    ):
        # Checkpoint A covers batch 1, checkpoint B covers batches 1-3, the
        # WAL is compacted to B's coverage, then B corrupts on disk.  A
        # cannot bridge batches 2-3 (compacted away), so restoring it plus
        # the surviving tail would silently diverge from true state: it
        # must be rejected and boot must take the loud tail-only path.
        graph = fresh_graph()
        store = CheckpointStore(tmp_path / "store", fsync=False)
        with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
            commit(graph, wal, Delta.event_attach("a", 10))
            older = checkpoint_now(store, graph, wal)
            commit(graph, wal, Delta.event_attach("a", 11))
            commit(graph, wal, Delta.event_attach("a", 12))
            newer = checkpoint_now(store, graph, wal)
            assert wal.compact(wal.committed_offset) > 0
            commit(graph, wal, Delta.event_attach("a", 13))
        _corrupt_byte(tmp_path / "store" / newer.name / "indices.bin")

        rebooted = fresh_graph()
        with caplog.at_level("ERROR", logger="repro.storage.recovery"):
            with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
                report = recover(rebooted, wal, store=store,
                                 config_digest="cfg")
        assert report.path == "full_replay"
        assert report.checkpoint is None
        assert report.replayed_batches == 1  # the surviving tail, loudly
        reasons = dict(report.rejected)
        assert "cannot bridge" in reasons[older.name]
        assert any("compacted" in record.message for record in caplog.records)

    def test_fallback_after_bounded_compaction_still_bridges(self, tmp_path):
        # The engine compacts only up to the oldest *retained* checkpoint's
        # coverage; under that bound a corrupt newest checkpoint still
        # leaves a usable fallback that replays to the exact same state.
        graph = fresh_graph()
        store = CheckpointStore(tmp_path / "store", fsync=False)
        with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
            commit(graph, wal, Delta.event_attach("a", 10))
            older = checkpoint_now(store, graph, wal)
            commit(graph, wal, Delta.event_attach("a", 11))
            newer = checkpoint_now(store, graph, wal)
            floor = store.retained_coverage()
            assert floor == older.wal_batches == 1
            assert wal.compact(wal.offset_of_total(floor)) > 0
        _corrupt_byte(tmp_path / "store" / newer.name / "indices.bin")

        rebooted = fresh_graph()
        with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
            report = recover(rebooted, wal, store=store, config_digest="cfg")
        assert report.path == "fallback"
        assert report.checkpoint == older.name
        assert report.replayed_batches == 1
        assert rebooted.versions() == graph.versions()
        np.testing.assert_array_equal(rebooted.csr.indices, graph.csr.indices)

    def test_compacted_wal_with_no_checkpoint_still_starts(self, tmp_path, caplog):
        graph = fresh_graph()
        store = CheckpointStore(tmp_path / "store", fsync=False)
        with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
            for node in (10, 11, 12):
                commit(graph, wal, Delta.event_attach("a", node))
            info = checkpoint_now(store, graph, wal)
            wal.compact(info.wal_offset)
            commit(graph, wal, Delta.event_attach("b", 13))
        store.quarantine(info.name, "operator removed it")

        rebooted = fresh_graph()
        with caplog.at_level("ERROR", logger="repro.storage.recovery"):
            with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
                report = recover(rebooted, wal, store=store)
        # Never refuse to start: the surviving tail replays, loudly.
        assert report.path == "full_replay"
        assert report.replayed_batches == 1
        assert any("compacted" in record.message for record in caplog.records)
