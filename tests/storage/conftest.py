"""Shared fixtures for the storage suite."""

import pytest

from repro.service import faults


@pytest.fixture(autouse=True)
def _disarm_faults():
    """No fault plan leaks in or out of a test, pass or fail."""
    faults.disarm()
    yield
    faults.disarm()
