"""Tests for the synthetic dataset generators and the registry."""

import pytest

from repro.baselines.transaction import transaction_correlation
from repro.core.config import TescConfig
from repro.core.tesc import TescTester
from repro.datasets.registry import available_datasets, load_dataset
from repro.datasets.synthetic_dblp import make_dblp_like
from repro.datasets.synthetic_intrusion import make_intrusion_like
from repro.datasets.synthetic_twitter import make_twitter_like
from repro.exceptions import ConfigurationError
from repro.graph.csr import CSRGraph


@pytest.fixture(scope="module")
def dblp():
    return make_dblp_like(
        num_communities=12, community_size=80, num_positive_pairs=2,
        num_negative_pairs=2, num_background_keywords=3, random_state=13,
    )


@pytest.fixture(scope="module")
def intrusion():
    return make_intrusion_like(num_subnets=50, subnet_size=25, random_state=13)


class TestDblpLike:
    def test_structure(self, dblp):
        assert dblp.num_communities == 12
        assert dblp.attributed.num_nodes > 12 * 80  # core plus periphery
        assert len(dblp.positive_pairs) == 2
        assert len(dblp.negative_pairs) == 2
        assert len(dblp.background_events) == 3

    def test_all_planted_events_exist(self, dblp):
        names = set(dblp.attributed.event_names())
        for pair in dblp.positive_pairs + dblp.negative_pairs:
            assert pair[0] in names and pair[1] in names

    def test_positive_pair_is_structurally_positive(self, dblp):
        tester = TescTester(dblp.attributed, TescConfig(sample_size=250, random_state=1))
        event_a, event_b = dblp.positive_pairs[0]
        assert tester.test(event_a, event_b).z_score > 2.0

    def test_negative_pair_is_structurally_negative(self, dblp):
        tester = TescTester(dblp.attributed, TescConfig(sample_size=250, random_state=1))
        event_a, event_b = dblp.negative_pairs[0]
        assert tester.test(event_a, event_b).z_score < -2.0

    def test_negative_pair_has_nonnegative_tc(self, dblp):
        event_a, event_b = dblp.negative_pairs[0]
        tc = transaction_correlation(dblp.attributed.events, event_a, event_b)
        assert tc.z_score > -1.0  # near zero or positive despite negative TESC

    def test_deterministic(self):
        first = make_dblp_like(num_communities=8, community_size=30,
                               communities_per_pair=2, random_state=3)
        second = make_dblp_like(num_communities=8, community_size=30,
                                communities_per_pair=2, random_state=3)
        assert first.attributed.num_edges == second.attributed.num_edges
        assert first.attributed.event_summary() == second.attributed.event_summary()

    def test_too_few_communities_rejected(self):
        with pytest.raises(ValueError):
            make_dblp_like(num_communities=3, community_size=20, communities_per_pair=3)


class TestIntrusionLike:
    def test_structure(self, intrusion):
        assert len(intrusion.subnets) == 50
        assert len(intrusion.positive_pairs) == 5
        assert len(intrusion.negative_pairs) == 5
        assert len(intrusion.rare_pairs) == 2

    def test_hub_degrees_are_large(self, intrusion):
        degrees = intrusion.attributed.csr.degrees()
        assert degrees.max() > 20

    def test_positive_pair_positive_tesc_flat_tc(self, intrusion):
        tester = TescTester(intrusion.attributed, TescConfig(sample_size=250, random_state=2))
        event_a, event_b = intrusion.positive_pairs[0]
        result = tester.test(event_a, event_b)
        tc = transaction_correlation(intrusion.attributed.events, event_a, event_b)
        assert result.z_score > 2.0
        assert tc.z_score < 2.0

    def test_negative_pair_negative_tesc(self, intrusion):
        tester = TescTester(
            intrusion.attributed,
            TescConfig(vicinity_level=2, sample_size=250, random_state=2),
        )
        event_a, event_b = intrusion.negative_pairs[0]
        assert tester.test(event_a, event_b).z_score < -2.0

    def test_rare_pairs_are_rare(self, intrusion):
        for event_a, event_b in intrusion.rare_pairs:
            assert intrusion.attributed.events.occurrence_count(event_a) < 30
            assert intrusion.attributed.events.occurrence_count(event_b) < 30

    def test_not_enough_subnets_rejected(self):
        with pytest.raises(ValueError):
            make_intrusion_like(num_subnets=10, subnet_size=10)


class TestTwitterLike:
    def test_returns_csr_by_default(self):
        graph = make_twitter_like(num_nodes=2000, edges_per_node=4, random_state=5)
        assert isinstance(graph, CSRGraph)
        assert graph.num_nodes == 2000

    def test_mutable_form(self):
        graph = make_twitter_like(num_nodes=500, edges_per_node=3, random_state=5,
                                  as_csr=False)
        assert graph.num_nodes == 500

    def test_scale_free_shape(self):
        graph = make_twitter_like(num_nodes=3000, edges_per_node=5, random_state=6)
        degrees = graph.degrees()
        assert degrees.max() > 4 * degrees.mean()


class TestRegistry:
    def test_available(self):
        assert set(available_datasets()) == {"dblp", "intrusion", "twitter"}

    def test_load_each_at_tiny_scale(self):
        for name in available_datasets():
            dataset = load_dataset(name, scale="tiny", random_state=1)
            assert dataset is not None

    def test_numeric_scale(self):
        graph = load_dataset("twitter", scale="0.05", random_state=1)
        assert graph.num_nodes >= 1000

    def test_unknown_dataset(self):
        with pytest.raises(ConfigurationError):
            load_dataset("imaginary")

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            load_dataset("twitter", scale="huge")
