"""Tests for repro.simulation.recall and repro.simulation.runner."""

import pytest

from repro.core.config import TescConfig
from repro.core.tesc import TescResult
from repro.exceptions import ConfigurationError
from repro.graph.generators import community_ring_graph
from repro.simulation.recall import RecallEvaluation, evaluate_recall
from repro.simulation.runner import SimulationStudy


@pytest.fixture(scope="module")
def study_graph():
    return community_ring_graph(8, 50, 5.0, 12, random_state=33).to_csr()


@pytest.fixture(scope="module")
def study(study_graph):
    return SimulationStudy(study_graph, event_size=60, num_pairs=3, random_state=1)


class TestSimulationStudy:
    def test_generate_positive_pairs(self, study):
        pairs = study.generate_pairs("positive", 1)
        assert len(pairs) == 3
        assert all(pair.correlation == "positive" for pair in pairs)

    def test_generate_negative_pairs_with_noise(self, study):
        pairs = study.generate_pairs("negative", 1, noise=0.3)
        assert len(pairs) == 3
        assert all(pair.noise == 0.3 for pair in pairs)

    def test_invalid_correlation_kind(self, study):
        with pytest.raises(ValueError):
            study.generate_pairs("sideways", 1)

    def test_recall_for_clean_positive_pairs_is_high(self, study):
        config = TescConfig(sample_size=150, random_state=5)
        evaluation = study.recall_for("positive", 1, 0.0, config)
        assert evaluation.total == 3
        assert evaluation.recall >= 2 / 3

    def test_recall_for_clean_negative_pairs_is_high(self, study):
        config = TescConfig(sample_size=150, random_state=5)
        evaluation = study.recall_for("negative", 1, 0.0, config)
        assert evaluation.recall >= 2 / 3

    def test_noise_sweep_keys(self, study):
        config = TescConfig(sample_size=100, random_state=5)
        curves = study.noise_sweep("positive", 1, [0.0, 0.5], config)
        assert set(curves) == {0.0, 0.5}

    def test_sampler_sweep_structure(self, study):
        config = TescConfig(sample_size=100, random_state=5)
        curves = study.sampler_sweep("positive", 1, [0.0], ["batch_bfs", "importance"], config)
        assert set(curves) == {"batch_bfs", "importance"}


class TestEvaluateRecall:
    def test_counts_and_mean_z(self, study, study_graph):
        pairs = [(pair.nodes_a, pair.nodes_b) for pair in study.generate_pairs("positive", 1)]
        config = TescConfig(sample_size=120, random_state=3)
        evaluation = evaluate_recall(study_graph, pairs, "positive", config)
        assert evaluation.total == len(pairs)
        assert 0 <= evaluation.detected <= evaluation.total
        assert evaluation.mean_z != 0.0

    def test_keep_results(self, study, study_graph):
        pairs = [(pair.nodes_a, pair.nodes_b) for pair in study.generate_pairs("positive", 1)][:1]
        config = TescConfig(sample_size=100, random_state=3)
        evaluation = evaluate_recall(study_graph, pairs, "positive", config, keep_results=True)
        assert len(evaluation.results) == 1
        assert isinstance(evaluation.results[0], TescResult)

    def test_invalid_expected_kind(self, study_graph):
        with pytest.raises(ConfigurationError):
            evaluate_recall(study_graph, [], "sideways", TescConfig())


class TestRecallEvaluation:
    def test_empty_evaluation(self):
        evaluation = RecallEvaluation(expected="positive")
        assert evaluation.recall == 0.0
        assert evaluation.mean_z == 0.0
