"""Tests for repro.simulation.noise."""

import numpy as np
import pytest

from repro.graph.generators import community_ring_graph
from repro.graph.traversal import batch_bfs_vicinity
from repro.simulation.negative import generate_negative_pair
from repro.simulation.noise import add_negative_noise, add_positive_noise
from repro.simulation.positive import generate_positive_pair


@pytest.fixture(scope="module")
def noise_graph():
    return community_ring_graph(8, 50, 5.0, 12, random_state=21).to_csr()


class TestAddPositiveNoise:
    def test_zero_noise_is_identity(self, noise_graph):
        nodes_a, nodes_b = generate_positive_pair(noise_graph, 30, 1, random_state=1)
        unchanged = add_positive_noise(noise_graph, nodes_a, nodes_b, 1, 0.0, random_state=1)
        assert np.array_equal(unchanged, nodes_b)

    def test_relocated_nodes_leave_vicinity(self, noise_graph):
        nodes_a, nodes_b = generate_positive_pair(noise_graph, 30, 1, random_state=2)
        noisy = add_positive_noise(noise_graph, nodes_a, nodes_b, 1, 0.7, random_state=2)
        vicinity_a = set(int(x) for x in batch_bfs_vicinity(noise_graph, nodes_a, 1))
        outside = [node for node in noisy if int(node) not in vicinity_a]
        assert len(outside) > 0

    def test_full_noise_moves_everything_outside(self, noise_graph):
        nodes_a, nodes_b = generate_positive_pair(noise_graph, 30, 1, random_state=3)
        noisy = add_positive_noise(noise_graph, nodes_a, nodes_b, 1, 1.0, random_state=3)
        vicinity_a = set(int(x) for x in batch_bfs_vicinity(noise_graph, nodes_a, 1))
        assert all(int(node) not in vicinity_a for node in noisy)

    def test_invalid_noise_rejected(self, noise_graph):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            add_positive_noise(noise_graph, np.array([0]), np.array([1]), 1, 1.5)


class TestAddNegativeNoise:
    def test_zero_noise_is_identity(self, noise_graph):
        nodes_a, nodes_b = generate_negative_pair(noise_graph, 30, 1, random_state=4)
        unchanged = add_negative_noise(noise_graph, nodes_a, nodes_b, 1, 0.0, random_state=4)
        assert np.array_equal(unchanged, nodes_b)

    def test_noise_moves_b_nodes_near_a(self, noise_graph):
        nodes_a, nodes_b = generate_negative_pair(noise_graph, 30, 1, random_state=5)
        noisy = add_negative_noise(noise_graph, nodes_a, nodes_b, 1, 0.8, random_state=5)
        vicinity_a = set(int(x) for x in batch_bfs_vicinity(noise_graph, nodes_a, 1))
        moved_inside = [node for node in noisy if int(node) in vicinity_a]
        assert len(moved_inside) > 0

    def test_result_is_sorted_unique(self, noise_graph):
        nodes_a, nodes_b = generate_negative_pair(noise_graph, 20, 1, random_state=6)
        noisy = add_negative_noise(noise_graph, nodes_a, nodes_b, 1, 0.5, random_state=6)
        assert list(noisy) == sorted(set(int(x) for x in noisy))
