"""Tests for the event-pair simulators (Section 5.2 generation protocols)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.graph.generators import community_ring_graph, erdos_renyi_graph
from repro.graph.traversal import batch_bfs_vicinity, shortest_path_lengths_from
from repro.simulation.independent import generate_independent_pair
from repro.simulation.negative import generate_negative_pair
from repro.simulation.positive import generate_positive_pair


@pytest.fixture(scope="module")
def simulation_graph():
    return community_ring_graph(10, 60, 5.0, 15, random_state=11).to_csr()


class TestGeneratePositivePair:
    def test_every_a_node_has_nearby_b_node(self, simulation_graph):
        nodes_a, nodes_b = generate_positive_pair(simulation_graph, 40, 2, random_state=1)
        b_set = set(int(x) for x in nodes_b)
        for a_node in nodes_a:
            distances = shortest_path_lengths_from(simulation_graph, int(a_node), cutoff=2)
            within = {int(x) for x in np.flatnonzero((distances >= 0) & (distances <= 2))}
            assert within & b_set, f"a-node {a_node} has no b companion within 2 hops"

    def test_sizes(self, simulation_graph):
        nodes_a, nodes_b = generate_positive_pair(simulation_graph, 50, 1, random_state=2)
        assert nodes_a.size == 50
        assert 1 <= nodes_b.size <= 50  # companions may collide

    def test_links_metadata(self, simulation_graph):
        nodes_a, nodes_b, links = generate_positive_pair(
            simulation_graph, 20, 2, random_state=3, return_links=True
        )
        assert len(links) == 20
        assert all(0 <= link.distance <= 2 for link in links)

    def test_distances_truncated_at_h(self, simulation_graph):
        _, _, links = generate_positive_pair(
            simulation_graph, 100, 1, random_state=4, return_links=True
        )
        assert max(link.distance for link in links) <= 1

    def test_too_many_event_nodes_rejected(self, simulation_graph):
        with pytest.raises(ConfigurationError):
            generate_positive_pair(simulation_graph, 10**6, 1)

    def test_deterministic(self, simulation_graph):
        first = generate_positive_pair(simulation_graph, 30, 2, random_state=9)
        second = generate_positive_pair(simulation_graph, 30, 2, random_state=9)
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])


class TestGenerateNegativePair:
    def test_b_nodes_outside_a_vicinity(self, simulation_graph):
        nodes_a, nodes_b = generate_negative_pair(simulation_graph, 30, 2, random_state=5)
        vicinity_a = set(int(x) for x in batch_bfs_vicinity(simulation_graph, nodes_a, 2))
        assert not (set(int(x) for x in nodes_b) & vicinity_a)

    def test_minimum_distance_is_h_plus_one(self, simulation_graph):
        nodes_a, nodes_b = generate_negative_pair(simulation_graph, 20, 1, random_state=6)
        b_set = set(int(x) for x in nodes_b)
        for a_node in nodes_a[:5]:
            distances = shortest_path_lengths_from(simulation_graph, int(a_node))
            for b_node in list(b_set)[:10]:
                assert distances[b_node] == -1 or distances[b_node] >= 2

    def test_covering_vicinity_raises(self):
        # A complete-ish graph: the 1-vicinity of any node covers everything.
        graph = erdos_renyi_graph(30, 0.9, random_state=7).to_csr()
        with pytest.raises(ConfigurationError):
            generate_negative_pair(graph, 10, 2, random_state=7)

    def test_b_size_capped_by_eligible_nodes(self, simulation_graph):
        nodes_a, nodes_b = generate_negative_pair(
            simulation_graph, 100, 3, random_state=8, num_b_nodes=10**5
        )
        assert nodes_b.size >= 1


class TestGenerateIndependentPair:
    def test_sizes_and_overlap_allowed(self, simulation_graph):
        nodes_a, nodes_b = generate_independent_pair(simulation_graph, 50, random_state=9)
        assert nodes_a.size == 50 and nodes_b.size == 50

    def test_disjoint_mode(self, simulation_graph):
        nodes_a, nodes_b = generate_independent_pair(
            simulation_graph, 50, random_state=9, allow_overlap=False
        )
        assert not (set(nodes_a.tolist()) & set(nodes_b.tolist()))

    def test_size_too_large_rejected(self, simulation_graph):
        with pytest.raises(ConfigurationError):
            generate_independent_pair(simulation_graph, 10**6)
