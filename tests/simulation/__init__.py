"""Test package (keeps same-named test modules importable)."""
