"""Tests for the protocol envelope: versions, epoch stamps, at_epoch pins.

v2 added the versioned envelope and epoch stamps; v3 (PR 9) added request
ids and deadlines without changing any of the semantics pinned here."""

import pytest

from repro.service.client import CorrelationClient
from repro.service.protocol import (
    BadRequestError,
    PROTO_VERSION,
    RemoteError,
    check_proto,
    error_response,
    ok_response,
    parse_at_epoch,
    raise_for_error,
)
from repro.service.server import CorrelationServer


class TestEnvelope:
    def test_ok_response_carries_proto(self):
        response = ok_response(1, {"pong": True})
        assert response["proto"] == PROTO_VERSION == 3
        assert "epoch" not in response

    def test_ok_response_mirrors_result_epoch(self):
        response = ok_response(1, {"epoch": 7, "pairs": []})
        assert response["epoch"] == 7

    def test_explicit_epoch_wins(self):
        response = ok_response(1, {"epoch": 7}, epoch=9)
        assert response["epoch"] == 9

    def test_error_response_carries_proto(self):
        response = error_response(1, BadRequestError("nope"))
        assert response["proto"] == PROTO_VERSION


class TestCheckProto:
    def test_missing_proto_is_v1(self):
        assert check_proto({"ok": True}) == 1

    def test_current_version_accepted(self):
        assert check_proto({"proto": PROTO_VERSION}) == PROTO_VERSION

    def test_newer_major_rejected(self):
        with pytest.raises(RemoteError, match="v4"):
            check_proto({"proto": 4})

    def test_malformed_version_rejected(self):
        with pytest.raises(RemoteError, match="malformed"):
            check_proto({"proto": "two"})
        with pytest.raises(RemoteError, match="malformed"):
            check_proto({"proto": 0})

    def test_raise_for_error_checks_proto_first(self):
        with pytest.raises(RemoteError, match="v4"):
            raise_for_error({"proto": 4, "ok": True, "result": {}})


class TestParseAtEpoch:
    def test_absent_is_none(self):
        assert parse_at_epoch({}) is None

    def test_integer_coerced(self):
        assert parse_at_epoch({"at_epoch": "4"}) == 4

    def test_junk_rejected(self):
        with pytest.raises(BadRequestError):
            parse_at_epoch({"at_epoch": "soon"})


@pytest.fixture(scope="module")
def server_and_client(service_dataset):
    from repro.streaming.dynamic_graph import DynamicAttributedGraph

    dataset, config = service_dataset
    attributed = dataset.attributed
    dynamic = DynamicAttributedGraph(
        attributed.csr,
        {name: attributed.event_nodes(name) for name in attributed.event_names()},
    )
    with CorrelationServer(dynamic, config, workers=1) as server:
        client = CorrelationClient(*server.address)
        yield server, client, dynamic
        client.close()


class TestOverTheWire:
    def test_responses_stamp_epoch_and_last_epoch(self, server_and_client):
        _server, client, dynamic = server_and_client
        names = sorted(dynamic.event_names())
        pairs = [(names[0], names[1])]
        response = client.rank(pairs)
        assert response["epoch"] == dynamic.epoch
        assert client.last_epoch == dynamic.epoch
        assert client.server_proto == PROTO_VERSION

    def test_commit_then_read_your_writes(self, server_and_client):
        _server, client, dynamic = server_and_client
        names = sorted(dynamic.event_names())
        pairs = [(names[0], names[1])]
        event = names[0]
        attached = set(int(n) for n in dynamic.event_nodes(event))
        fresh = next(n for n in range(dynamic.num_nodes) if n not in attached)
        lease = dynamic.pin()  # keep the pre-commit epoch readable
        old_epoch = lease.epoch
        before = client.rank(pairs)
        receipt = client.stream(
            [{"op": "event_attach", "event": event, "node": fresh}]
        )
        assert receipt["epoch"] == old_epoch + 1
        assert client.last_epoch == receipt["epoch"]
        after = client.rank(pairs, at_epoch=receipt["epoch"])
        assert after["epoch"] == receipt["epoch"]
        replay = client.rank(pairs, at_epoch=old_epoch)
        assert replay["pairs"] == before["pairs"]
        assert client.last_epoch == old_epoch
        lease.release()

    def test_expired_at_epoch_maps_to_bad_request(self, server_and_client):
        _server, client, _dynamic = server_and_client
        with pytest.raises(BadRequestError, match="not retained"):
            client.rank(at_epoch=9999)

    def test_topk_accepts_at_epoch(self, server_and_client):
        _server, client, dynamic = server_and_client
        response = client.topk(2, at_epoch=dynamic.epoch)
        assert response["epoch"] == dynamic.epoch
        assert len(response["pairs"]) == 2


class TestDefaultTopK:
    def test_server_default_caps_rank_and_topk(self, service_dataset):
        dataset, config = service_dataset
        with CorrelationServer(
            dataset.attributed, config, default_top_k=2
        ) as server:
            client = CorrelationClient(*server.address)
            try:
                assert len(client.rank()["pairs"]) == 2
                # topk may omit k entirely and fall back to the default.
                response = client.request("topk", {"pairs": "all"})
                assert len(response["pairs"]) <= 2
                # An explicit top_k still wins over the server default.
                assert len(client.rank(top_k=1)["pairs"]) == 1
            finally:
                client.close()

    def test_topk_without_k_or_default_rejected(self, service_dataset):
        dataset, config = service_dataset
        with CorrelationServer(dataset.attributed, config) as server:
            client = CorrelationClient(*server.address)
            try:
                with pytest.raises(BadRequestError, match="'k'"):
                    client.request("topk", {"pairs": "all"})
            finally:
                client.close()
