"""Shared-memory layer: publication, lifecycle, and leak-freedom."""

import threading

import numpy as np
import pytest

from repro.service import shm
from repro.service.shm import (
    SHM_PREFIX,
    ShmRegistry,
    WriteSlot,
    materialise_dataset,
    publish_dataset,
    read_array,
    unpublish_dataset,
)
from repro.streaming.delta import Delta

from tests.service.conftest import shm_segments


class TestRegistry:
    def test_publish_read_round_trip(self):
        registry = ShmRegistry()
        array = np.arange(24, dtype=np.float64).reshape(4, 6) * 0.5
        ref = registry.publish_array(array, "t")
        try:
            assert ref.name.startswith(SHM_PREFIX)
            assert ref.shape == (4, 6)
            out = read_array(ref)
            np.testing.assert_array_equal(out, array)
            # The copy is decoupled from the segment.
            out[0, 0] = -1.0
            np.testing.assert_array_equal(read_array(ref), array)
        finally:
            registry.unlink_all()

    def test_alloc_and_write_slot(self):
        registry = ShmRegistry()
        ref = registry.alloc_array((3, 5), np.int64, "buf")
        try:
            np.testing.assert_array_equal(read_array(ref), np.zeros((3, 5), np.int64))
            with WriteSlot(ref) as slot:
                slot.array[1, :] = 7
            expected = np.zeros((3, 5), np.int64)
            expected[1, :] = 7
            np.testing.assert_array_equal(read_array(ref), expected)
        finally:
            registry.unlink_all()

    def test_release_and_unlink_all_remove_segments(self):
        before = shm_segments()
        registry = ShmRegistry()
        first = registry.publish_array(np.arange(10), "a")
        second = registry.publish_array(np.arange(5), "b")
        assert registry.num_owned == 2
        assert len(shm_segments()) == len(before) + 2
        registry.release(first.name)
        registry.release(first.name)  # idempotent
        assert registry.num_owned == 1
        registry.unlink_all()
        registry.unlink_all()  # idempotent
        assert registry.num_owned == 0
        assert shm_segments() == before
        with pytest.raises(FileNotFoundError):
            read_array(second)

    def test_release_serialises_on_the_tracker_lock(self):
        """Regression: an unlink racing an attach (or an atexit GC) in
        another thread must wait for the tracker-swap window to close —
        release() has to take ``_TRACKER_LOCK`` before touching the
        segment."""
        registry = ShmRegistry()
        ref = registry.publish_array(np.arange(8), "race")
        released = threading.Event()

        def _release():
            registry.release(ref.name)
            released.set()

        thread = threading.Thread(target=_release)
        with shm._TRACKER_LOCK:
            thread.start()
            # While we hold the process-global tracker lock, the release
            # cannot reach close/unlink: the segment must still be live.
            assert not released.wait(0.2)
            assert ref.name in shm_segments()
        thread.join(timeout=5.0)
        assert released.is_set()
        assert registry.num_owned == 0
        with pytest.raises(FileNotFoundError):
            read_array(ref)

    def test_empty_array_publishes(self):
        registry = ShmRegistry()
        ref = registry.publish_array(np.empty(0, dtype=np.int64), "empty")
        try:
            assert read_array(ref).size == 0
        finally:
            registry.unlink_all()


class TestDatasetPublication:
    def test_memoised_per_version_and_republished_on_change(self, dynamic_graph):
        before = shm_segments()
        first = publish_dataset(dynamic_graph)
        again = publish_dataset(dynamic_graph)
        assert again is first  # same version -> same publication, no new blocks
        created = set(shm_segments()) - set(before)
        assert len(created) == 4  # indptr, indices, event nodes, offsets

        event = dynamic_graph.event_names()[0]
        dynamic_graph.apply([Delta.event_attach(event, 1)])
        republished = publish_dataset(dynamic_graph)
        assert republished.token != first.token
        # The stale blocks were unlinked, the new ones are live.
        with pytest.raises(FileNotFoundError):
            read_array(first.indptr)
        assert read_array(republished.indptr).size > 0

        unpublish_dataset(dynamic_graph)
        unpublish_dataset(dynamic_graph)  # idempotent
        assert shm_segments() == before

    def test_materialise_rebuilds_identical_graph(self, dynamic_graph):
        ref = publish_dataset(dynamic_graph)
        try:
            rebuilt, engine = materialise_dataset(ref)
            np.testing.assert_array_equal(
                rebuilt.csr.indptr, dynamic_graph.csr.indptr
            )
            np.testing.assert_array_equal(
                rebuilt.csr.indices, dynamic_graph.csr.indices
            )
            assert rebuilt.event_names() == dynamic_graph.event_names()
            for name in dynamic_graph.event_names():
                np.testing.assert_array_equal(
                    rebuilt.event_nodes(name), dynamic_graph.event_nodes(name)
                )
            # Cached per token: the same ref materialises to the same object.
            assert materialise_dataset(ref)[0] is rebuilt
        finally:
            unpublish_dataset(dynamic_graph)
