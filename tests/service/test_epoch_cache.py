"""Epoch-keyed result caching: no interleaving may ever serve stale data.

The service caches per-``(pair, config, universe, epoch)`` results, so the
property that matters is: after ANY sequence of stream commits and rank
queries, every answer is bit-identical to a fresh from-scratch static
ranking of the graph *as it stands at that moment*.  The suites below drive
randomised interleavings (seeded, reproducible) plus the targeted cases —
cache hits within an epoch, invalidation across epochs, no-op commits.
"""

import random

import pytest

from repro.service.engine import ServiceEngine, pair_record


def reference_records(engine, pairs):
    """What a fresh serial in-process engine answers right now."""
    return [pair_record(pair) for pair in engine.reference_ranking(pairs)]


def random_delta(rng, event_names, num_nodes):
    kind = rng.randrange(4)
    if kind == 0:
        return {
            "op": "event_attach",
            "event": rng.choice(event_names),
            "node": rng.randrange(num_nodes),
        }
    if kind == 1:
        return {
            "op": "event_detach",
            "event": rng.choice(event_names),
            "node": rng.randrange(num_nodes),
        }
    u = rng.randrange(num_nodes)
    v = rng.randrange(num_nodes)
    if u == v:
        v = (v + 1) % num_nodes
    op = "edge_add" if kind == 2 else "edge_remove"
    return {"op": op, "u": u, "v": v}


class TestEpochCacheProperty:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_interleavings_never_serve_stale_results(
        self, seed, dynamic_graph, service_dataset
    ):
        """Randomised commit/rank interleaving: every rank answer must match
        a fresh static ranking at the answering epoch, bit for bit."""
        _dataset, config = service_dataset
        rng = random.Random(seed)
        engine = ServiceEngine(dynamic_graph, config)
        event_names = dynamic_graph.event_names()
        num_nodes = dynamic_graph.num_nodes
        all_pairs = [
            (event_names[i], event_names[j])
            for i in range(0, len(event_names), 3)
            for j in range(1, len(event_names), 5)
            if event_names[i] != event_names[j]
        ][:12]

        queries = 0
        for _step in range(24):
            if rng.random() < 0.4:
                deltas = [
                    random_delta(rng, event_names, num_nodes)
                    for _ in range(rng.randint(1, 3))
                ]
                engine.commit(deltas)
            else:
                pairs = rng.sample(all_pairs, k=rng.randint(1, 4))
                result = engine.rank(pairs)
                assert result["pairs"] == reference_records(engine, pairs)
                assert result["epoch"] == engine.current_epoch()
                queries += 1
        assert queries > 0
        # The interleaving must actually have exercised the cache.
        assert engine.metrics.value("tesc_pair_cache_misses_total") > 0
        engine.close()

    def test_same_epoch_queries_hit_the_cache(self, dynamic_graph, service_dataset):
        _dataset, config = service_dataset
        engine = ServiceEngine(dynamic_graph, config)
        names = dynamic_graph.event_names()
        pairs = [(names[0], names[1]), (names[2], names[3])]
        first = engine.rank(pairs)
        assert first["computed_pairs"] == 2 and first["cached_pairs"] == 0
        second = engine.rank(pairs)
        assert second["cached_pairs"] == 2 and second["computed_pairs"] == 0
        assert second["pairs"] == first["pairs"]
        # A subset request spans a different event universe, so it draws a
        # different shared reference sample: the cache must NOT conflate the
        # two, and the recomputed answer must still match a fresh engine.
        subset = engine.rank(pairs[:1])
        assert subset["cached_pairs"] == 0 and subset["computed_pairs"] == 1
        assert subset["pairs"] == reference_records(engine, pairs[:1])
        engine.close()

    def test_commit_invalidates_exactly_by_epoch(
        self, dynamic_graph, service_dataset
    ):
        """A commit that changes a watched event's occurrences must change
        the served answer; the stale epoch's entries are never reused."""
        _dataset, config = service_dataset
        engine = ServiceEngine(dynamic_graph, config)
        names = dynamic_graph.event_names()
        pairs = [(names[0], names[1])]
        before = engine.rank(pairs)
        # Toggle many occurrences of a watched event: the restricted
        # population shifts, so a correct answer must be recomputed.
        occupied = set(dynamic_graph.event_nodes(names[0]).tolist())
        free = [n for n in range(dynamic_graph.num_nodes) if n not in occupied]
        engine.commit(
            [{"op": "event_attach", "event": names[0], "node": n}
             for n in free[:40]]
        )
        after = engine.rank(pairs)
        assert after["epoch"] == before["epoch"] + 1
        assert after["cached_pairs"] == 0  # nothing reused across the epoch
        assert after["pairs"] == reference_records(engine, pairs)
        record_before = before["pairs"][0]
        record_after = after["pairs"][0]
        assert (
            record_before["num_reference_nodes"]
            != record_after["num_reference_nodes"]
            or record_before["score"] != record_after["score"]
        )
        engine.close()

    def test_noop_commit_still_safe(self, dynamic_graph, service_dataset):
        """Attach of an existing occurrence nets to nothing; whether or not
        the epoch moves, answers must stay correct and bit-identical."""
        _dataset, config = service_dataset
        engine = ServiceEngine(dynamic_graph, config)
        names = dynamic_graph.event_names()
        node = int(dynamic_graph.event_nodes(names[0])[0])
        pairs = [(names[0], names[1])]
        before = engine.rank(pairs)
        engine.commit([{"op": "event_attach", "event": names[0], "node": node}])
        after = engine.rank(pairs)
        assert after["pairs"] == reference_records(engine, pairs)
        assert [r["score"] for r in after["pairs"]] == [
            r["score"] for r in before["pairs"]
        ]
        engine.close()

    def test_topk_cache_respects_epochs(self, dynamic_graph, service_dataset):
        _dataset, config = service_dataset
        engine = ServiceEngine(dynamic_graph, config)
        names = dynamic_graph.event_names()
        first = engine.topk(3)
        again = engine.topk(3)
        assert again is first or again == first
        assert engine.metrics.value("tesc_topk_cache_hits_total") == 1
        reference = engine.reference_ranking("all", top_k=3)
        assert first["pairs"] == [pair_record(pair) for pair in reference]
        occupied = set(dynamic_graph.event_nodes(names[0]).tolist())
        free = [n for n in range(dynamic_graph.num_nodes) if n not in occupied]
        engine.commit(
            [{"op": "event_attach", "event": names[0], "node": n}
             for n in free[:30]]
        )
        fresh = engine.topk(3)
        assert fresh["epoch"] == first["epoch"] + 1
        reference = engine.reference_ranking("all", top_k=3)
        assert fresh["pairs"] == [pair_record(pair) for pair in reference]
        engine.close()
