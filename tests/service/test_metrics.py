"""End-to-end telemetry: exact counter reconciliation and span coverage.

A scripted session (N ranks, K topks, M commits, one queue-full burst)
must reconcile the metrics registry *exactly* against the request history —
no lost increments, no phantom counts — and the recorded span trees must
cover the measured wall time of the requests they describe.
"""

import threading
import time

import pytest

from repro.service import (
    CorrelationClient,
    CorrelationServer,
    OverloadedError,
)
from repro.service.engine import ServiceEngine
from repro.streaming.dynamic_graph import DynamicAttributedGraph


def metric(snapshot, name, **labels):
    """One value out of a ``metrics`` snapshot (histograms: their count)."""
    family = snapshot[name]
    wanted = {key: str(value) for key, value in labels.items()}
    for entry in family["values"]:
        if entry["labels"] == wanted:
            if family["type"] == "histogram":
                return entry["count"]
            return entry["value"]
    raise AssertionError(f"no {labels!r} series in {name}: {family['values']}")


def fresh_dynamic(service_dataset):
    dataset, _config = service_dataset
    attributed = dataset.attributed
    return DynamicAttributedGraph(
        attributed.csr,
        {name: attributed.event_nodes(name)
         for name in attributed.event_names()},
    )


class TestScriptedSessionReconciliation:
    def test_counters_reconcile_exactly(self, service_dataset):
        """N ranks + K topks + M commits + a 429 burst, reconciled exactly."""
        _dataset, config = service_dataset
        graph = fresh_dynamic(service_dataset)
        release = threading.Event()
        entered = threading.Event()
        holding = {"on": False}

        def throttle(_method):
            if holding["on"]:
                entered.set()
                release.wait(timeout=10.0)

        server = CorrelationServer(
            graph, config, workers=1,
            max_concurrency=1, max_queue=1, queue_timeout=30.0,
            throttle=throttle,
        )
        server.start()
        try:
            host, port = server.address
            names = graph.event_names()
            rank_specs = [
                [(names[0], names[1])],
                [(names[0], names[1]), (names[2], names[3])],
                [(names[0], names[1])],          # repeat: pure cache hits
                [(names[4], names[5])],
                [(names[0], names[1]), (names[2], names[3])],  # repeat again
            ]
            num_topk, num_commits = 2, 3
            with CorrelationClient(host, port, timeout=60.0) as client:
                for spec in rank_specs:
                    client.rank(list(spec))
                for _ in range(num_topk):
                    client.topk(2)
                free_node = graph.num_nodes - 1
                for index in range(num_commits):
                    client.stream([{
                        "op": "event_attach", "event": names[0],
                        "node": free_node - index,
                    }])

                # Queue-full burst: 1 running + 1 queued, the rest 429.
                holding["on"] = True
                outcomes = []
                lock = threading.Lock()

                def attempt():
                    try:
                        with CorrelationClient(host, port, timeout=60.0) as c:
                            c.rank([(names[0], names[1])])
                        with lock:
                            outcomes.append("ok")
                    except OverloadedError:
                        with lock:
                            outcomes.append("rejected")

                threads = [threading.Thread(target=attempt) for _ in range(5)]
                threads[0].start()
                assert entered.wait(timeout=10.0)
                for thread in threads[1:]:
                    thread.start()
                deadline = time.monotonic() + 15.0
                while time.monotonic() < deadline:
                    with lock:
                        if outcomes.count("rejected") >= 3:
                            break
                    time.sleep(0.02)
                release.set()
                for thread in threads:
                    thread.join(timeout=60)
                holding["on"] = False
                assert sorted(set(outcomes)) == ["ok", "rejected"]
                ok = outcomes.count("ok")
                rejected = outcomes.count("rejected")
                assert ok + rejected == 5

                snap = client.metrics()["metrics"]

            # -- request counters reconcile with the script, exactly --------
            num_ranks = len(rank_specs) + ok
            assert metric(snap, "tesc_requests_total", method="rank") == num_ranks
            assert metric(snap, "tesc_requests_total", method="topk") == num_topk
            assert metric(
                snap, "tesc_requests_total", method="commit"
            ) == num_commits
            assert metric(
                snap, "tesc_request_seconds", method="rank"
            ) == num_ranks
            assert metric(
                snap, "tesc_request_seconds", method="topk"
            ) == num_topk
            assert metric(snap, "tesc_commits_total") == num_commits
            assert metric(snap, "tesc_commit_seconds") == num_commits

            # -- every requested pair is a hit or a miss, nothing lost -------
            pairs_requested = sum(len(spec) for spec in rank_specs) + ok
            hits = metric(snap, "tesc_pair_cache_hits_total")
            misses = metric(snap, "tesc_pair_cache_misses_total")
            assert hits + misses == pairs_requested
            assert misses >= 3  # three distinct rank workloads
            assert hits >= 3    # the repeats and the burst (same epoch)

            # -- admission reconciles with the burst -------------------------
            gated = num_ranks + num_topk + num_commits
            assert metric(snap, "tesc_admission_admitted_total") == gated
            assert metric(snap, "tesc_admission_rejected_total") == rejected
            assert metric(snap, "tesc_admission_timed_out_total") == 0
            assert metric(snap, "tesc_admission_running") == 0
            assert metric(snap, "tesc_admission_queue_depth") == 0

            # -- MVCC accounting: reads pin, and every pin was released ------
            assert metric(
                snap, "tesc_snapshots_pinned_total"
            ) == num_ranks + num_topk
            assert metric(snap, "tesc_reader_pins") == 0
            assert metric(snap, "tesc_topk_cache_hits_total") == num_topk - 1
            assert metric(snap, "tesc_retained_epochs") >= 1
        finally:
            release.set()
            server.close()

    def test_metrics_verb_is_ungated_and_serves_exposition(
        self, service_dataset
    ):
        _dataset, config = service_dataset
        graph = fresh_dynamic(service_dataset)
        with CorrelationServer(graph, config, workers=1) as server:
            host, port = server.address
            with CorrelationClient(host, port) as client:
                names = graph.event_names()
                client.rank([(names[0], names[1])])
                payload = client.metrics(traces=4)
        text = payload["exposition"]
        assert "# TYPE tesc_requests_total counter" in text
        assert 'tesc_requests_total{method="rank"} 1' in text
        assert "tesc_request_seconds_bucket" in text
        trees = payload["traces"]
        assert [tree["name"] for tree in trees] == ["request"]
        assert trees[0]["tags"]["method"] == "rank"
        stages = {child["name"] for child in trees[0]["children"]}
        assert "admission" in stages and "rank" in stages


class TestSpanCoverage:
    def test_span_trees_cover_measured_wall_time(self, service_dataset):
        """Recorded root spans cover >= 95% of the wall time around calls."""
        _dataset, config = service_dataset
        graph = fresh_dynamic(service_dataset)
        engine = ServiceEngine(graph, config, workers=1)
        try:
            names = graph.event_names()
            workloads = [
                [(names[0], names[1])],
                [(names[2], names[3]), (names[4], names[5])],
                [(names[1], names[2])],
            ]
            walls = []
            for spec in workloads:
                t0 = time.perf_counter()
                engine.rank(spec)
                walls.append(time.perf_counter() - t0)
            roots = engine.trace_buffer.spans()
            assert len(roots) == len(workloads)
            for root, wall in zip(roots, walls):
                assert root.name == "rank"
                assert root.duration <= wall
                assert root.duration >= 0.95 * wall, (
                    f"span {root.duration:.6f}s covers less than 95% of "
                    f"the measured {wall:.6f}s"
                )
                # Children never exceed their parent and the cache-missing
                # stages are all present.
                assert root.child_seconds() <= root.duration + 1e-6
                stages = {child.name for child in root.children}
                assert {"sampling", "density", "estimate"} <= stages
        finally:
            engine.close()

    def test_worker_span_attribution_bounded_by_stage(self, service_dataset):
        """Remote worker spans graft under their stage and never exceed it."""
        _dataset, config = service_dataset
        graph = fresh_dynamic(service_dataset)
        engine = ServiceEngine(graph, config, workers=2)
        try:
            names = graph.event_names()
            pairs = [
                (names[i], names[j])
                for i in range(4) for j in range(4) if i < j
            ]
            engine.rank(pairs)
            root = engine.trace_buffer.spans()[-1]
            remote = [span for span in root.find("worker:density_shard")]
            remote += [span for span in root.find("worker:estimate_shard")]
            assert remote, "worker spans were not propagated across the fork"
            for span in remote:
                assert span.remote is True
                assert span.tags.get("pid")
            for stage_name in ("density", "estimate"):
                for stage_span in root.find(stage_name):
                    for child in stage_span.children:
                        if not child.remote:
                            continue
                        # A worker's self-measured time is bounded by the
                        # wall time of the stage that dispatched it.
                        assert child.duration <= stage_span.duration + 1e-6
        finally:
            engine.close()


class TestThreadHammerExactness:
    def test_no_lost_increments_under_threads(self, service_dataset):
        """4 threads x mixed direct requests: counters reconcile exactly."""
        _dataset, config = service_dataset
        graph = fresh_dynamic(service_dataset)
        engine = ServiceEngine(graph, config, workers=1)
        try:
            names = graph.event_names()
            per_thread = 12
            num_threads = 4
            errors = []

            def hammer(thread_id):
                try:
                    for index in range(per_thread):
                        which = (thread_id + index) % 3
                        if which == 0:
                            engine.rank([(names[0], names[1])])
                        elif which == 1:
                            engine.topk(2)
                        else:
                            engine.commit([{
                                "op": "event_attach", "event": names[2],
                                "node": (thread_id * per_thread + index)
                                % graph.num_nodes,
                            }])
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append(exc)

            threads = [
                threading.Thread(target=hammer, args=(i,))
                for i in range(num_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            assert not errors

            total = per_thread * num_threads
            expected = {"rank": 0, "topk": 0, "commit": 0}
            for thread_id in range(num_threads):
                for index in range(per_thread):
                    which = (thread_id + index) % 3
                    expected[("rank", "topk", "commit")[which]] += 1
            snap = engine.metrics.snapshot()
            for method, count in expected.items():
                assert metric(
                    snap, "tesc_requests_total", method=method
                ) == count
                assert metric(
                    snap, "tesc_request_seconds", method=method
                ) == count
            assert sum(expected.values()) == total
            assert metric(snap, "tesc_commits_total") == expected["commit"]
            hits = metric(snap, "tesc_pair_cache_hits_total")
            misses = metric(snap, "tesc_pair_cache_misses_total")
            assert hits + misses == expected["rank"]  # one pair per rank
            assert metric(snap, "tesc_reader_pins") == 0
            assert metric(
                snap, "tesc_snapshots_pinned_total"
            ) == expected["rank"] + expected["topk"]
            # The trace buffer saw every request (its ring may have evicted
            # older trees, but the recorded count is lossless).
            assert engine.trace_buffer.recorded == total
        finally:
            engine.close()
