"""Persistent pool: dispatch, crash recovery, and the pooled density pass."""

import os

import numpy as np
import pytest

from repro.core.batch import event_universe, make_config_sampler
from repro.core.density import DensityComputer
from repro.service.pool import (
    PersistentWorkerPool,
    WorkerCrashedError,
    pooled_density_matrix,
)

from tests.service.conftest import shm_segments


def _double(value):
    return value * 2


def _crash_unless_marked(flag_path, value):
    """Die hard on the first run; succeed once the flag file exists.

    Models a worker killed mid-task (OOM, SIGKILL): ``os._exit`` skips all
    cleanup, so the executor sees a vanished process and breaks.
    """
    if not os.path.exists(flag_path):
        with open(flag_path, "w"):
            pass
        os._exit(1)
    return value


def _always_crash():
    os._exit(1)


@pytest.fixture()
def pool():
    instance = PersistentWorkerPool()
    yield instance
    instance.shutdown()


class TestRunTasks:
    def test_results_preserve_submission_order(self, pool):
        results = pool.run_tasks(_double, [(i,) for i in range(7)], workers=2)
        assert results == [0, 2, 4, 6, 8, 10, 12]
        assert pool.stats.batches_dispatched == 1
        assert pool.stats.tasks_dispatched == 7

    def test_empty_batch_never_spawns(self, pool):
        assert pool.run_tasks(_double, [], workers=4) == []
        assert not pool.running
        assert pool.stats.pools_spawned == 0

    def test_grow_only(self, pool):
        pool.ensure(2)
        assert pool.workers == 2
        spawned = pool.stats.pools_spawned
        pool.ensure(1)  # never shrinks
        assert pool.workers == 2
        assert pool.stats.pools_spawned == spawned
        pool.ensure(3)  # growing re-forks
        assert pool.workers == 3
        assert pool.stats.pools_spawned == spawned + 1

    def test_shutdown_then_reuse(self, pool):
        pool.run_tasks(_double, [(1,)], workers=1)
        pool.shutdown()
        assert not pool.running and pool.workers == 0
        assert pool.run_tasks(_double, [(2,)], workers=1) == [4]


class TestCrashRecovery:
    def test_killed_worker_respawned_without_wedging(self, pool, tmp_path):
        """One worker death mid-batch: the pool rebuilds itself and the
        in-flight batch is resubmitted and completes — no hang, no error."""
        flag = str(tmp_path / "crashed-once")
        results = pool.run_tasks(
            _crash_unless_marked, [(flag, 11), (flag, 22)], workers=2
        )
        assert results == [11, 22]
        assert pool.stats.crashes_recovered == 1
        assert pool.running

    def test_repeated_crashes_surface_cleanly(self, pool):
        with pytest.raises(WorkerCrashedError):
            pool.run_tasks(_always_crash, [(), ()], workers=2)
        # The failure left a fresh pool behind, not a wedged one.
        assert pool.running
        assert pool.run_tasks(_double, [(3,)], workers=1) == [6]

    def test_crash_leaves_no_shared_memory(self, pool):
        before = shm_segments()
        with pytest.raises(WorkerCrashedError):
            pool.run_tasks(_always_crash, [()], workers=1)
        assert shm_segments() == before


class TestPooledDensity:
    def test_matches_serial_density_pass_exactly(self, pool, service_dataset):
        """Column-sharded counts/sizes/densities are bit-identical to the
        one-shot serial pass, for any shard count."""
        dataset, config = service_dataset
        attributed = dataset.attributed
        events = sorted(attributed.event_names())[:12]
        universe = event_universe(attributed, events)
        sample = make_config_sampler(attributed, config).sample(
            universe, config.vicinity_level, config.sample_size
        )
        indicators = attributed.indicator_matrix(events)
        serial = DensityComputer(attributed.csr).density_matrix(
            sample.nodes, indicators, config.vicinity_level
        )
        for workers in (1, 2, 3):
            matrix, bfs_calls = pooled_density_matrix(
                pool, attributed, sample.nodes, events,
                config.vicinity_level, workers,
            )
            np.testing.assert_array_equal(matrix.counts, serial.counts)
            np.testing.assert_array_equal(
                matrix.vicinity_sizes, serial.vicinity_sizes
            )
            np.testing.assert_array_equal(matrix.densities, serial.densities)
            assert bfs_calls > 0

    def test_transient_blocks_released(self, pool, service_dataset):
        """Per-call blocks (sample, counts, sizes) are unlinked after each
        pass; only the memoised dataset publication stays live."""
        from repro.service.shm import unpublish_dataset

        dataset, config = service_dataset
        attributed = dataset.attributed
        events = sorted(attributed.event_names())[:6]
        universe = event_universe(attributed, events)
        sample = make_config_sampler(attributed, config).sample(
            universe, config.vicinity_level, 50
        )
        before = shm_segments()
        pooled_density_matrix(
            pool, attributed, sample.nodes, events, config.vicinity_level, 2
        )
        after = shm_segments()
        created = set(after) - set(before)
        assert all(
            name.split("_")[1] in ("indptr", "indices", "evnodes", "evoffs")
            for name in created
        )
        unpublish_dataset(attributed)
        assert set(shm_segments()) <= set(before)
