"""Persistent pool: dispatch, crash recovery, supervision, pooled density."""

import os

import numpy as np
import pytest

from repro.core.batch import event_universe, make_config_sampler
from repro.core.density import DensityComputer
from repro.service import faults
from repro.service.pool import (
    CircuitBreaker,
    PersistentWorkerPool,
    PoolSupervisor,
    WorkerCrashedError,
    pooled_density_matrix,
)

from tests.service.conftest import shm_segments


def _double(value):
    return value * 2


def _crash_unless_marked(flag_path, value):
    """Die hard on the first run; succeed once the flag file exists.

    Models a worker killed mid-task (OOM, SIGKILL): ``os._exit`` skips all
    cleanup, so the executor sees a vanished process and breaks.
    """
    if not os.path.exists(flag_path):
        with open(flag_path, "w"):
            pass
        os._exit(1)
    return value


def _always_crash():
    os._exit(1)


@pytest.fixture()
def pool():
    instance = PersistentWorkerPool()
    yield instance
    instance.shutdown()


class TestRunTasks:
    def test_results_preserve_submission_order(self, pool):
        results = pool.run_tasks(_double, [(i,) for i in range(7)], workers=2)
        assert results == [0, 2, 4, 6, 8, 10, 12]
        assert pool.stats.batches_dispatched == 1
        assert pool.stats.tasks_dispatched == 7

    def test_empty_batch_never_spawns(self, pool):
        assert pool.run_tasks(_double, [], workers=4) == []
        assert not pool.running
        assert pool.stats.pools_spawned == 0

    def test_grow_only(self, pool):
        pool.ensure(2)
        assert pool.workers == 2
        spawned = pool.stats.pools_spawned
        pool.ensure(1)  # never shrinks
        assert pool.workers == 2
        assert pool.stats.pools_spawned == spawned
        pool.ensure(3)  # growing re-forks
        assert pool.workers == 3
        assert pool.stats.pools_spawned == spawned + 1

    def test_shutdown_then_reuse(self, pool):
        pool.run_tasks(_double, [(1,)], workers=1)
        pool.shutdown()
        assert not pool.running and pool.workers == 0
        assert pool.run_tasks(_double, [(2,)], workers=1) == [4]


class TestCrashRecovery:
    def test_killed_worker_respawned_without_wedging(self, pool, tmp_path):
        """One worker death mid-batch: the pool rebuilds itself and the
        in-flight batch is resubmitted and completes — no hang, no error."""
        flag = str(tmp_path / "crashed-once")
        results = pool.run_tasks(
            _crash_unless_marked, [(flag, 11), (flag, 22)], workers=2
        )
        assert results == [11, 22]
        assert pool.stats.crashes_recovered == 1
        assert pool.running

    def test_repeated_crashes_surface_cleanly(self, pool):
        with pytest.raises(WorkerCrashedError):
            pool.run_tasks(_always_crash, [(), ()], workers=2)
        # The failure left a fresh pool behind, not a wedged one.
        assert pool.running
        assert pool.run_tasks(_double, [(3,)], workers=1) == [6]

    def test_crash_leaves_no_shared_memory(self, pool):
        before = shm_segments()
        with pytest.raises(WorkerCrashedError):
            pool.run_tasks(_always_crash, [()], workers=1)
        assert shm_segments() == before

    def test_second_crash_path_exact(self, pool):
        """The double-break path end to end: a batch that breaks the pool
        twice raises WorkerCrashedError after exactly two transparent
        respawns, leaves no shared memory behind, and the replacement pool
        answers the very next batch."""
        before_shm = shm_segments()
        assert pool.stats.crashes_recovered == 0
        with pytest.raises(WorkerCrashedError):
            pool.run_tasks(_always_crash, [(), ()], workers=2)
        # Attempt 1 broke and respawned, attempt 2 broke and respawned:
        # both recoveries are counted, nothing more.
        assert pool.stats.crashes_recovered == 2
        assert pool.stats.respawns_denied == 0
        assert shm_segments() == before_shm
        assert pool.running
        assert pool.run_tasks(_double, [(21,)], workers=1) == [42]
        assert pool.stats.crashes_recovered == 2  # clean batch adds none


class TestRespawnBudget:
    def test_budget_exhaustion_downs_the_pool(self):
        pool = PersistentWorkerPool(respawn_budget=1)
        try:
            with pytest.raises(WorkerCrashedError):
                pool.run_tasks(_always_crash, [()], workers=1)
            # One respawn was allowed, the second was denied.
            assert pool.stats.crashes_recovered == 1
            assert pool.stats.respawns_denied == 1
            assert pool.respawns_left == 0
            assert not pool.running
            # While exhausted, callers fail fast instead of forking.
            with pytest.raises(WorkerCrashedError, match="budget exhausted"):
                pool.run_tasks(_double, [(1,)], workers=1)
            # Resetting the budget brings the pool back.
            pool.set_respawn_budget(None)
            assert pool.run_tasks(_double, [(2,)], workers=1) == [4]
        finally:
            pool.shutdown()

    def test_probe_reports_health_without_raising(self, pool):
        health = pool.probe()
        assert health.ok and len(health.pids) >= 1
        downed = PersistentWorkerPool(respawn_budget=0)
        try:
            with pytest.raises(WorkerCrashedError):
                downed.run_tasks(_always_crash, [()], workers=1)
            health = downed.probe()
            assert not health.ok
            assert "budget" in health.error
        finally:
            downed.shutdown()


class TestDispatchFaultSeam:
    def test_kill_worker_rule_recovers_transparently(self, pool):
        """A deterministic worker kill at dispatch is absorbed: the batch is
        resubmitted on a fresh pool and completes with correct results."""
        pool.ensure(2)
        assert pool.probe().ok  # force worker processes to actually exist
        with faults.armed(
            faults.FaultRule(
                faults.WORKER_DISPATCH, action="kill_worker", at=1, times=1,
                match={"task": "_double"},
            )
        ) as plan:
            results = pool.run_tasks(_double, [(i,) for i in range(4)], workers=2)
        assert results == [0, 2, 4, 6]
        assert len(plan.fired_at(faults.WORKER_DISPATCH)) == 1
        assert pool.stats.crashes_recovered >= 1

    def test_disarmed_seam_is_inert(self, pool):
        assert faults.active() is None
        assert pool.run_tasks(_double, [(5,)], workers=1) == [10]


class TestCircuitBreaker:
    def test_state_machine(self):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=2, cooldown_seconds=5.0,
                                 clock=lambda: now[0])
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED  # below threshold
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        now[0] = 4.9
        assert not breaker.allow()
        now[0] = 5.1
        assert breaker.allow()  # the single half-open trial
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()  # only one trial in flight
        breaker.record_failure()  # trial failed: re-open
        assert breaker.state == CircuitBreaker.OPEN
        now[0] = 11.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_transitions_counted(self):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=1.0,
                                 clock=lambda: now[0])
        breaker.record_failure()          # closed -> open
        now[0] = 2.0
        breaker.allow()                   # open -> half_open
        breaker.record_success()          # half_open -> closed
        assert breaker.transitions == 3


class TestPoolSupervisor:
    def test_degraded_follows_breaker(self, pool):
        supervisor = PoolSupervisor(pool, CircuitBreaker(failure_threshold=1))
        assert supervisor.allow() and not supervisor.degraded
        supervisor.record_failure(WorkerCrashedError("boom"))
        assert supervisor.degraded and not supervisor.allow()
        described = supervisor.describe()
        assert described["breaker_state"] == CircuitBreaker.OPEN
        assert described["pool_failures"] == 1
        assert "WorkerCrashedError" in described["last_error"]

    def test_probe_does_not_touch_breaker(self, pool):
        supervisor = PoolSupervisor(pool, CircuitBreaker(failure_threshold=1))
        assert supervisor.probe().ok
        assert supervisor.breaker.state == CircuitBreaker.CLOSED


class TestPooledDensity:
    def test_matches_serial_density_pass_exactly(self, pool, service_dataset):
        """Column-sharded counts/sizes/densities are bit-identical to the
        one-shot serial pass, for any shard count."""
        dataset, config = service_dataset
        attributed = dataset.attributed
        events = sorted(attributed.event_names())[:12]
        universe = event_universe(attributed, events)
        sample = make_config_sampler(attributed, config).sample(
            universe, config.vicinity_level, config.sample_size
        )
        indicators = attributed.indicator_matrix(events)
        serial = DensityComputer(attributed.csr).density_matrix(
            sample.nodes, indicators, config.vicinity_level
        )
        for workers in (1, 2, 3):
            matrix, bfs_calls = pooled_density_matrix(
                pool, attributed, sample.nodes, events,
                config.vicinity_level, workers,
            )
            np.testing.assert_array_equal(matrix.counts, serial.counts)
            np.testing.assert_array_equal(
                matrix.vicinity_sizes, serial.vicinity_sizes
            )
            np.testing.assert_array_equal(matrix.densities, serial.densities)
            assert bfs_calls > 0

    def test_transient_blocks_released(self, pool, service_dataset):
        """Per-call blocks (sample, counts, sizes) are unlinked after each
        pass; only the memoised dataset publication stays live."""
        from repro.service.shm import unpublish_dataset

        dataset, config = service_dataset
        attributed = dataset.attributed
        events = sorted(attributed.event_names())[:6]
        universe = event_universe(attributed, events)
        sample = make_config_sampler(attributed, config).sample(
            universe, config.vicinity_level, 50
        )
        before = shm_segments()
        pooled_density_matrix(
            pool, attributed, sample.nodes, events, config.vicinity_level, 2
        )
        after = shm_segments()
        created = set(after) - set(before)
        assert all(
            name.split("_")[1] in ("indptr", "indices", "evnodes", "evoffs")
            for name in created
        )
        unpublish_dataset(attributed)
        assert set(shm_segments()) <= set(before)
