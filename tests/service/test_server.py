"""Server protocol edge cases, lifecycle, and shared-memory hygiene."""

import errno
import json
import socket
import time

import pytest

from repro.service.client import CorrelationClient
from repro.service.protocol import BadRequestError, RemoteError
from repro.service.server import CorrelationServer
from repro.streaming.dynamic_graph import DynamicAttributedGraph

from tests.service.conftest import shm_segments


@pytest.fixture()
def static_server(service_dataset):
    dataset, config = service_dataset
    with CorrelationServer(dataset.attributed, config, workers=1) as server:
        yield server


def raw_exchange(address, payload: bytes) -> dict:
    """Send raw bytes over a fresh socket, return the decoded response."""
    with socket.create_connection(address, timeout=30) as sock:
        sock.sendall(payload)
        with sock.makefile("rb") as reader:
            line = reader.readline()
    assert line, "server closed the connection without answering"
    return json.loads(line.decode("utf-8"))


class TestProtocolEdges:
    def test_malformed_json_gets_400_not_disconnect(self, static_server):
        response = raw_exchange(static_server.address, b"this is not json\n")
        assert response["ok"] is False
        assert response["error"]["code"] == 400
        assert response["id"] is None

    def test_non_object_message_gets_400(self, static_server):
        response = raw_exchange(static_server.address, b"[1, 2, 3]\n")
        assert response["ok"] is False
        assert response["error"]["code"] == 400

    def test_request_id_echoed_on_errors(self, static_server):
        payload = json.dumps({"id": 42, "method": "nope", "params": {}})
        response = raw_exchange(static_server.address, payload.encode() + b"\n")
        assert response["id"] == 42
        assert response["ok"] is False
        assert response["error"]["code"] == 400

    def test_missing_method_gets_400(self, static_server):
        payload = json.dumps({"id": 1, "params": {}})
        response = raw_exchange(static_server.address, payload.encode() + b"\n")
        assert response["error"]["code"] == 400

    def test_connection_survives_a_bad_request(self, static_server):
        """One bad line must not poison the connection for the next request."""
        host, port = static_server.address
        with CorrelationClient(host, port) as client:
            with pytest.raises(BadRequestError):
                client.request("rank", {"pairs": [["no_such_event", "also_no"]]})
            assert client.ping()

    def test_unknown_event_and_bad_config_are_400(self, static_server):
        host, port = static_server.address
        with CorrelationClient(host, port) as client:
            with pytest.raises(BadRequestError):
                client.rank([("ghost_event", "bg_0")])
            with pytest.raises(BadRequestError):
                client.rank("all", config={"not_a_field": 3})
            with pytest.raises(BadRequestError):
                client.request("topk", {"k": "three"})
            with pytest.raises(BadRequestError):
                client.request("topk", {})  # k missing entirely

    def test_static_graph_rejects_stream(self, static_server):
        host, port = static_server.address
        with CorrelationClient(host, port) as client:
            with pytest.raises(BadRequestError):
                client.stream([{"op": "edge_add", "u": 0, "v": 5}])


class TestStatusAndLifecycle:
    def test_status_reports_admission_and_engine_state(self, static_server):
        host, port = static_server.address
        with CorrelationClient(host, port) as client:
            status = client.status()
            assert status["dynamic"] is False
            assert status["epoch"] == 0
            assert status["admission"]["max_concurrency"] == 4
            assert status["admission"]["running"] == 0
            client.rank([("bg_0", "bg_1")])
            status = client.status()
            assert status["admission"]["admitted"] == 1
            requests = status["metrics"]["tesc_requests_total"]["values"]
            assert [
                entry["value"] for entry in requests
                if entry["labels"] == {"method": "rank"}
            ] == [1]
            assert status["cached_pair_results"] == 1

    def test_shutdown_stops_accepting(self, service_dataset):
        dataset, config = service_dataset
        server = CorrelationServer(dataset.attributed, config, workers=1)
        server.start()
        host, port = server.address
        with CorrelationClient(host, port) as client:
            assert client.shutdown()["stopping"] is True
        assert server._stopping.wait(timeout=30)
        server.close()  # idempotent with the shutdown-triggered teardown
        # The shutdown-triggered teardown runs on its own thread; give the
        # listener a bounded window to actually disappear from the port.
        deadline = time.monotonic() + 30
        refused = False
        while time.monotonic() < deadline:
            try:
                with socket.create_connection((host, port), timeout=5):
                    pass
            except OSError as exc:
                assert exc.errno in (
                    errno.ECONNREFUSED, errno.ECONNRESET, errno.ETIMEDOUT
                )
                refused = True
                break
            time.sleep(0.05)
        assert refused, "listener still accepting 30s after shutdown"

    def test_close_leaves_no_shared_memory(self, service_dataset):
        dataset, config = service_dataset
        attributed = dataset.attributed
        graph = DynamicAttributedGraph(
            attributed.csr,
            {name: attributed.event_nodes(name)
             for name in attributed.event_names()},
        )
        before = shm_segments()
        server = CorrelationServer(graph, config, workers=2)
        server.start()
        host, port = server.address
        with CorrelationClient(host, port) as client:
            client.rank([("bg_0", "bg_1"), ("bg_2", "pos_a_0")])
            client.stream([{"op": "event_attach", "event": "bg_0", "node": 1}])
            client.rank([("bg_0", "bg_1")])
        server.close()
        assert shm_segments() == before

    def test_client_raises_remote_error_after_server_gone(self, service_dataset):
        dataset, config = service_dataset
        server = CorrelationServer(dataset.attributed, config, workers=1)
        server.start()
        host, port = server.address
        client = CorrelationClient(host, port)
        assert client.ping()
        server.close()
        with pytest.raises(RemoteError):
            client.ping()
        client.close()
