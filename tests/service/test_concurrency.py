"""Concurrency: interleaved clients stay bit-identical; backpressure is clean.

Satellite 1 of the service PR.  Two obligations:

* N threads hammering ``rank``/``topk`` interleaved over one server get
  answers bit-identical to the serial in-process engine — caching and the
  shared worker pool must never leak state between requests;
* when the admission queue fills, excess requests get a clean 429/408
  error response — never a hang, never a corrupted connection.
"""

import threading
import time

import pytest

from repro.core.batch import BatchTescEngine
from repro.service.client import CorrelationClient, rank_records
from repro.service.engine import pair_record
from repro.service.protocol import OverloadedError, RequestTimeoutError
from repro.service.server import CorrelationServer


@pytest.fixture(scope="module")
def static_graph(service_dataset):
    dataset, _config = service_dataset
    return dataset.attributed


@pytest.fixture(scope="module")
def serial_references(static_graph, service_dataset):
    """Precomputed serial answers for every workload the threads will send."""
    _dataset, config = service_dataset
    names = sorted(static_graph.event_names())
    workloads = []
    for offset in range(6):
        pairs = [
            (names[(offset + i) % len(names)], names[(offset + 3 * i + 1) % len(names)])
            for i in range(1, 5)
        ]
        pairs = [p for p in pairs if p[0] != p[1]]
        workloads.append(tuple(pairs))
    # One FRESH engine per workload: a long-lived engine's sampler RNG
    # advances across calls, while the service reproduces a from-scratch
    # engine's draw for every (universe, epoch) — that is the contract.
    references = {
        pairs: [
            pair_record(pair)
            for pair in BatchTescEngine(static_graph, config).rank_pairs(
                list(pairs)
            )
        ]
        for pairs in set(workloads)
    }
    topk_reference = [
        pair_record(pair)
        for pair in BatchTescEngine(static_graph, config).rank_pairs(
            "all", top_k=3
        )
    ]
    return workloads, references, topk_reference


class TestInterleavedClients:
    def test_n_threads_bit_identical_to_serial(
        self, static_graph, service_dataset, serial_references
    ):
        _dataset, config = service_dataset
        workloads, references, topk_reference = serial_references
        errors = []
        with CorrelationServer(static_graph, config, workers=1) as server:
            host, port = server.address

            def hammer(thread_id):
                try:
                    with CorrelationClient(host, port) as client:
                        for round_no in range(3):
                            pairs = workloads[(thread_id + round_no) % len(workloads)]
                            result = client.rank(list(pairs))
                            assert result["pairs"] == references[pairs], (
                                f"thread {thread_id} round {round_no}: "
                                "rank diverged from serial"
                            )
                            if (thread_id + round_no) % 2 == 0:
                                top = client.topk(3)
                                assert top["pairs"] == topk_reference, (
                                    f"thread {thread_id} round {round_no}: "
                                    "topk diverged from serial"
                                )
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append((thread_id, exc))

            threads = [
                threading.Thread(target=hammer, args=(i,)) for i in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
                assert not thread.is_alive(), "client thread hung"
        assert errors == [], f"thread failures: {errors}"

    def test_rank_records_helper_orders_consistently(
        self, static_graph, service_dataset, serial_references
    ):
        """Two clients asking for the same thing concurrently see the same
        wire-level records (one computes, one is served from cache)."""
        _dataset, config = service_dataset
        workloads, references, _ = serial_references
        pairs = workloads[0]
        with CorrelationServer(static_graph, config, workers=1) as server:
            host, port = server.address
            results = [None, None]

            def fetch(slot):
                with CorrelationClient(host, port) as client:
                    results[slot] = client.rank(list(pairs))

            threads = [
                threading.Thread(target=fetch, args=(i,)) for i in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert results[0] is not None and results[1] is not None
            assert rank_records(results[0]) == rank_records(results[1])
            assert results[0]["pairs"] == references[pairs]
            with CorrelationClient(host, port) as client:
                # Racing identical requests shared one matrix computation
                # (the loser of the miss-lock race is filled by re-check).
                metrics = client.status()["metrics"]
                computed = metrics["tesc_matrices_computed_total"]["values"]
                assert computed[0]["value"] == 1
                # And a later identical request is a pure cache hit.
                third = client.rank(list(pairs))
            assert third["cached_pairs"] == len(pairs)
            assert third["computed_pairs"] == 0
            assert third["pairs"] == references[pairs]


class TestBackpressure:
    def test_queue_full_rejects_cleanly_not_hangs(
        self, static_graph, service_dataset, serial_references
    ):
        """max_concurrency=1, max_queue=1, slow handler: with six clients in
        flight at once, at least one is turned away with a 429 — and every
        thread terminates, no request wedges the server."""
        _dataset, config = service_dataset
        workloads, references, _ = serial_references
        pairs = workloads[0]
        release = threading.Event()
        entered = threading.Event()

        def throttle(method):
            entered.set()
            release.wait(timeout=10.0)

        outcomes = []
        outcomes_lock = threading.Lock()
        server = CorrelationServer(
            static_graph, config, workers=1,
            max_concurrency=1, max_queue=1, queue_timeout=30.0,
            throttle=throttle,
        )
        server.start()
        try:
            host, port = server.address

            def attempt(thread_id):
                try:
                    with CorrelationClient(host, port, timeout=60.0) as client:
                        result = client.rank(list(pairs))
                    with outcomes_lock:
                        outcomes.append(("ok", result))
                except OverloadedError as exc:
                    with outcomes_lock:
                        outcomes.append(("rejected", exc))
                except Exception as exc:  # pragma: no cover - failure detail
                    with outcomes_lock:
                        outcomes.append(("error", exc))

            threads = [
                threading.Thread(target=attempt, args=(i,)) for i in range(6)
            ]
            threads[0].start()
            assert entered.wait(timeout=10.0), "first request never admitted"
            for thread in threads[1:]:
                thread.start()
            # One slot running + one queued: the rest must be rejected
            # promptly, while the first two are still blocked.
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                with outcomes_lock:
                    if sum(1 for kind, _ in outcomes if kind == "rejected") >= 4:
                        break
                time.sleep(0.02)
            release.set()
            for thread in threads:
                thread.join(timeout=60)
                assert not thread.is_alive(), "a rejected/queued client hung"

            kinds = sorted(kind for kind, _ in outcomes)
            assert kinds.count("ok") == 2, f"outcomes: {kinds}"
            assert kinds.count("rejected") == 4, f"outcomes: {kinds}"
            assert kinds.count("error") == 0, f"outcomes: {outcomes}"
            for kind, payload in outcomes:
                if kind == "ok":
                    assert payload["pairs"] == references[pairs]

            # The server is still healthy after the burst.
            with CorrelationClient(host, port) as client:
                assert client.ping()
                after = client.rank(list(pairs))
            assert after["pairs"] == references[pairs]
            stats = server.admission.stats
            assert stats.rejected >= 4
        finally:
            release.set()
            server.close()

    def test_queue_timeout_surfaces_as_408(
        self, static_graph, service_dataset, serial_references
    ):
        """A queued request whose wait exceeds queue_timeout gets a clean
        RequestTimeoutError, and the slot-holder still completes."""
        _dataset, config = service_dataset
        workloads, references, _ = serial_references
        pairs = workloads[1]
        release = threading.Event()
        entered = threading.Event()

        def throttle(method):
            entered.set()
            release.wait(timeout=10.0)

        server = CorrelationServer(
            static_graph, config, workers=1,
            max_concurrency=1, max_queue=4, queue_timeout=0.2,
            throttle=throttle,
        )
        server.start()
        try:
            host, port = server.address
            holder_result = {}

            def hold():
                with CorrelationClient(host, port, timeout=60.0) as client:
                    holder_result["value"] = client.rank(list(pairs))

            holder = threading.Thread(target=hold)
            holder.start()
            assert entered.wait(timeout=10.0)
            with CorrelationClient(host, port, timeout=60.0) as client:
                with pytest.raises(RequestTimeoutError):
                    client.rank(list(pairs))
            release.set()
            holder.join(timeout=60)
            assert not holder.is_alive()
            assert holder_result["value"]["pairs"] == references[pairs]
            assert server.admission.stats.timed_out >= 1
        finally:
            release.set()
            server.close()
