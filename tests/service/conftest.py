"""Shared fixtures for the correlation-service suites."""

import glob
import os

import pytest

from repro.core.config import TescConfig
from repro.datasets.synthetic_dblp import make_dblp_like
from repro.service.pool import shutdown_global_pool
from repro.streaming.dynamic_graph import DynamicAttributedGraph


def shm_segments():
    """Names of the service's live shared-memory segments (``/dev/shm``)."""
    return sorted(os.path.basename(path) for path in glob.glob("/dev/shm/tesc_*"))


@pytest.fixture(scope="module")
def service_dataset():
    """A small DBLP-like attributed graph plus a matching config."""
    dataset = make_dblp_like(
        num_communities=10,
        community_size=30,
        num_positive_pairs=4,
        num_negative_pairs=3,
        num_background_keywords=10,
        random_state=11,
    )
    config = TescConfig(vicinity_level=1, sample_size=200, random_state=17)
    return dataset, config


@pytest.fixture()
def dynamic_graph(service_dataset):
    """A fresh dynamic copy of the dataset's graph (mutable per test)."""
    dataset, _config = service_dataset
    attributed = dataset.attributed
    return DynamicAttributedGraph(
        attributed.csr,
        {name: attributed.event_nodes(name) for name in attributed.event_names()},
    )


@pytest.fixture(scope="session", autouse=True)
def _shutdown_pool_after_session():
    """Leave no worker processes behind once the test session finishes."""
    yield
    shutdown_global_pool()
