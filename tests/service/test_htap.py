"""HTAP property tests: concurrent commits and snapshot-isolated reads.

The contracts under test, from the snapshot-isolation design:

* every read is answered entirely at one epoch, and a seeded threaded
  interleaving of commits and rank/topk reads is **bit-identical**, per
  epoch, to a from-scratch serial reference over the replayed prefix;
* readers never block for a full commit and commits never wait for
  readers (pin-at-admission MVCC instead of a read/write lock);
* responses advertise their epoch, and pinned reads survive concurrent
  commits unchanged.
"""

import threading

import pytest

from repro.core.batch import BatchTescEngine
from repro.service.engine import ServiceEngine, pair_record
from repro.streaming import Delta, DynamicAttributedGraph

# The serial oracle is constructed directly on purpose here.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _fresh_dynamic(service_dataset):
    dataset, _config = service_dataset
    attributed = dataset.attributed
    return DynamicAttributedGraph(
        attributed.csr,
        {name: attributed.event_nodes(name) for name in attributed.event_names()},
    )


def _monitored_pairs(graph):
    names = sorted(graph.event_names())[:3]
    return [(names[0], names[1]), (names[0], names[2]), (names[1], names[2])]


def _commit_schedule(graph, count):
    """``count`` delta batches, each guaranteed to be effective (epoch+1)."""
    event = sorted(graph.event_names())[0]
    attached = set(int(n) for n in graph.event_nodes(event))
    fresh = [n for n in range(graph.num_nodes) if n not in attached]
    assert len(fresh) >= count
    return [[Delta.event_attach(event, fresh[i])] for i in range(count)]


def _reference_records(service_dataset, schedule, epoch, pairs, config):
    """Serial from-scratch ranking after replaying ``epoch`` commits."""
    replayed = _fresh_dynamic(service_dataset)
    for batch in schedule[:epoch]:
        applied = replayed.apply(batch)
        assert applied.changed
    ranking = BatchTescEngine(replayed.snapshot(), config).rank_pairs(pairs)
    return [pair_record(pair) for pair in ranking.pairs]


class TestThreadedInterleavings:
    def test_reads_bit_identical_to_reference_at_pinned_epoch(
        self, service_dataset
    ):
        _dataset, config = service_dataset
        dynamic = _fresh_dynamic(service_dataset)
        pairs = _monitored_pairs(dynamic)
        schedule = _commit_schedule(dynamic, 4)
        engine = ServiceEngine(dynamic, config)
        responses = []
        responses_lock = threading.Lock()
        done = threading.Event()
        errors = []

        def reader(use_topk):
            try:
                while not done.is_set():
                    if use_topk:
                        response = engine.topk(2, pairs)
                    else:
                        response = engine.rank(pairs)
                    with responses_lock:
                        responses.append((use_topk, response))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(False,)),
            threading.Thread(target=reader, args=(True,)),
        ]
        for thread in threads:
            thread.start()
        receipts = []
        try:
            for batch in schedule:
                receipts.append(engine.commit(
                    [delta.to_record() for delta in batch]
                ))
        finally:
            done.set()
            for thread in threads:
                thread.join(timeout=120.0)
        assert not errors
        assert [receipt["epoch"] for receipt in receipts] == [1, 2, 3, 4]

        # Every response must be bit-identical to the serial reference at
        # the epoch it reports.
        by_epoch = {}
        for use_topk, response in responses:
            epoch = response["epoch"]
            if epoch not in by_epoch:
                by_epoch[epoch] = _reference_records(
                    service_dataset, schedule, epoch, pairs, config
                )
            reference = by_epoch[epoch]
            if use_topk:
                expected = sorted(
                    reference, key=lambda r: (-r["score"], r["event_a"], r["event_b"])
                )[:2]
                got = [
                    {key: value for key, value in record.items() if key != "rank"}
                    for record in response["pairs"]
                ]
                want = [
                    {key: value for key, value in record.items() if key != "rank"}
                    for record in expected
                ]
                assert got == want
            else:
                assert response["pairs"] == reference
        assert responses  # the readers actually raced the commits
        engine.close()

    def test_pinned_read_unchanged_by_commits(self, service_dataset):
        _dataset, config = service_dataset
        dynamic = _fresh_dynamic(service_dataset)
        pairs = _monitored_pairs(dynamic)
        schedule = _commit_schedule(dynamic, 2)
        engine = ServiceEngine(dynamic, config)
        before = engine.rank(pairs)
        lease = dynamic.pin(before["epoch"])
        try:
            for batch in schedule:
                engine.commit([delta.to_record() for delta in batch])
            replay = engine.rank(pairs, at_epoch=before["epoch"])
        finally:
            lease.release()
        assert replay["epoch"] == before["epoch"]
        assert replay["pairs"] == before["pairs"]
        after = engine.rank(pairs)
        assert after["epoch"] == before["epoch"] + len(schedule)
        assert after["pairs"] != before["pairs"]
        engine.close()


class TestNonBlocking:
    def test_reader_completes_while_commit_lock_held(self, service_dataset):
        """A reader admitted mid-commit must not wait for the commit."""
        _dataset, config = service_dataset
        dynamic = _fresh_dynamic(service_dataset)
        pairs = _monitored_pairs(dynamic)
        engine = ServiceEngine(dynamic, config)
        engine.rank(pairs)  # warm the epoch-0 caches
        result = {}

        with engine._commit_lock:  # a commit is "in flight" indefinitely
            thread = threading.Thread(
                target=lambda: result.update(engine.rank(pairs))
            )
            thread.start()
            thread.join(timeout=60.0)
            assert not thread.is_alive(), "reader blocked behind a commit"
        assert result["epoch"] == 0
        engine.close()

    def test_commit_completes_while_readers_hold_leases(self, service_dataset):
        """Writers never wait for reader leases to drain."""
        _dataset, config = service_dataset
        dynamic = _fresh_dynamic(service_dataset)
        engine = ServiceEngine(dynamic, config)
        leases = [dynamic.pin() for _ in range(3)]  # long-running readers
        event = sorted(dynamic.event_names())[0]
        fresh = next(
            n for n in range(dynamic.num_nodes)
            if n not in set(int(x) for x in dynamic.event_nodes(event))
        )
        receipt = engine.commit(
            [{"op": "event_attach", "event": event, "node": fresh}]
        )
        assert receipt["epoch"] == 1
        assert receipt["changed"]
        for lease in leases:
            assert lease.graph.epoch == 0  # still reading the old world
            lease.release()
        engine.close()


class TestEpochSemantics:
    def test_every_response_carries_epoch(self, service_dataset):
        _dataset, config = service_dataset
        dynamic = _fresh_dynamic(service_dataset)
        pairs = _monitored_pairs(dynamic)
        engine = ServiceEngine(dynamic, config)
        assert engine.rank(pairs)["epoch"] == 0
        assert engine.topk(2, pairs)["epoch"] == 0
        receipt = engine.commit([])
        assert receipt["epoch"] == 0  # empty commit: no new epoch
        assert not receipt["changed"]
        describe = engine.describe()
        assert describe["mvcc"] is True
        assert describe["epoch"] == 0
        engine.close()

    def test_describe_reports_retention(self, service_dataset):
        _dataset, config = service_dataset
        dynamic = _fresh_dynamic(service_dataset)
        engine = ServiceEngine(dynamic, config)
        lease = dynamic.pin()
        event = sorted(dynamic.event_names())[0]
        fresh = next(
            n for n in range(dynamic.num_nodes)
            if n not in set(int(x) for x in dynamic.event_nodes(event))
        )
        engine.commit([{"op": "event_attach", "event": event, "node": fresh}])
        describe = engine.describe()
        assert describe["epoch"] == 1
        assert 0 in describe["retained_epochs"]
        assert describe["retained_bytes"] > 0
        lease.release()
        assert 0 not in engine.describe()["retained_epochs"]
        engine.close()
