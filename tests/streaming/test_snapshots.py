"""Tests for epoch-pinned copy-on-write snapshots and the lease table."""

import threading

import pytest

from repro.exceptions import SnapshotExpiredError
from repro.graph.generators import erdos_renyi_graph
from repro.streaming import Delta, DynamicAttributedGraph
from repro.streaming.snapshots import EpochLeaseTable, GraphSnapshot


def _dynamic(events=None):
    graph = erdos_renyi_graph(60, 0.08, random_state=5)
    if events is None:
        events = {"a": range(0, 20), "b": range(15, 35)}
    return DynamicAttributedGraph(graph, events)


def _absent_edge(dynamic, avoid=()):
    for x in range(dynamic.num_nodes):
        for y in range(x + 1, dynamic.num_nodes):
            if not dynamic.csr.has_edge(x, y) and (x, y) not in avoid:
                return (x, y)
    raise AssertionError("graph is complete")


class TestEpochs:
    def test_effective_commit_bumps_epoch(self):
        dynamic = _dynamic()
        assert dynamic.epoch == 0
        applied = dynamic.apply([Delta.edge_add(*_absent_edge(dynamic))])
        assert applied.changed
        assert applied.epoch == 1
        assert dynamic.epoch == 1

    def test_noop_commit_keeps_epoch(self):
        dynamic = _dynamic()
        u, v = next(iter(dynamic.csr.edges()))
        applied = dynamic.apply([Delta.edge_add(u, v)])  # already exists
        assert not applied.changed
        assert applied.epoch == 0
        assert dynamic.epoch == 0

    def test_event_only_commit_bumps_epoch(self):
        dynamic = _dynamic()
        applied = dynamic.apply([Delta.event_attach("a", 50)])
        assert applied.epoch == 1
        assert dynamic.epoch == 1

    def test_out_of_band_mutation_healed(self):
        dynamic = _dynamic()
        # Poking the event layer directly bypasses apply(); the next epoch
        # read must notice the version change and advance.
        dynamic.events.add_occurrence("a", 55)
        assert dynamic.epoch == 1


class TestLeases:
    def test_pin_returns_current_epoch_lease(self):
        dynamic = _dynamic()
        lease = dynamic.pin()
        assert lease.epoch == 0
        assert isinstance(lease.graph, GraphSnapshot)
        assert lease.graph.epoch == 0
        lease.release()
        assert lease.released

    def test_lease_keeps_retired_epoch_readable(self):
        dynamic = _dynamic()
        lease = dynamic.pin()
        dynamic.apply([Delta.edge_add(*_absent_edge(dynamic))])
        assert dynamic.epoch == 1
        assert 0 in dynamic.retained_epochs()
        # The pinned graph still shows the pre-commit state.
        assert lease.graph.csr.num_edges == dynamic.csr.num_edges - 1
        lease.release()
        assert 0 not in dynamic.retained_epochs()

    def test_unretained_epoch_raises(self):
        dynamic = _dynamic()
        dynamic.apply([Delta.event_attach("a", 50)])
        with pytest.raises(SnapshotExpiredError):
            dynamic.pin(0)
        with pytest.raises(SnapshotExpiredError):
            dynamic.pin(99)

    def test_release_is_idempotent(self):
        dynamic = _dynamic()
        lease = dynamic.pin()
        other = dynamic.pin()
        lease.release()
        lease.release()
        assert dynamic.lease_count(0) == 1
        other.release()
        assert dynamic.lease_count(0) == 0

    def test_context_manager_releases(self):
        dynamic = _dynamic()
        with dynamic.pin() as lease:
            assert dynamic.lease_count(0) == 1
            assert lease.epoch == 0
        assert dynamic.lease_count(0) == 0

    def test_retired_rows_freed_after_last_lease(self):
        dynamic = _dynamic()
        first = dynamic.pin()
        second = dynamic.pin(0)
        dynamic.apply([Delta.edge_add(*_absent_edge(dynamic))])
        dynamic.apply([Delta.event_attach("b", 50)])
        dynamic.snapshot()  # force the (lazy) current-epoch publication
        # Epoch 0's CSR predates the COW splice; it stays resident only
        # while some lease pins it.
        assert set(dynamic.retained_epochs()) == {0, 2}
        bytes_with_history = dynamic.retained_bytes()
        first.release()
        assert set(dynamic.retained_epochs()) == {0, 2}
        second.release()
        assert set(dynamic.retained_epochs()) == {2}
        assert dynamic.retained_bytes() < bytes_with_history

    def test_pin_is_wait_free_while_commit_in_flight(self):
        # Once the current epoch is published, pin() leases it straight
        # from the table without touching the mutation lock — a reader
        # admitted mid-apply is served the pre-commit epoch immediately.
        dynamic = _dynamic()
        dynamic.snapshot()  # publish epoch 0
        acquired = []
        with dynamic._mutate_lock:  # a commit is mid-apply indefinitely
            thread = threading.Thread(
                target=lambda: acquired.append(dynamic.pin())
            )
            thread.start()
            thread.join(timeout=30.0)
            assert not thread.is_alive(), "pin() blocked behind the commit"
        assert acquired[0].epoch == 0
        acquired[0].release()

    def test_snapshot_memoised_per_epoch(self):
        dynamic = _dynamic()
        assert dynamic.snapshot() is dynamic.snapshot()
        before = dynamic.snapshot()
        dynamic.apply([Delta.event_attach("a", 50)])
        after = dynamic.snapshot()
        assert after is not before
        assert after.epoch == 1

    def test_snapshot_is_frozen(self):
        dynamic = _dynamic()
        snapshot = dynamic.snapshot()
        nodes_before = list(snapshot.event_nodes("a"))
        dynamic.apply([Delta.event_attach("a", 50), Delta.event_detach("b", 20)])
        assert list(snapshot.event_nodes("a")) == nodes_before
        assert snapshot.csr is not dynamic.csr or snapshot.events is not dynamic.events


class TestLeaseTable:
    def test_advance_sweeps_unleased_epochs(self):
        table = EpochLeaseTable()
        table.publish(0, object())
        table.advance(1)
        # Epoch 1's state is built lazily on first pin, so nothing is
        # retained; the point is that epoch 0's state is gone.
        assert table.retained_epochs() == []
        assert table.state(0) is None
        assert table.current_epoch == 1

    def test_acquire_counts(self):
        table = EpochLeaseTable()
        table.publish(0, object())
        lease_a = table.acquire(0)
        lease_b = table.acquire(0)
        assert table.lease_count(0) == 2
        lease_a.release()
        lease_b.release()
        assert table.lease_count(0) == 0

    def test_concurrent_pins_never_lose_counts(self):
        dynamic = _dynamic()
        errors = []

        def hammer():
            try:
                for _ in range(200):
                    lease = dynamic.pin()
                    lease.release()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert dynamic.lease_count(dynamic.epoch) == 0
