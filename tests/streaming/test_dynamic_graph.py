"""Tests for DynamicAttributedGraph: CSR patching, netting, versioning."""

import numpy as np
import pytest

from repro.exceptions import EdgeError, NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.generators import erdos_renyi_graph
from repro.graph.vicinity import VicinityIndex
from repro.streaming import Delta, DeltaBatch, DynamicAttributedGraph


def _dynamic(graph=None, events=None):
    if graph is None:
        graph = erdos_renyi_graph(60, 0.08, random_state=5)
    if events is None:
        events = {"a": range(0, 20), "b": range(15, 35)}
    return DynamicAttributedGraph(graph, events)


class TestApplyEdges:
    def test_add_and_remove_edges(self):
        dynamic = _dynamic()
        before_edges = dynamic.num_edges
        # Pick one existing edge and one absent pair.
        u, v = next(iter(dynamic.csr.edges()))
        absent = None
        for x in range(dynamic.num_nodes):
            for y in range(x + 1, dynamic.num_nodes):
                if not dynamic.csr.has_edge(x, y):
                    absent = (x, y)
                    break
            if absent:
                break
        applied = dynamic.apply(
            [Delta.edge_remove(u, v), Delta.edge_add(*absent)]
        )
        assert applied.removed_edges == ((u, v),)
        assert applied.added_edges == (absent,)
        assert dynamic.num_edges == before_edges
        assert not dynamic.csr.has_edge(u, v)
        assert dynamic.csr.has_edge(*absent)
        assert applied.structure_changed
        assert dynamic.structure_version == 1

    def test_noop_deltas_have_no_effect(self):
        dynamic = _dynamic()
        u, v = next(iter(dynamic.csr.edges()))
        applied = dynamic.apply([Delta.edge_add(u, v)])  # already exists
        assert not applied.changed
        assert dynamic.structure_version == 0
        assert applied.new_csr is applied.old_csr

    def test_cancelling_deltas_net_out(self):
        dynamic = _dynamic()
        absent = (0, 59) if not dynamic.csr.has_edge(0, 59) else (1, 58)
        applied = dynamic.apply(
            [Delta.edge_add(*absent), Delta.edge_remove(*absent)]
        )
        assert not applied.structure_changed
        assert dynamic.structure_version == 0

    def test_remove_then_readd_nets_out(self):
        dynamic = _dynamic()
        u, v = next(iter(dynamic.csr.edges()))
        applied = dynamic.apply([Delta.edge_remove(u, v), Delta.edge_add(u, v)])
        assert not applied.structure_changed
        assert dynamic.csr.has_edge(u, v)

    def test_matches_mutable_graph_application(self, rng):
        """Property: CSR patching equals a from-scratch adjacency rebuild."""
        for seed in range(5):
            local = np.random.default_rng(seed)
            graph = erdos_renyi_graph(80, 0.06, random_state=seed)
            dynamic = _dynamic(graph.copy(), {"a": [0, 1]})
            reference = graph.copy()
            deltas = []
            edges = list(reference.edges())
            for _ in range(12):
                if local.random() < 0.5 and edges:
                    index = int(local.integers(0, len(edges)))
                    u, v = edges.pop(index)
                    if reference.remove_edge(u, v):
                        deltas.append(Delta.edge_remove(u, v))
                else:
                    u = int(local.integers(0, 80))
                    v = int(local.integers(0, 80))
                    if u != v and reference.add_edge(u, v):
                        deltas.append(Delta.edge_add(u, v))
            dynamic.apply(deltas)
            expected = reference.to_csr()
            np.testing.assert_array_equal(dynamic.csr.indptr, expected.indptr)
            np.testing.assert_array_equal(dynamic.csr.indices, expected.indices)

    def test_rejects_self_loop(self):
        dynamic = _dynamic()
        with pytest.raises(EdgeError):
            dynamic.apply([Delta.edge_add(3, 3)])

    def test_rejects_unknown_node_without_partial_apply(self):
        dynamic = _dynamic()
        u, v = next(iter(dynamic.csr.edges()))
        with pytest.raises(NodeNotFoundError):
            dynamic.apply([Delta.edge_remove(u, v), Delta.edge_add(0, 10_000)])
        # Validation failed before anything was applied.
        assert dynamic.csr.has_edge(u, v)
        assert dynamic.structure_version == 0


class TestApplyEvents:
    def test_attach_and_detach(self):
        dynamic = _dynamic()
        applied = dynamic.apply(
            [Delta.event_attach("a", 50), Delta.event_detach("b", 20)]
        )
        assert applied.attached == (("a", 50),)
        assert applied.detached == (("b", 20),)
        assert 50 in dynamic.event_nodes("a")
        assert 20 not in dynamic.event_nodes("b")
        assert not applied.structure_changed

    def test_idempotent_event_deltas(self):
        dynamic = _dynamic()
        applied = dynamic.apply(
            [Delta.event_attach("a", 0), Delta.event_detach("b", 59)]
        )
        assert applied.attached == ()
        assert applied.detached == ()
        assert not applied.changed

    def test_detaching_last_occurrence_keeps_event(self):
        dynamic = _dynamic(events={"a": [3], "b": [4, 5]})
        dynamic.apply([Delta.event_detach("a", 3)])
        assert dynamic.event_nodes("a").size == 0
        assert "a" in dynamic.event_names()

    def test_invalid_event_name_rejected_without_partial_apply(self):
        """Atomicity: a malformed event delta must not leave earlier deltas
        of the same batch applied."""
        from repro.exceptions import EventError
        from repro.streaming.delta import Delta as D

        dynamic = _dynamic()
        absent = (0, 59) if not dynamic.csr.has_edge(0, 59) else (1, 58)
        version = dynamic.events.version
        with pytest.raises(EventError):
            dynamic.apply(
                [
                    D.edge_add(*absent),
                    D.event_attach("a", 45),
                    D.event_attach("", 2),  # parses fine from JSONL, invalid here
                ]
            )
        assert not dynamic.csr.has_edge(*absent)
        assert dynamic.structure_version == 0
        assert dynamic.events.version == version
        assert 45 not in dynamic.event_nodes("a")

    def test_event_version_advances_only_on_change(self):
        dynamic = _dynamic()
        version = dynamic.events.version
        dynamic.apply([Delta.event_attach("a", 0)])  # already present
        assert dynamic.events.version == version
        dynamic.apply([Delta.event_attach("a", 55)])
        assert dynamic.events.version == version + 1


class TestVicinityRebase:
    def test_clean_sizes_survive_and_dirty_recompute(self):
        graph = Graph(7)
        graph.add_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)])
        dynamic = _dynamic(graph, {"a": [0], "b": [6]})
        index = dynamic.vicinity_index(levels=(1, 2))
        index.precompute()
        dynamic.apply([Delta.edge_add(0, 6)])  # close the ring
        rebased = dynamic.vicinity_index(levels=(1, 2))
        assert rebased is not index
        fresh = VicinityIndex(dynamic.csr, levels=(1, 2), lazy=False)
        for level in (1, 2):
            np.testing.assert_array_equal(
                rebased.sizes(range(7), level), fresh.sizes(range(7), level)
            )
        # Nodes far from the patch kept their memoised entries.
        assert rebased.is_cached(3, 1)

    def test_invalidate_vicinity_seam(self):
        dynamic = _dynamic()
        index = dynamic.vicinity_index(levels=(1,))
        size = index.size(4, 1)
        assert index.is_cached(4, 1)
        dynamic.invalidate_vicinity([4])
        assert not index.is_cached(4, 1)
        assert index.size(4, 1) == size
        dynamic.invalidate_vicinity()
        assert not index.is_cached(0, 1)

    def test_invalidate_vicinity_noop_without_index(self):
        dynamic = _dynamic()
        dynamic.invalidate_vicinity([1, 2])  # must not raise


class TestSnapshot:
    def test_snapshot_is_static_copy(self):
        dynamic = _dynamic()
        snapshot = dynamic.snapshot()
        dynamic.apply([Delta.event_attach("a", 45)])
        assert 45 in dynamic.event_nodes("a")
        assert 45 not in snapshot.event_nodes("a")

    def test_batch_coercion_from_mutation_triples(self):
        dynamic = _dynamic()
        u, v = next(iter(dynamic.csr.edges()))
        applied = dynamic.apply(DeltaBatch.coerce([("remove", u, v)]))
        assert applied.removed_edges == ((u, v),)
