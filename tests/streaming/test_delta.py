"""Tests for the delta model and its JSONL wire format."""

import pytest

from repro.streaming.delta import (
    COMMIT_OP,
    Delta,
    DeltaBatch,
    DeltaError,
    DeltaLog,
)


class TestDelta:
    def test_edge_constructors_normalise_order(self):
        assert Delta.edge_add(5, 2) == Delta.edge_add(2, 5)
        assert Delta.edge_remove(9, 1).u == 1
        assert Delta.edge_remove(9, 1).v == 9

    def test_kind_flags(self):
        assert Delta.edge_add(0, 1).is_edge
        assert not Delta.edge_add(0, 1).is_event
        assert Delta.event_attach("a", 3).is_event
        assert Delta.event_detach("a", 3).is_event

    def test_record_roundtrip(self):
        for delta in (
            Delta.edge_add(1, 2),
            Delta.edge_remove(3, 4),
            Delta.event_attach("wireless", 7),
            Delta.event_detach("sensor", 9),
        ):
            assert Delta.from_record(delta.to_record()) == delta

    def test_from_record_normalises_edge_order(self):
        """Hand-written JSONL with u > v must normalise like the constructors,
        so batch netting recognises cancelling records."""
        parsed = Delta.from_record({"op": "edge_remove", "u": 17, "v": 3})
        assert (parsed.u, parsed.v) == (3, 17)
        assert parsed == Delta.edge_remove(3, 17)

    def test_from_record_rejects_unknown_op(self):
        with pytest.raises(DeltaError):
            Delta.from_record({"op": "rename_node", "u": 1})

    def test_from_record_rejects_missing_fields(self):
        with pytest.raises(DeltaError):
            Delta.from_record({"op": "edge_add", "u": 1})


class TestDeltaBatch:
    def test_partition(self):
        batch = DeltaBatch(
            deltas=(
                Delta.edge_add(0, 1),
                Delta.event_attach("a", 2),
                Delta.edge_remove(3, 4),
            )
        )
        assert len(batch.edge_deltas()) == 2
        assert len(batch.event_deltas()) == 1
        assert len(batch) == 3

    def test_coerce_accepts_mutation_triples(self):
        batch = DeltaBatch.coerce([("add", 4, 1), ("remove", 2, 7)])
        assert batch.deltas == (Delta.edge_add(1, 4), Delta.edge_remove(2, 7))

    def test_coerce_passes_batches_through(self):
        batch = DeltaBatch(deltas=(Delta.edge_add(0, 1),))
        assert DeltaBatch.coerce(batch) is batch

    def test_coerce_rejects_junk(self):
        with pytest.raises(DeltaError):
            DeltaBatch.coerce([("swap", 1, 2)])
        with pytest.raises(DeltaError):
            DeltaBatch.coerce([42])


class TestDeltaLog:
    def test_seal_groups_pending(self):
        log = DeltaLog()
        log.add_edge(0, 1)
        log.attach_event("a", 5)
        assert log.num_pending == 2
        batch = log.seal()
        assert len(batch) == 2
        assert log.num_pending == 0
        assert len(log) == 1

    def test_replay_includes_pending_tail(self):
        log = DeltaLog()
        log.add_edge(0, 1)
        log.seal()
        log.remove_edge(2, 3)
        batches = list(log.replay())
        assert len(batches) == 2
        assert batches[1].deltas == (Delta.edge_remove(2, 3),)

    def test_record_mutations(self):
        log = DeltaLog()
        log.record_mutations([("add", 1, 2), ("remove", 3, 4)])
        assert log.pending == [Delta.edge_add(1, 2), Delta.edge_remove(3, 4)]

    def test_save_load_roundtrip(self, tmp_path):
        log = DeltaLog()
        log.add_edge(0, 1)
        log.detach_event("b", 9)
        log.seal()
        log.attach_event("a", 4)
        path = str(tmp_path / "deltas.jsonl")
        log.save(path)
        loaded = DeltaLog.load(path)
        assert [batch.deltas for batch in loaded.batches] == [
            batch.deltas for batch in log.batches
        ]
        assert loaded.pending == log.pending

    def test_parse_skips_blank_and_comment_lines(self):
        log = DeltaLog.parse(
            [
                "# a comment",
                "",
                '{"op": "edge_add", "u": 1, "v": 2}',
                f'{{"op": "{COMMIT_OP}"}}',
            ]
        )
        assert len(log) == 1
        assert log.batches[0].deltas == (Delta.edge_add(1, 2),)

    def test_parse_rejects_invalid_json(self):
        with pytest.raises(DeltaError):
            DeltaLog.parse(["{not json"])

    def test_parse_rejects_non_objects(self):
        with pytest.raises(DeltaError):
            DeltaLog.parse(["[1, 2]"])
