"""Tests for the dirty tracker: the region must cover every changed vicinity."""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi_graph
from repro.graph.traversal import BFSEngine, dirty_vicinity
from repro.streaming import Delta, DirtyTracker, DynamicAttributedGraph


def _vicinity_sets(csr, level):
    engine = BFSEngine(csr)
    return [
        frozenset(engine.vicinity(node, level).tolist())
        for node in range(csr.num_nodes)
    ]


@pytest.mark.parametrize("level", [1, 2, 3])
def test_structure_region_covers_every_changed_vicinity(level):
    """Soundness: any node whose V^h changed is inside the dirty region."""
    rng = np.random.default_rng(level)
    for seed in range(4):
        graph = erdos_renyi_graph(70, 0.05, random_state=seed)
        dynamic = DynamicAttributedGraph(graph, {"a": [0, 1]})
        before = _vicinity_sets(dynamic.csr, level)
        deltas = []
        edges = list(dynamic.csr.edges())
        for _ in range(6):
            if rng.random() < 0.5 and edges:
                u, v = edges.pop(int(rng.integers(0, len(edges))))
                deltas.append(Delta.edge_remove(u, v))
            else:
                u, v = int(rng.integers(0, 70)), int(rng.integers(0, 70))
                if u != v and not dynamic.csr.has_edge(u, v):
                    deltas.append(Delta.edge_add(u, v))
        applied = dynamic.apply(deltas)
        if not applied.structure_changed:
            continue
        region = DirtyTracker(level).region(applied)
        after = _vicinity_sets(dynamic.csr, level)
        changed = {
            node for node in range(70) if before[node] != after[node]
        }
        assert changed <= set(region.structure.tolist())


def test_structure_region_is_tight_at_level_one():
    """At h=1 only the endpoints themselves can change vicinity."""
    graph = erdos_renyi_graph(40, 0.1, random_state=9)
    dynamic = DynamicAttributedGraph(graph, {"a": [0]})
    u, v = next(iter(dynamic.csr.edges()))
    applied = dynamic.apply([Delta.edge_remove(u, v)])
    region = DirtyTracker(1).region(applied)
    assert set(region.structure.tolist()) == {u, v}


def test_event_patch_regions_and_signs():
    graph = erdos_renyi_graph(50, 0.08, random_state=2)
    dynamic = DynamicAttributedGraph(graph, {"a": [1, 2], "b": [3]})
    applied = dynamic.apply(
        [Delta.event_attach("a", 10), Delta.event_detach("b", 3)]
    )
    region = DirtyTracker(2).region(applied)
    assert region.structure.size == 0
    by_event = {patch.event: patch for patch in region.event_patches}
    assert by_event["a"].sign == +1
    assert by_event["b"].sign == -1
    engine = BFSEngine(dynamic.csr)
    np.testing.assert_array_equal(
        np.sort(by_event["a"].region), np.sort(engine.vicinity(10, 2))
    )


def test_region_reuses_rebase_dirty_sets():
    """When the vicinity-index rebase already ran the endpoint BFS, the
    tracker must reuse its per-level dirty arrays instead of recomputing."""
    graph = erdos_renyi_graph(60, 0.08, random_state=4)
    dynamic = DynamicAttributedGraph(graph, {"a": [0, 1], "b": [2]})
    dynamic.vicinity_index(levels=(1, 2))  # make the index live
    u, v = next(iter(dynamic.csr.edges()))
    applied = dynamic.apply([Delta.edge_remove(u, v)])
    assert applied.vicinity_dirty is not None
    assert set(applied.vicinity_dirty) == {1, 2}
    region = DirtyTracker(2).region(applied)
    assert region.structure is applied.vicinity_dirty[2]
    # A level the rebase did not cover falls back to a fresh traversal.
    fresh = DirtyTracker(3).region(applied)
    np.testing.assert_array_equal(
        np.sort(fresh.structure),
        np.sort(
            dirty_vicinity(applied.old_csr, applied.new_csr, [u, v], 2)
        ),
    )


def test_empty_batch_is_empty_region():
    graph = erdos_renyi_graph(30, 0.1, random_state=1)
    dynamic = DynamicAttributedGraph(graph, {"a": [0], "b": [1]})
    region = DirtyTracker(2).region(dynamic.empty_batch())
    assert region.is_empty


def test_dirty_vicinity_unions_old_and_new_reachability():
    # Path 0-1-2 3: adding (2, 3) makes 3 reachable; removing it again must
    # still be covered from the old graph's side.
    from repro.graph.adjacency import Graph

    graph = Graph(4)
    graph.add_edges([(0, 1), (1, 2), (2, 3)])
    old = graph.to_csr()
    graph.remove_edge(2, 3)
    new = graph.to_csr()
    region = dirty_vicinity(old, new, [2, 3], 1)
    assert set(region.tolist()) == {1, 2, 3}
    assert dirty_vicinity(old, new, [], 1).size == 0
