"""ContinuousRanker tests.

The centrepiece is the equivalence property suite: after *any* sequence of
delta batches, the streaming ranking must be bit-identical — scores,
z-scores, p-values, verdicts, ranks — to a fresh
:class:`~repro.core.batch.BatchTescEngine` run on the equivalent static graph
with the same seed, across samplers and worker counts.
"""

import numpy as np
import pytest

from repro.core.batch import BatchTescEngine
from repro.core.config import TescConfig
from repro.datasets.synthetic_dblp import make_dblp_like
from repro.datasets.synthetic_twitter import make_twitter_like
from repro.exceptions import ConfigurationError
from repro.streaming import ContinuousRanker, Delta, DynamicAttributedGraph


def _random_batch(rng, dynamic, events, num_edges=4, num_events=2):
    """A mixed batch of random structural and event deltas."""
    deltas = []
    edges = list(dynamic.csr.edges())
    num_nodes = dynamic.num_nodes
    for _ in range(num_edges):
        if rng.random() < 0.5 and edges:
            u, v = edges.pop(int(rng.integers(0, len(edges))))
            deltas.append(Delta.edge_remove(u, v))
        else:
            u, v = int(rng.integers(0, num_nodes)), int(rng.integers(0, num_nodes))
            if u != v:
                deltas.append(Delta.edge_add(u, v))
    for _ in range(num_events):
        event = events[int(rng.integers(0, len(events)))]
        node = int(rng.integers(0, num_nodes))
        if rng.random() < 0.5:
            deltas.append(Delta.event_attach(event, node))
        else:
            deltas.append(Delta.event_detach(event, node))
    return deltas


def _assert_matches_static(ranking, dynamic, pairs, config, sort_by="score"):
    static = BatchTescEngine(dynamic.snapshot(), config).rank_pairs(
        pairs, sort_by=sort_by
    )
    assert [p.events for p in ranking] == [p.events for p in static]
    assert [p.rank for p in ranking] == [p.rank for p in static]
    assert [p.score for p in ranking] == [p.score for p in static]
    assert [p.z_score for p in ranking] == [p.z_score for p in static]
    assert [p.p_value for p in ranking] == [p.p_value for p in static]
    assert [p.verdict for p in ranking] == [p.verdict for p in static]
    assert [p.num_reference_nodes for p in ranking] == [
        p.num_reference_nodes for p in static
    ]


class TestEquivalenceProperty:
    """Satellite: random delta sequences stay bit-identical to static re-rank."""

    @pytest.mark.parametrize("sampler", ["batch_bfs", "whole_graph", "exhaustive"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_dblp_like_stream(self, sampler, workers):
        dataset = make_dblp_like(
            num_communities=10, community_size=40, num_positive_pairs=2,
            num_negative_pairs=2, num_background_keywords=4, random_state=31,
        )
        dynamic = DynamicAttributedGraph(dataset.graph, dataset.attributed.events)
        pairs = (
            dataset.positive_pairs
            + dataset.negative_pairs
            + [("bg_0", "bg_1"), ("bg_2", "bg_3")]
        )
        events = sorted({event for pair in pairs for event in pair})
        config = TescConfig(
            vicinity_level=1, sample_size=120, sampler=sampler, random_state=7,
        )
        rng = np.random.default_rng(100 + workers)
        with ContinuousRanker(dynamic, pairs, config, workers=workers) as ranker:
            _assert_matches_static(ranker.commit().ranking, dynamic, pairs, config)
            for _ in range(4):
                batch = _random_batch(rng, dynamic, events)
                delta = ranker.commit(batch)
                _assert_matches_static(delta.ranking, dynamic, pairs, config)

    @pytest.mark.parametrize("sampler", ["batch_bfs", "whole_graph"])
    def test_twitter_like_stream(self, sampler):
        graph = make_twitter_like(num_nodes=600, edges_per_node=4, random_state=3)
        rng = np.random.default_rng(17)
        events = {
            name: rng.choice(600, size=60, replace=False)
            for name in ("a", "b", "c", "d")
        }
        dynamic = DynamicAttributedGraph(graph, events)
        config = TescConfig(
            vicinity_level=2, sample_size=100, sampler=sampler, random_state=23,
        )
        with ContinuousRanker(dynamic, "all", config) as ranker:
            _assert_matches_static(ranker.commit().ranking, dynamic, "all", config)
            for _ in range(3):
                batch = _random_batch(rng, dynamic, list(events), num_edges=6)
                delta = ranker.commit(batch)
                _assert_matches_static(delta.ranking, dynamic, "all", config)

    def test_worker_counts_agree_exactly(self):
        dataset = make_dblp_like(
            num_communities=8, community_size=30, num_positive_pairs=2,
            num_negative_pairs=1, num_background_keywords=2, random_state=5,
        )
        config = TescConfig(sample_size=90, random_state=11)
        batches = []
        rng = np.random.default_rng(55)
        probe = DynamicAttributedGraph(
            dataset.graph.copy(), dataset.attributed.events.copy()
        )
        events = probe.event_names()
        for _ in range(3):
            batches.append(_random_batch(rng, probe, events))
            probe.apply(batches[-1])

        rankings = {}
        for workers in (1, 2):
            dynamic = DynamicAttributedGraph(
                dataset.graph.copy(), dataset.attributed.events.copy()
            )
            with ContinuousRanker(dynamic, "all", config, workers=workers) as ranker:
                ranker.commit()
                for batch in batches:
                    final = ranker.commit(batch)
                rankings[workers] = final.ranking
        assert [p.score for p in rankings[1]] == [p.score for p in rankings[2]]
        assert [p.events for p in rankings[1]] == [p.events for p in rankings[2]]
        assert [p.verdict for p in rankings[1]] == [p.verdict for p in rankings[2]]


class TestIncrementalBehaviour:
    @pytest.fixture
    def dataset(self):
        return make_dblp_like(
            num_communities=10, community_size=40, num_positive_pairs=2,
            num_negative_pairs=2, num_background_keywords=4, random_state=31,
        )

    def test_first_commit_reports_every_pair_as_new(self, dataset):
        dynamic = DynamicAttributedGraph(dataset.graph, dataset.attributed.events)
        config = TescConfig(sample_size=100, random_state=3)
        ranker = ContinuousRanker(dynamic, "all", config)
        delta = ranker.commit()
        assert len(delta.changed) == len(delta.ranking)
        assert all(change.is_new for change in delta.changed)
        assert delta.stats.columns_recomputed == delta.stats.columns_total

    def test_empty_commit_changes_nothing(self, dataset):
        dynamic = DynamicAttributedGraph(dataset.graph, dataset.attributed.events)
        config = TescConfig(sample_size=100, random_state=3)
        ranker = ContinuousRanker(dynamic, "all", config)
        ranker.commit()
        delta = ranker.commit()
        assert len(delta.changed) == 0
        assert delta.stats.columns_recomputed == 0
        assert delta.stats.pairs_rescored == 0
        assert not delta.stats.sample_redrawn
        assert "no ranking changes" in delta.render()

    def test_localised_edit_reuses_columns_and_pairs(self, dataset):
        dynamic = DynamicAttributedGraph(dataset.graph, dataset.attributed.events)
        config = TescConfig(sample_size=150, random_state=3)
        pairs = dataset.positive_pairs + dataset.negative_pairs
        ranker = ContinuousRanker(dynamic, pairs, config)
        ranker.commit()
        # Toggle one occurrence of one monitored event: no structural change,
        # so no column needs a BFS — counts are patched in place.
        event = dataset.positive_pairs[0][0]
        node = int(dynamic.event_nodes(event)[0])
        delta = ranker.commit([Delta.event_detach(event, node)])
        assert delta.stats.columns_recomputed == 0
        assert delta.stats.pairs_reused > 0
        _assert_matches_static(delta.ranking, dynamic, pairs, config)

    def test_unmonitored_event_toggle_keeps_sample(self, dataset):
        dynamic = DynamicAttributedGraph(dataset.graph, dataset.attributed.events)
        config = TescConfig(sample_size=100, random_state=3)
        ranker = ContinuousRanker(dynamic, dataset.positive_pairs, config)
        ranker.commit()
        delta = ranker.commit([Delta.event_attach("bg_0", 5)])
        assert not delta.stats.sample_redrawn
        assert len(delta.changed) == 0

    def test_out_of_band_mutation_is_detected(self, dataset):
        dynamic = DynamicAttributedGraph(dataset.graph, dataset.attributed.events)
        config = TescConfig(sample_size=100, random_state=3)
        pairs = dataset.positive_pairs + dataset.negative_pairs
        ranker = ContinuousRanker(dynamic, pairs, config)
        ranker.commit()
        # Mutate behind the ranker's back, then commit an empty batch: the
        # ranker must notice the version drift and still match static.
        u, v = next(iter(dynamic.csr.edges()))
        dynamic.apply([Delta.edge_remove(u, v)])
        delta = ranker.commit()
        _assert_matches_static(delta.ranking, dynamic, pairs, config)

    def test_watch_and_unwatch(self, dataset):
        dynamic = DynamicAttributedGraph(dataset.graph, dataset.attributed.events)
        config = TescConfig(sample_size=100, random_state=3)
        ranker = ContinuousRanker(dynamic, dataset.positive_pairs, config)
        ranker.commit()
        ranker.watch([("bg_0", "bg_1")])
        delta = ranker.commit()
        assert ("bg_0", "bg_1") in [p.events for p in delta.ranking]
        _assert_matches_static(
            delta.ranking, dynamic,
            dataset.positive_pairs + [("bg_0", "bg_1")], config,
        )
        ranker.unwatch([("bg_0", "bg_1")])
        delta = ranker.commit()
        assert ("bg_0", "bg_1") not in [p.events for p in delta.ranking]

    def test_top_k_trims_public_ranking_only(self, dataset):
        dynamic = DynamicAttributedGraph(dataset.graph, dataset.attributed.events)
        config = TescConfig(sample_size=100, random_state=3)
        ranker = ContinuousRanker(dynamic, "all", config, top_k=2)
        delta = ranker.commit()
        assert len(delta.ranking) == 2
        event = dataset.positive_pairs[0][0]
        node = int(dynamic.event_nodes(event)[0])
        delta = ranker.commit([Delta.event_detach(event, node)])
        static = BatchTescEngine(dynamic.snapshot(), config).rank_pairs(
            "all", top_k=2
        )
        assert [p.events for p in delta.ranking] == [p.events for p in static]
        assert [p.score for p in delta.ranking] == [p.score for p in static]

    def test_verdict_flip_surfaces_in_delta(self, dataset):
        dynamic = DynamicAttributedGraph(dataset.graph, dataset.attributed.events)
        config = TescConfig(sample_size=150, random_state=3)
        pair = dataset.positive_pairs[0]
        ranker = ContinuousRanker(dynamic, [pair], config)
        first = ranker.commit()
        assert first.ranking[0].verdict.value == "positive"
        # Detaching every occurrence of one side forces the pair to
        # insufficient/independent — a verdict flip the delta must surface.
        nodes = [int(n) for n in dynamic.event_nodes(pair[0])]
        delta = ranker.commit([Delta.event_detach(pair[0], n) for n in nodes])
        assert len(delta.verdict_flips) == 1
        _assert_matches_static(delta.ranking, dynamic, [pair], config)


class TestValidation:
    def test_requires_dynamic_graph(self, dataset=None):
        data = make_dblp_like(
            num_communities=8, community_size=20, num_positive_pairs=1,
            num_negative_pairs=1, num_background_keywords=0, random_state=1,
        )
        with pytest.raises(ConfigurationError):
            ContinuousRanker(data.attributed, "all")

    def test_rejects_weighted_samplers(self):
        data = make_dblp_like(
            num_communities=8, community_size=20, num_positive_pairs=1,
            num_negative_pairs=1, num_background_keywords=0, random_state=1,
        )
        dynamic = DynamicAttributedGraph(data.graph, data.attributed.events)
        with pytest.raises(ConfigurationError):
            ContinuousRanker(dynamic, "all", TescConfig(sampler="importance"))

    def test_rejects_bad_sort_key(self):
        data = make_dblp_like(
            num_communities=8, community_size=20, num_positive_pairs=1,
            num_negative_pairs=1, num_background_keywords=0, random_state=1,
        )
        dynamic = DynamicAttributedGraph(data.graph, data.attributed.events)
        with pytest.raises(ConfigurationError):
            ContinuousRanker(dynamic, "all", sort_by="banana")
