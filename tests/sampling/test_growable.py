"""Tests for the prefix-extendable sample seam (SampleGrowth and friends)."""

import numpy as np
import pytest

from repro.exceptions import SamplingError
from repro.sampling.base import (
    EagerSampleGrowth,
    ReferenceSample,
    deterministic_draw_order,
)
from repro.sampling.batch_bfs import BatchBFSSampler, ExhaustiveSampler
from repro.sampling.cache import CachingSampler, SampleMemo
from repro.sampling.reject import RejectionSampler
from repro.sampling.whole_graph import WholeGraphSampler


@pytest.fixture
def csr(random_graph):
    return random_graph.to_csr()


@pytest.fixture
def universe():
    return np.arange(0, 80)


class TestDrawOrderField:
    def test_draw_order_must_be_permutation(self):
        with pytest.raises(SamplingError, match="permutation"):
            ReferenceSample(
                nodes=np.array([1, 2, 3]),
                frequencies=np.ones(3, dtype=np.int64),
                draw_order=np.array([1, 2, 4]),
            )

    def test_samplers_record_draw_order(self, csr, universe):
        for sampler in (
            BatchBFSSampler(csr, random_state=3),
            WholeGraphSampler(csr, random_state=3),
            RejectionSampler(csr, random_state=3),
        ):
            sample = sampler.sample(universe, 1, 40)
            assert sample.draw_order is not None
            assert np.array_equal(np.sort(sample.draw_order), sample.nodes)

    def test_exhaustive_has_no_draw_order(self, csr, universe):
        sample = ExhaustiveSampler(csr, random_state=3).sample(universe, 1)
        assert sample.draw_order is None

    def test_deterministic_order_is_content_keyed(self):
        nodes = np.array([5, 9, 2, 40, 17])
        first = deterministic_draw_order(nodes)
        second = deterministic_draw_order(nodes[::-1].copy())
        assert np.array_equal(first, second)
        assert np.array_equal(np.sort(first), np.sort(nodes))


class TestPrefixInvariant:
    """Round r's draw order must be a strict prefix of round r+1's, and the
    grown-to-budget sample must equal the sampler's one-shot draw."""

    @pytest.mark.parametrize(
        "factory",
        [BatchBFSSampler, WholeGraphSampler, ExhaustiveSampler],
        ids=["batch_bfs", "whole_graph", "exhaustive"],
    )
    def test_prefixes_nest_and_full_matches_one_shot(self, csr, universe, factory):
        one_shot = factory(csr, random_state=11).sample(universe, 1, 60)
        growth = factory(csr, random_state=11).growable(universe, 1, 60)
        previous = np.empty(0, dtype=np.int64)
        for size in (8, 16, 33, 60):
            order = growth.grow_to(size)
            assert np.array_equal(order[: previous.size], previous)
            assert np.unique(order).size == order.size
            previous = order.copy()
        full = growth.full_sample()
        assert np.array_equal(full.nodes, one_shot.nodes)

    def test_incremental_flag(self, csr):
        assert WholeGraphSampler(csr).incremental_growth
        assert not BatchBFSSampler(csr).incremental_growth

    def test_whole_graph_grows_lazily(self, csr, universe):
        growth = WholeGraphSampler(csr, random_state=7).growable(universe, 1, 60)
        assert growth.grown_size == 0
        growth.grow_to(10)
        assert growth.grown_size == 10
        # The eligibility BFS cost so far is bounded by the draws taken, far
        # below what a full-budget draw would have issued.
        assert growth.grown_size < growth.budget

    def test_eager_growth_reveals_only(self, csr, universe):
        sample = BatchBFSSampler(csr, random_state=5).sample(universe, 1, 50)
        growth = EagerSampleGrowth(sample)
        assert growth.budget == 50
        assert growth.grow_to(10_000).size == 50
        assert growth.full_sample() is sample


class TestCachingGrowable:
    def test_cache_hit_reuses_sample(self, csr, universe):
        sampler = CachingSampler(BatchBFSSampler(csr, random_state=3))
        first = sampler.sample(universe, 1, 40)
        growth = sampler.growable(universe, 1, 40)
        assert sampler.hits == 1
        assert growth.full_sample() is first

    def test_incremental_growth_registers_in_cache(self, csr, universe):
        sampler = CachingSampler(WholeGraphSampler(csr, random_state=3))
        growth = sampler.growable(universe, 1, 40)
        growth.grow_to(10)
        full = growth.full_sample()
        assert sampler.misses == 1
        assert sampler.sample(universe, 1, 40) is full
        assert sampler.hits == 1

    def test_eager_inner_goes_through_sample_cache(self, csr, universe):
        sampler = CachingSampler(BatchBFSSampler(csr, random_state=3))
        growth = sampler.growable(universe, 1, 40)
        full = growth.full_sample()
        assert sampler.misses == 1
        assert sampler.sample(universe, 1, 40) is full


class TestSampleMemoGrowable:
    def test_growable_matches_memoised_draw(self, csr, universe):
        memo = SampleMemo(lambda: BatchBFSSampler(csr, random_state=9))
        sample = memo.sample(universe, 1, 40, epoch=2)
        growth = memo.growable(universe, 1, 40, epoch=2)
        assert growth.full_sample() is sample
        assert memo.hits == 1
