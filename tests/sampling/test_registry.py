"""Tests for repro.sampling.registry."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sampling.base import ReferenceSampler
from repro.sampling.registry import available_samplers, create_sampler, register_sampler


class TestRegistry:
    def test_available_samplers_contains_paper_algorithms(self):
        names = available_samplers()
        for expected in ("batch_bfs", "importance", "whole_graph", "reject", "exhaustive"):
            assert expected in names

    def test_create_each_registered_sampler(self, random_graph):
        csr = random_graph.to_csr()
        for name in available_samplers():
            sampler = create_sampler(name, csr, random_state=1)
            assert isinstance(sampler, ReferenceSampler)

    def test_unknown_name_raises(self, random_graph):
        with pytest.raises(ConfigurationError):
            create_sampler("nonexistent", random_graph.to_csr())

    def test_batch_importance_uses_batching(self, random_graph):
        sampler = create_sampler("batch_importance", random_graph.to_csr(), random_state=1)
        assert sampler.batch_per_vicinity > 1

    def test_importance_batch_override(self, random_graph):
        sampler = create_sampler(
            "importance", random_graph.to_csr(), random_state=1, batch_per_vicinity=7
        )
        assert sampler.batch_per_vicinity == 7

    def test_register_custom_sampler(self, random_graph):
        from repro.sampling.batch_bfs import BatchBFSSampler

        register_sampler(
            "custom_for_test",
            lambda graph, **kwargs: BatchBFSSampler(graph),
            overwrite=True,
        )
        sampler = create_sampler("custom_for_test", random_graph.to_csr())
        assert isinstance(sampler, BatchBFSSampler)

    def test_register_duplicate_without_overwrite_raises(self):
        with pytest.raises(ConfigurationError):
            register_sampler("batch_bfs", lambda graph, **kwargs: None)
