"""Tests for repro.sampling.base."""

import numpy as np
import pytest

from repro.exceptions import SamplingError
from repro.sampling.base import ReferenceSample, SamplingCost


class TestReferenceSample:
    def test_valid_sample(self):
        sample = ReferenceSample(nodes=[1, 2, 3], frequencies=[1, 2, 1])
        assert sample.num_distinct == 3
        assert sample.num_draws == 4

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(SamplingError):
            ReferenceSample(nodes=[1, 1, 2], frequencies=[1, 1, 1])

    def test_frequency_shape_mismatch_rejected(self):
        with pytest.raises(SamplingError):
            ReferenceSample(nodes=[1, 2], frequencies=[1])

    def test_probabilities_shape_mismatch_rejected(self):
        with pytest.raises(SamplingError):
            ReferenceSample(nodes=[1, 2], frequencies=[1, 1], probabilities=[0.5])

    def test_arrays_are_int64(self):
        sample = ReferenceSample(nodes=[3, 1], frequencies=[1, 1])
        assert sample.nodes.dtype == np.int64


class TestSamplingCost:
    def test_merge_engine(self, random_graph):
        from repro.graph.traversal import BFSEngine

        engine = BFSEngine(random_graph.to_csr())
        engine.vicinity(0, 2)
        cost = SamplingCost()
        cost.merge_engine(engine)
        assert cost.bfs_calls == 1
        assert cost.nodes_scanned > 0

    def test_default_zeroes(self):
        cost = SamplingCost()
        assert cost.bfs_calls == 0
        assert cost.rejections == 0
        assert cost.wall_seconds == 0.0
