"""Tests for the concrete reference-node samplers (Section 4 algorithms)."""

import numpy as np
import pytest

from repro.exceptions import EmptyReferenceSetError, SamplingError
from repro.graph.generators import erdos_renyi_graph
from repro.graph.traversal import batch_bfs_vicinity
from repro.graph.vicinity import VicinityIndex
from repro.sampling.batch_bfs import BatchBFSSampler, ExhaustiveSampler
from repro.sampling.importance import ImportanceSampler
from repro.sampling.reject import RejectionSampler
from repro.sampling.whole_graph import WholeGraphSampler


@pytest.fixture(scope="module")
def sampling_graph():
    """A connected random graph used by all sampler tests."""
    return erdos_renyi_graph(300, 0.025, random_state=31).to_csr()


@pytest.fixture(scope="module")
def event_nodes():
    rng = np.random.default_rng(8)
    return np.sort(rng.choice(300, size=40, replace=False))


def reference_population(graph, event_nodes, level):
    return set(int(x) for x in batch_bfs_vicinity(graph, event_nodes, level))


class TestBatchBFSSampler:
    def test_population_matches_batch_bfs(self, sampling_graph, event_nodes):
        sampler = BatchBFSSampler(sampling_graph, random_state=1)
        population = sampler.population(event_nodes, 1)
        assert set(int(x) for x in population) == reference_population(
            sampling_graph, event_nodes, 1
        )

    def test_sample_within_population(self, sampling_graph, event_nodes):
        sampler = BatchBFSSampler(sampling_graph, random_state=1)
        sample = sampler.sample(event_nodes, 1, 30)
        population = reference_population(sampling_graph, event_nodes, 1)
        assert sample.num_distinct == 30
        assert set(int(x) for x in sample.nodes) <= population
        assert not sample.weighted
        assert sample.population_size == len(population)

    def test_sample_size_larger_than_population(self, sampling_graph, event_nodes):
        sampler = BatchBFSSampler(sampling_graph, random_state=1)
        sample = sampler.sample(event_nodes, 1, 10_000)
        assert sample.num_distinct == sample.population_size

    def test_cost_counters_filled(self, sampling_graph, event_nodes):
        sample = BatchBFSSampler(sampling_graph, random_state=1).sample(event_nodes, 1, 10)
        assert sample.cost.bfs_calls == 1
        assert sample.cost.nodes_scanned > 0

    def test_empty_event_set_rejected(self, sampling_graph):
        with pytest.raises(EmptyReferenceSetError):
            BatchBFSSampler(sampling_graph).sample(np.array([], dtype=int), 1, 5)

    def test_event_node_outside_graph_rejected(self, sampling_graph):
        with pytest.raises(SamplingError):
            BatchBFSSampler(sampling_graph).sample(np.array([10_000]), 1, 5)


class TestExhaustiveSampler:
    def test_returns_whole_population(self, sampling_graph, event_nodes):
        sample = ExhaustiveSampler(sampling_graph).sample(event_nodes, 1)
        assert set(int(x) for x in sample.nodes) == reference_population(
            sampling_graph, event_nodes, 1
        )


class TestRejectionSampler:
    def test_sample_is_uniform_subset_of_population(self, sampling_graph, event_nodes):
        sampler = RejectionSampler(sampling_graph, random_state=3)
        sample = sampler.sample(event_nodes, 1, 25)
        population = reference_population(sampling_graph, event_nodes, 1)
        assert sample.num_distinct == 25
        assert set(int(x) for x in sample.nodes) <= population
        assert not sample.weighted

    def test_uniformity_over_many_runs(self, sampling_graph):
        """Every population node should be reachable by RejectSamp (Prop. 1)."""
        event_nodes = np.array([0, 1, 2, 3, 4])
        population = reference_population(sampling_graph, event_nodes, 1)
        seen = set()
        for seed in range(30):
            sampler = RejectionSampler(sampling_graph, random_state=seed)
            sample = sampler.sample(event_nodes, 1, min(5, len(population)))
            seen.update(int(x) for x in sample.nodes)
        assert seen <= population
        assert len(seen) > len(population) * 0.5

    def test_shared_vicinity_index_reused(self, sampling_graph, event_nodes):
        index = VicinityIndex(sampling_graph, levels=(1,))
        sampler = RejectionSampler(sampling_graph, vicinity_index=index, random_state=1)
        sample = sampler.sample(event_nodes, 1, 10)
        assert sample.num_distinct == 10

    def test_invalid_max_attempts(self, sampling_graph):
        with pytest.raises(SamplingError):
            RejectionSampler(sampling_graph, max_attempts_per_node=0)


class TestImportanceSampler:
    def test_sample_has_weights_and_probabilities(self, sampling_graph, event_nodes):
        sampler = ImportanceSampler(sampling_graph, random_state=5)
        sample = sampler.sample(event_nodes, 1, 30)
        assert sample.weighted
        assert sample.probabilities is not None
        assert np.all(sample.probabilities > 0)
        assert np.all(sample.probabilities <= 1)
        assert np.all(sample.frequencies >= 1)
        assert sample.num_distinct >= 30

    def test_nodes_within_population(self, sampling_graph, event_nodes):
        sampler = ImportanceSampler(sampling_graph, random_state=5)
        sample = sampler.sample(event_nodes, 2, 40)
        population = reference_population(sampling_graph, event_nodes, 2)
        assert set(int(x) for x in sample.nodes) <= population

    def test_probabilities_match_definition(self, sampling_graph, event_nodes):
        """p(r) must equal |V^h_r ∩ V_{a∪b}| / N_sum (Section 4.2)."""
        index = VicinityIndex(sampling_graph, levels=(1,))
        sampler = ImportanceSampler(sampling_graph, vicinity_index=index, random_state=5)
        sample = sampler.sample(event_nodes, 1, 20)
        total = index.total_size(event_nodes, 1)
        event_set = set(int(x) for x in event_nodes)
        for node, probability in zip(sample.nodes, sample.probabilities):
            vicinity = batch_bfs_vicinity(sampling_graph, [int(node)], 1)
            overlap = sum(1 for x in vicinity if int(x) in event_set)
            assert probability == pytest.approx(overlap / total)

    def test_batched_variant_draws_more_per_bfs(self, sampling_graph, event_nodes):
        single = ImportanceSampler(sampling_graph, batch_per_vicinity=1, random_state=7)
        batched = ImportanceSampler(sampling_graph, batch_per_vicinity=5, random_state=7)
        sample_single = single.sample(event_nodes, 1, 30)
        sample_batched = batched.sample(event_nodes, 1, 30)
        # The batched variant needs fewer BFS calls to reach the same sample size.
        assert sample_batched.cost.bfs_calls < sample_single.cost.bfs_calls

    def test_invalid_batch_size(self, sampling_graph):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            ImportanceSampler(sampling_graph, batch_per_vicinity=0)


class TestWholeGraphSampler:
    def test_sample_within_population(self, sampling_graph, event_nodes):
        sampler = WholeGraphSampler(sampling_graph, random_state=9)
        sample = sampler.sample(event_nodes, 2, 30)
        population = reference_population(sampling_graph, event_nodes, 2)
        assert set(int(x) for x in sample.nodes) <= population
        assert sample.num_distinct == 30

    def test_out_of_sight_draws_counted(self, sampling_graph):
        # A tiny event set leaves most of the graph out of sight at h=1.
        sampler = WholeGraphSampler(sampling_graph, random_state=9, max_draw_factor=500)
        sample = sampler.sample(np.array([0, 1]), 1, 3)
        assert sample.cost.out_of_sight_draws > 0

    def test_gives_up_on_hopeless_input(self):
        # A graph with no edges and a single event node: only one eligible
        # reference node exists, so asking for many must fail.
        graph = erdos_renyi_graph(500, 0.0, random_state=1).to_csr()
        sampler = WholeGraphSampler(graph, random_state=2, max_draw_factor=5)
        with pytest.raises(SamplingError):
            sampler.sample(np.array([7]), 1, 50)


class TestCachingSampler:
    def test_same_population_sampled_once(self, sampling_graph, event_nodes):
        from repro.sampling.cache import CachingSampler

        sampler = CachingSampler(BatchBFSSampler(sampling_graph, random_state=4))
        first = sampler.sample(event_nodes, 1, 50)
        second = sampler.sample(event_nodes, 1, 50)
        assert first is second
        assert (sampler.hits, sampler.misses) == (1, 1)
        # Order of the requested node set must not matter.
        third = sampler.sample(event_nodes[::-1].copy(), 1, 50)
        assert third is first

    def test_distinct_requests_miss(self, sampling_graph, event_nodes):
        from repro.sampling.cache import CachingSampler

        sampler = CachingSampler(BatchBFSSampler(sampling_graph, random_state=4))
        sampler.sample(event_nodes, 1, 50)
        sampler.sample(event_nodes, 2, 50)
        sampler.sample(event_nodes[:10], 1, 50)
        assert sampler.misses == 3
        assert sampler.num_cached == 3
        sampler.clear()
        assert sampler.num_cached == 0
