"""Tests for the sampling caches: CachingSampler reuse and SampleMemo epochs."""

import numpy as np

from repro.core.config import TescConfig
from repro.sampling.cache import CachingSampler, SampleMemo, event_nodes_fingerprint
from repro.sampling.registry import create_sampler


def _csr(random_graph):
    return random_graph.to_csr()


class TestFingerprint:
    def test_order_insensitive(self):
        assert event_nodes_fingerprint(np.array([3, 1, 2])) == event_nodes_fingerprint(
            np.array([1, 2, 3])
        )

    def test_distinguishes_sets(self):
        assert event_nodes_fingerprint(np.array([1, 2])) != event_nodes_fingerprint(
            np.array([1, 3])
        )


class TestCachingSampler:
    def test_hit_returns_same_object(self, random_graph):
        csr = _csr(random_graph)
        sampler = CachingSampler(create_sampler("batch_bfs", csr, random_state=3))
        nodes = np.arange(20)
        first = sampler.sample(nodes, 1, 30)
        second = sampler.sample(nodes, 1, 30)
        assert first is second
        assert sampler.hits == 1
        assert sampler.misses == 1


class TestSampleMemo:
    def test_memoises_per_population_and_epoch(self, random_graph):
        csr = _csr(random_graph)
        calls = {"n": 0}

        def factory():
            calls["n"] += 1
            return create_sampler("batch_bfs", csr, random_state=3)

        memo = SampleMemo(factory)
        nodes = np.arange(25)
        first = memo.sample(nodes, 1, 40, epoch=0)
        assert memo.sample(nodes, 1, 40, epoch=0) is first
        assert calls["n"] == 1
        memo.sample(nodes, 1, 40, epoch=1)
        assert calls["n"] == 2
        assert memo.hits == 1
        assert memo.misses == 2

    def test_fresh_factory_draw_matches_from_scratch_sampler(self, random_graph):
        """A memo miss must reproduce a brand-new seeded sampler's draw."""
        csr = _csr(random_graph)
        cfg = TescConfig(sample_size=40, random_state=9)
        memo = SampleMemo(
            lambda: create_sampler("batch_bfs", csr, random_state=cfg.random_state)
        )
        nodes = np.arange(30)
        # Consume the memo twice with an epoch bump in between: both draws
        # must equal a from-scratch sampler's (same seed, same population).
        first = memo.sample(nodes, 1, cfg.sample_size, epoch=0)
        second = memo.sample(nodes, 1, cfg.sample_size, epoch=1)
        reference = create_sampler(
            "batch_bfs", csr, random_state=cfg.random_state
        ).sample(nodes, 1, cfg.sample_size)
        np.testing.assert_array_equal(first.nodes, reference.nodes)
        np.testing.assert_array_equal(second.nodes, reference.nodes)

    def test_eviction_respects_max_entries(self, random_graph):
        csr = _csr(random_graph)
        memo = SampleMemo(
            lambda: create_sampler("batch_bfs", csr, random_state=1), max_entries=2
        )
        for offset in range(4):
            memo.sample(np.arange(10 + offset), 1, 15, epoch=0)
        assert memo.num_cached == 2

    def test_clear(self, random_graph):
        csr = _csr(random_graph)
        memo = SampleMemo(lambda: create_sampler("batch_bfs", csr, random_state=1))
        memo.sample(np.arange(10), 1, 15)
        memo.clear()
        assert memo.num_cached == 0
