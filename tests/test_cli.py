"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph.generators import community_ring_graph
from repro.graph.io import write_edge_list, write_event_file


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()


class TestTestCommand:
    @pytest.fixture
    def files(self, tmp_path):
        graph = community_ring_graph(6, 30, 5.0, 8, random_state=2)
        edges_path = tmp_path / "graph.txt"
        events_path = tmp_path / "events.txt"
        write_edge_list(graph, str(edges_path))
        write_event_file(
            {"a": list(range(0, 30)), "b": list(range(30, 60))}, str(events_path)
        )
        return str(edges_path), str(events_path)

    def test_end_to_end(self, files, capsys):
        edges_path, events_path = files
        exit_code = main(
            [
                "test",
                "--edges", edges_path,
                "--events", events_path,
                "--event-a", "a",
                "--event-b", "b",
                "--level", "1",
                "--sample-size", "80",
                "--seed", "3",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "z-score" in output
        assert "verdict" in output


class TestRankCommand:
    @pytest.fixture
    def files(self, tmp_path):
        graph = community_ring_graph(6, 30, 5.0, 8, random_state=2)
        edges_path = tmp_path / "graph.txt"
        events_path = tmp_path / "events.txt"
        write_edge_list(graph, str(edges_path))
        write_event_file(
            {
                "a": list(range(0, 30)),
                "b": list(range(10, 40)),
                "c": list(range(90, 120)),
            },
            str(events_path),
        )
        return str(edges_path), str(events_path)

    def test_all_pairs_ranked(self, files, capsys):
        edges_path, events_path = files
        exit_code = main(
            [
                "rank",
                "--edges", edges_path,
                "--events", events_path,
                "--level", "1",
                "--sample-size", "80",
                "--seed", "3",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "rank" in output and "verdict" in output
        assert "sampling passes" in output
        # 3 events -> 3 unordered pairs in the table.
        assert output.count("positive") + output.count("negative") + output.count(
            "independent"
        ) >= 3

    def test_kendall_kernel_flag_is_result_invariant(self, files, capsys):
        """--kendall-kernel naive|fast|auto print the identical ranking table
        (the kernels compute the same exact integer S)."""
        edges_path, events_path = files
        outputs = {}
        for kernel in ("naive", "fast", "auto"):
            exit_code = main(
                [
                    "rank",
                    "--edges", edges_path,
                    "--events", events_path,
                    "--sample-size", "80",
                    "--seed", "3",
                    "--kendall-kernel", kernel,
                ]
            )
            assert exit_code == 0
            outputs[kernel] = capsys.readouterr().out
        assert outputs["naive"] == outputs["fast"] == outputs["auto"]

    def test_rejects_unknown_kernel(self, files, capsys):
        edges_path, events_path = files
        with pytest.raises(SystemExit):
            main(
                [
                    "rank",
                    "--edges", edges_path,
                    "--events", events_path,
                    "--kendall-kernel", "blas",
                ]
            )

    def test_explicit_pairs_and_top_k(self, files, capsys):
        edges_path, events_path = files
        exit_code = main(
            [
                "rank",
                "--edges", edges_path,
                "--events", events_path,
                "--pair", "a", "b",
                "--pair", "a", "c",
                "--top-k", "1",
                "--sort-by", "abs_z",
                "--sample-size", "80",
                "--seed", "3",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "pairs tested" in output


class TestTopkCommand:
    @pytest.fixture
    def files(self, tmp_path):
        graph = community_ring_graph(6, 30, 5.0, 8, random_state=2)
        edges_path = tmp_path / "graph.txt"
        events_path = tmp_path / "events.txt"
        write_edge_list(graph, str(edges_path))
        write_event_file(
            {
                "a": list(range(0, 30)),
                "b": list(range(10, 40)),
                "c": list(range(90, 120)),
                "d": list(range(100, 130)),
            },
            str(events_path),
        )
        return str(edges_path), str(events_path)

    def test_topk_end_to_end(self, files, capsys):
        edges_path, events_path = files
        exit_code = main(
            [
                "topk",
                "--edges", edges_path,
                "--events", events_path,
                "--k", "2",
                "--sample-size", "150",
                "--initial-sample", "32",
                "--seed", "3",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "progressive top-k engine" in output
        assert "k-th lower bound" in output
        assert "pairs pruned" in output
        # Exactly k result rows (rank column 1..2).
        assert "1    |" in output and "2    |" in output

    def test_rounds_flag_derives_schedule(self, files, capsys):
        edges_path, events_path = files
        exit_code = main(
            [
                "topk",
                "--edges", edges_path,
                "--events", events_path,
                "--k", "1",
                "--sample-size", "150",
                "--initial-sample", "16",
                "--rounds", "3",
                "--bound", "certified",
                "--seed", "3",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        # 3 rounds requested: two screening rounds plus the full budget.
        assert output.count("\n1     |") + output.count("\n2     |") >= 1

    def test_rounds_and_growth_conflict(self, files, capsys):
        edges_path, events_path = files
        with pytest.raises(SystemExit):
            main(
                [
                    "topk",
                    "--edges", edges_path,
                    "--events", events_path,
                    "--k", "1",
                    "--rounds", "3",
                    "--growth", "2.0",
                ]
            )
        assert "not allowed with" in capsys.readouterr().err

    def test_rank_top_k_routes_through_progressive_engine(self, files, capsys):
        """rank --top-k --sort-by score must print the progressive engine's
        summary and the identical top-k table the batch engine would."""
        edges_path, events_path = files
        common = [
            "--edges", edges_path,
            "--events", events_path,
            "--top-k", "2",
            "--sample-size", "150",
            "--seed", "3",
        ]
        assert main(["rank"] + common) == 0
        progressive = capsys.readouterr().out
        assert "progressive top-k engine" in progressive
        assert main(["rank"] + common + ["--no-progressive"]) == 0
        batch = capsys.readouterr().out
        assert "batch engine" in batch
        # The ranked tables (first block up to the blank line) are identical.
        assert progressive.split("\n\n")[0] == batch.split("\n\n")[0]

    def test_rank_top_k_non_score_sort_stays_on_batch_engine(self, files, capsys):
        edges_path, events_path = files
        exit_code = main(
            [
                "rank",
                "--edges", edges_path,
                "--events", events_path,
                "--top-k", "2",
                "--sort-by", "abs_z",
                "--sample-size", "150",
                "--seed", "3",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "batch engine" in output
        assert "progressive" not in output


class TestDatasetCommand:
    def test_dblp_summary(self, capsys):
        exit_code = main(["dataset", "dblp", "--scale", "0.2", "--seed", "1"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "nodes" in output
        assert "event" in output

    def test_twitter_summary(self, capsys):
        exit_code = main(["dataset", "twitter", "--scale", "0.05", "--seed", "1"])
        assert exit_code == 0
        assert "nodes" in capsys.readouterr().out


class TestSimulateCommand:
    def test_positive_simulation(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--correlation", "positive",
                "--level", "1",
                "--num-pairs", "2",
                "--event-size", "80",
                "--sample-size", "80",
                "--seed", "4",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "recall" in output


class TestExperimentCommand:
    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure99"])


class TestStreamCommand:
    @pytest.fixture
    def files(self, tmp_path):
        from repro.streaming import DeltaLog

        graph = community_ring_graph(6, 30, 5.0, 8, random_state=2)
        edges_path = tmp_path / "graph.txt"
        events_path = tmp_path / "events.txt"
        deltas_path = tmp_path / "deltas.jsonl"
        write_edge_list(graph, str(edges_path))
        write_event_file(
            {
                "a": list(range(0, 30)),
                "b": list(range(10, 40)),
                "c": list(range(90, 120)),
            },
            str(events_path),
        )
        log = DeltaLog()
        log.add_edge(0, 100)
        log.remove_edge(0, 1)
        log.seal()
        log.attach_event("a", 95)
        log.detach_event("b", 12)
        log.seal()
        log.save(str(deltas_path))
        return str(edges_path), str(events_path), str(deltas_path)

    def test_replay_prints_ranking_deltas(self, files, capsys):
        edges_path, events_path, deltas_path = files
        exit_code = main(
            [
                "stream",
                "--edges", edges_path,
                "--events", events_path,
                "--deltas", deltas_path,
                "--level", "1",
                "--sample-size", "80",
                "--seed", "3",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "initial ranking" in output
        assert "commit 1" in output
        assert "commit 2" in output
        assert "final ranking" in output
        assert "re-scored" in output

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_stream_matches_static_rank_after_replay(self, files, capsys):
        """The final streamed ranking equals a static rank of the final graph."""
        from repro.core.batch import BatchTescEngine
        from repro.core.config import TescConfig
        from repro.graph.io import read_edge_list, read_event_file
        from repro.streaming import DeltaLog, DynamicAttributedGraph

        edges_path, events_path, deltas_path = files
        exit_code = main(
            [
                "stream",
                "--edges", edges_path,
                "--events", events_path,
                "--deltas", deltas_path,
                "--sample-size", "80",
                "--seed", "3",
            ]
        )
        assert exit_code == 0
        streamed = capsys.readouterr().out

        graph, labels = read_edge_list(edges_path)
        label_to_id = {label: index for index, label in enumerate(labels)}
        events = read_event_file(events_path, label_to_id=label_to_id)
        dynamic = DynamicAttributedGraph(graph, events, labels=labels)
        for batch in DeltaLog.load(deltas_path).replay():
            dynamic.apply(batch)
        config = TescConfig(sample_size=80, random_state=3)
        static = BatchTescEngine(dynamic.snapshot(), config).rank_pairs("all")
        final_block = streamed.split("final ranking:")[1]
        for pair in static:
            assert f"{pair.score:+.4f}" in final_block


class TestSharedEngineFlags:
    """rank/topk/stream/serve/experiment accept the same engine flags."""

    SHARED = ["--workers", "2", "--kendall-kernel", "fast",
              "--top-k", "3", "--seed", "9"]

    def _parse(self, argv):
        return build_parser().parse_args(argv)

    def test_every_engine_subcommand_accepts_shared_flags(self):
        parser_cases = {
            "rank": ["rank", "--edges", "e", "--events", "v"],
            "topk": ["topk", "--edges", "e", "--events", "v"],
            "stream": ["stream", "--edges", "e", "--events", "v",
                       "--deltas", "d"],
            "serve": ["serve", "--edges", "e", "--events", "v"],
            "experiment": ["experiment", "figure5"],
        }
        for command, argv in parser_cases.items():
            args = self._parse(argv + self.SHARED)
            assert args.command == command
            assert args.workers == 2
            assert args.kendall_kernel == "fast"
            assert args.top_k == 3
            assert args.seed == 9

    def test_shared_flag_defaults(self):
        args = self._parse(["serve", "--edges", "e", "--events", "v"])
        assert args.workers is None
        assert args.kendall_kernel == "auto"
        assert args.top_k is None
        assert args.seed is None

    def test_stream_concurrent_queries_flag(self):
        args = self._parse(
            ["stream", "--edges", "e", "--events", "v", "--deltas", "d",
             "--concurrent-queries", "4"]
        )
        assert args.concurrent_queries == 4

    def test_topk_without_k_or_top_k_errors(self, tmp_path, capsys):
        graph = community_ring_graph(6, 30, 5.0, 8, random_state=2)
        edges_path = tmp_path / "graph.txt"
        events_path = tmp_path / "events.txt"
        write_edge_list(graph, str(edges_path))
        write_event_file({"a": list(range(0, 30))}, str(events_path))
        exit_code = main(
            ["topk", "--edges", str(edges_path), "--events", str(events_path)]
        )
        assert exit_code == 2
        assert "--k / --top-k" in capsys.readouterr().err


class TestTopkAlias:
    @pytest.fixture
    def files(self, tmp_path):
        graph = community_ring_graph(6, 30, 5.0, 8, random_state=2)
        edges_path = tmp_path / "graph.txt"
        events_path = tmp_path / "events.txt"
        write_edge_list(graph, str(edges_path))
        write_event_file(
            {
                "a": list(range(0, 30)),
                "b": list(range(10, 40)),
                "c": list(range(90, 120)),
            },
            str(events_path),
        )
        return str(edges_path), str(events_path)

    def test_top_k_is_an_alias_for_k(self, files, capsys):
        edges_path, events_path = files
        base = ["topk", "--edges", edges_path, "--events", events_path,
                "--sample-size", "80", "--seed", "3"]
        assert main(base + ["--k", "2"]) == 0
        via_k = capsys.readouterr().out
        assert main(base + ["--top-k", "2"]) == 0
        via_alias = capsys.readouterr().out
        assert via_k == via_alias


class TestStreamConcurrentQueries:
    @pytest.fixture
    def files(self, tmp_path):
        from repro.streaming import DeltaLog

        graph = community_ring_graph(6, 30, 5.0, 8, random_state=2)
        edges_path = tmp_path / "graph.txt"
        events_path = tmp_path / "events.txt"
        deltas_path = tmp_path / "deltas.jsonl"
        write_edge_list(graph, str(edges_path))
        write_event_file(
            {"a": list(range(0, 30)), "b": list(range(10, 40))},
            str(events_path),
        )
        log = DeltaLog()
        log.attach_event("a", 95)
        log.seal()
        log.attach_event("b", 100)
        log.seal()
        log.save(str(deltas_path))
        return str(edges_path), str(events_path), str(deltas_path)

    def test_concurrent_queries_report_epoch_spread(self, files, capsys):
        edges_path, events_path, deltas_path = files
        exit_code = main(
            [
                "stream",
                "--edges", edges_path,
                "--events", events_path,
                "--deltas", deltas_path,
                "--sample-size", "80",
                "--seed", "3",
                "--concurrent-queries", "2",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "final ranking" in output
        assert "snapshot-isolated ranks from 2 thread(s)" in output
        assert "while 2 commit(s) replayed" in output
