"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import TextTable, render_mapping


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["name", "value"])
        table.add_row(["alpha", 1])
        table.add_row(["b", 22])
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4  # header, separator, two rows

    def test_float_formatting(self):
        table = TextTable(["x"], float_format="{:.1f}")
        table.add_row([3.14159])
        assert "3.1" in table.render()
        assert "3.14" not in table.render()

    def test_bool_formatting(self):
        table = TextTable(["flag"])
        table.add_row([True])
        table.add_row([False])
        rendered = table.render()
        assert "yes" in rendered and "no" in rendered

    def test_markdown_render(self):
        table = TextTable(["a", "b"])
        table.add_row([1, 2])
        rendered = table.render(markdown=True)
        assert rendered.splitlines()[0].startswith("|")
        assert "|---" in rendered.replace(" ", "")

    def test_row_width_mismatch_raises(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_empty_columns_raise(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_len_and_rows_copy(self):
        table = TextTable(["a"])
        table.add_row([1])
        assert len(table) == 1
        rows = table.rows
        rows[0][0] = "mutated"
        assert table.rows[0][0] == "1"


class TestRenderMapping:
    def test_contains_keys_and_title(self):
        rendered = render_mapping({"nodes": 10, "edges": 20}, title="summary")
        assert rendered.startswith("summary")
        assert "nodes" in rendered and "20" in rendered

    def test_without_title(self):
        rendered = render_mapping({"k": "v"})
        assert "k" in rendered
