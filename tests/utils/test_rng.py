"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        first = ensure_rng(7).integers(0, 1000, size=5)
        second = ensure_rng(7).integers(0, 1000, size=5)
        assert np.array_equal(first, second)

    def test_different_seeds_differ(self):
        first = ensure_rng(1).integers(0, 10**9)
        second = ensure_rng(2).integers(0, 10**9)
        assert first != second

    def test_generator_passthrough(self):
        generator = np.random.default_rng(3)
        assert ensure_rng(generator) is generator

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(11)
        assert isinstance(ensure_rng(sequence), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(5, 4)) == 4

    def test_children_are_independent(self):
        children = spawn_rngs(5, 2)
        draws_a = children[0].integers(0, 10**9, size=10)
        draws_b = children[1].integers(0, 10**9, size=10)
        assert not np.array_equal(draws_a, draws_b)

    def test_deterministic_given_seed(self):
        first = [child.integers(0, 10**9) for child in spawn_rngs(9, 3)]
        second = [child.integers(0, 10**9) for child in spawn_rngs(9, 3)]
        assert first == second

    def test_zero_count(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(4), 3)
        assert len(children) == 3


class TestDeriveSeed:
    def test_in_range(self):
        seed = derive_seed(5)
        assert 0 <= seed < 2**31

    def test_salt_changes_seed(self):
        assert derive_seed(5, salt=1) != derive_seed(5, salt=2)
