"""Tests for repro.utils.validation."""

import pytest

from repro.exceptions import ConfigurationError
from repro.utils.validation import (
    check_fraction,
    check_non_negative_int,
    check_positive_int,
    check_probability_vector,
    check_vicinity_level,
)


class TestCheckPositiveInt:
    def test_valid(self):
        assert check_positive_int(3, "x") == 3

    @pytest.mark.parametrize("value", [0, -1, 1.5, "3", True, None])
    def test_invalid(self, value):
        with pytest.raises(ConfigurationError):
            check_positive_int(value, "x")

    def test_error_message_mentions_name(self):
        with pytest.raises(ConfigurationError, match="my_param"):
            check_positive_int(0, "my_param")


class TestCheckNonNegativeInt:
    def test_zero_is_allowed(self):
        assert check_non_negative_int(0, "x") == 0

    @pytest.mark.parametrize("value", [-1, 2.5, False])
    def test_invalid(self, value):
        with pytest.raises(ConfigurationError):
            check_non_negative_int(value, "x")


class TestCheckFraction:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0, 1])
    def test_valid_inclusive(self, value):
        assert check_fraction(value, "p") == pytest.approx(float(value))

    @pytest.mark.parametrize("value", [-0.1, 1.1, "abc", None])
    def test_invalid(self, value):
        with pytest.raises(ConfigurationError):
            check_fraction(value, "p")

    def test_exclusive_rejects_bounds(self):
        with pytest.raises(ConfigurationError):
            check_fraction(0.0, "p", inclusive=False)
        with pytest.raises(ConfigurationError):
            check_fraction(1.0, "p", inclusive=False)


class TestCheckVicinityLevel:
    def test_valid_levels(self):
        for level in (1, 2, 3, 10):
            assert check_vicinity_level(level) == level

    @pytest.mark.parametrize("level", [0, -1, 1.5])
    def test_invalid_levels(self, level):
        with pytest.raises(ConfigurationError):
            check_vicinity_level(level)


class TestCheckProbabilityVector:
    def test_valid(self):
        check_probability_vector([0.25, 0.25, 0.5], "p")

    def test_not_summing_to_one(self):
        with pytest.raises(ConfigurationError):
            check_probability_vector([0.3, 0.3], "p")

    def test_negative_entry(self):
        with pytest.raises(ConfigurationError):
            check_probability_vector([1.2, -0.2], "p")

    def test_empty(self):
        with pytest.raises(ConfigurationError):
            check_probability_vector([], "p")
