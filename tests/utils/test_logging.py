"""Tests for repro.utils.logging."""

import io
import logging

from repro.utils.logging import configure_logging, get_logger


class TestGetLogger:
    def test_root_logger_name(self):
        assert get_logger().name == "repro"

    def test_child_logger_is_namespaced(self):
        assert get_logger("sampling").name == "repro.sampling"

    def test_already_namespaced_name_is_kept(self):
        assert get_logger("repro.core").name == "repro.core"


class TestConfigureLogging:
    def test_writes_to_stream(self):
        stream = io.StringIO()
        logger = configure_logging(level=logging.INFO, stream=stream)
        logger.info("hello from test")
        assert "hello from test" in stream.getvalue()

    def test_reconfiguration_does_not_duplicate_handlers(self):
        stream = io.StringIO()
        configure_logging(stream=stream)
        logger = configure_logging(stream=stream)
        logger.info("only once")
        assert stream.getvalue().count("only once") == 1
