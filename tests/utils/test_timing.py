"""Tests for repro.utils.timing."""

import pytest

from repro.utils.timing import Timer, format_seconds


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "value, expected_suffix",
        [(5e-9, "ns"), (5e-6, "us"), (5e-3, "ms"), (5.0, "s"), (300.0, "min")],
    )
    def test_units(self, value, expected_suffix):
        assert format_seconds(value).endswith(expected_suffix)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            format_seconds(-1.0)


class TestTimer:
    def test_context_manager_accumulates(self):
        with Timer() as timer:
            sum(range(100))
        assert timer.elapsed > 0.0

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_laps_accumulate_by_name(self):
        timer = Timer()
        with timer.lap("phase"):
            pass
        with timer.lap("phase"):
            pass
        assert len(timer.laps["phase"]) == 2
        assert timer.total("phase") >= 0.0

    def test_total_of_unknown_lap_is_zero(self):
        assert Timer().total("missing") == 0.0

    def test_summary_contains_elapsed(self):
        timer = Timer()
        timer.start()
        timer.stop()
        timer.record("x", 0.5)
        summary = timer.summary()
        assert summary["x"] == 0.5
        assert "elapsed" in summary

    def test_summary_rejects_lap_named_elapsed(self):
        # A lap called "elapsed" would silently clobber (or be clobbered
        # by) the overall-elapsed key; summary() must refuse instead.
        timer = Timer()
        timer.start()
        timer.stop()
        timer.record("elapsed", 0.25)
        with pytest.raises(ValueError, match="elapsed"):
            timer.summary()

    def test_multiple_start_stop_cycles_accumulate(self):
        timer = Timer()
        timer.start()
        first = timer.stop()
        timer.start()
        second = timer.stop()
        assert timer.elapsed == pytest.approx(first + second)
