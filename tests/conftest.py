"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.events.attributed_graph import AttributedGraph
from repro.graph.adjacency import Graph
from repro.graph.generators import erdos_renyi_graph


@pytest.fixture
def path_graph() -> Graph:
    """A 6-node path: 0-1-2-3-4-5."""
    graph = Graph(6)
    graph.add_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
    return graph


@pytest.fixture
def star_graph() -> Graph:
    """A star with centre 0 and leaves 1..5."""
    graph = Graph(6)
    graph.add_edges([(0, leaf) for leaf in range(1, 6)])
    return graph


@pytest.fixture
def two_triangles_graph() -> Graph:
    """Two triangles joined by one bridge edge: {0,1,2} - {3,4,5}."""
    graph = Graph(6)
    graph.add_edges([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    return graph


@pytest.fixture
def random_graph() -> Graph:
    """A moderately sized random graph (deterministic seed)."""
    return erdos_renyi_graph(200, 0.03, random_state=123)


@pytest.fixture
def attributed_path(path_graph) -> AttributedGraph:
    """The path graph with two overlapping events."""
    return AttributedGraph(path_graph, {"a": [0, 1], "b": [4, 5]})


@pytest.fixture
def attributed_random(random_graph) -> AttributedGraph:
    """The random graph with clustered and scattered events."""
    rng = np.random.default_rng(7)
    nodes_a = rng.choice(200, size=30, replace=False)
    nodes_b = rng.choice(200, size=30, replace=False)
    return AttributedGraph(random_graph, {"a": nodes_a, "b": nodes_b, "c": [0, 1, 2]})


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for tests."""
    return np.random.default_rng(42)
