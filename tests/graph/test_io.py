"""Tests for repro.graph.io."""

import pytest

from repro.exceptions import GraphFormatError
from repro.graph.io import (
    read_edge_list,
    read_event_file,
    write_edge_list,
    write_event_file,
)


class TestEdgeListIO:
    def test_round_trip(self, tmp_path, two_triangles_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(two_triangles_graph, str(path))
        loaded, labels = read_edge_list(str(path))
        assert loaded.num_nodes == two_triangles_graph.num_nodes
        assert loaded.num_edges == two_triangles_graph.num_edges

    def test_labels_preserved(self, tmp_path):
        path = tmp_path / "named.txt"
        path.write_text("alice bob\nbob carol\n")
        graph, labels = read_edge_list(str(path))
        assert graph.num_nodes == 3
        assert set(labels) == {"alice", "bob", "carol"}

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "comments.txt"
        path.write_text("# header\n\n0 1\n")
        graph, _ = read_edge_list(str(path))
        assert graph.num_edges == 1

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("justonenode\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(str(path))

    def test_missing_file_raises(self):
        with pytest.raises(GraphFormatError):
            read_edge_list("/nonexistent/file.txt")


class TestEventFileIO:
    def test_round_trip_with_ids(self, tmp_path):
        path = tmp_path / "events.txt"
        events = {"wireless": [1, 2, 3], "sensor": [2, 4]}
        write_event_file(events, str(path))
        loaded = read_event_file(str(path))
        assert loaded == {"wireless": [1, 2, 3], "sensor": [2, 4]}

    def test_label_mapping(self, tmp_path):
        path = tmp_path / "events.txt"
        path.write_text("wireless\talice\nwireless\tbob\n")
        loaded = read_event_file(str(path), label_to_id={"alice": 0, "bob": 1})
        assert loaded == {"wireless": [0, 1]}

    def test_unknown_label_raises(self, tmp_path):
        path = tmp_path / "events.txt"
        path.write_text("wireless\tghost\n")
        with pytest.raises(GraphFormatError):
            read_event_file(str(path), label_to_id={"alice": 0})

    def test_non_integer_without_mapping_raises(self, tmp_path):
        path = tmp_path / "events.txt"
        path.write_text("wireless\talice\n")
        with pytest.raises(GraphFormatError):
            read_event_file(str(path))

    def test_missing_file_raises(self):
        with pytest.raises(GraphFormatError):
            read_event_file("/nonexistent/events.txt")

    def test_write_with_labels(self, tmp_path):
        path = tmp_path / "events.txt"
        write_event_file({"kw": [0, 1]}, str(path), labels=["alice", "bob"])
        content = path.read_text()
        assert "alice" in content and "bob" in content
