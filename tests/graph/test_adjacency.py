"""Tests for repro.graph.adjacency."""

import pytest

from repro.exceptions import EdgeError, NodeNotFoundError
from repro.graph.adjacency import Graph


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0

    def test_preallocated_nodes(self):
        assert Graph(5).num_nodes == 5

    def test_negative_node_count_raises(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_add_node_returns_new_id(self):
        graph = Graph(2)
        assert graph.add_node() == 2
        assert graph.num_nodes == 3

    def test_add_nodes_returns_ids(self):
        graph = Graph(1)
        assert graph.add_nodes(3) == [1, 2, 3]

    def test_add_nodes_negative_raises(self):
        with pytest.raises(ValueError):
            Graph(1).add_nodes(-2)


class TestEdges:
    def test_add_edge_symmetric(self):
        graph = Graph(3)
        assert graph.add_edge(0, 1) is True
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert graph.num_edges == 1

    def test_duplicate_edge_not_counted(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        assert graph.add_edge(1, 0) is False
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(EdgeError):
            Graph(2).add_edge(1, 1)

    def test_unknown_node_rejected(self):
        with pytest.raises(NodeNotFoundError):
            Graph(2).add_edge(0, 5)

    def test_add_edges_counts_new_only(self):
        graph = Graph(4)
        added = graph.add_edges([(0, 1), (1, 2), (0, 1)])
        assert added == 2

    def test_remove_edge(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        assert graph.remove_edge(0, 1) is True
        assert not graph.has_edge(0, 1)
        assert graph.num_edges == 0

    def test_remove_missing_edge_returns_false(self):
        assert Graph(3).remove_edge(0, 1) is False

    def test_edges_iteration_each_once(self, two_triangles_graph):
        edges = list(two_triangles_graph.edges())
        assert len(edges) == two_triangles_graph.num_edges
        assert all(u < v for u, v in edges)


class TestQueries:
    def test_degree(self, star_graph):
        assert star_graph.degree(0) == 5
        assert star_graph.degree(3) == 1

    def test_degree_unknown_node(self, star_graph):
        with pytest.raises(NodeNotFoundError):
            star_graph.degree(99)

    def test_neighbors(self, path_graph):
        assert path_graph.neighbors(2) == {1, 3}

    def test_nodes_range(self, path_graph):
        assert list(path_graph.nodes()) == list(range(6))

    def test_copy_is_independent(self, path_graph):
        clone = path_graph.copy()
        clone.add_edge(0, 5)
        assert not path_graph.has_edge(0, 5)
        assert clone.has_edge(0, 5)

    def test_equality(self, path_graph):
        assert path_graph == path_graph.copy()
        other = path_graph.copy()
        other.add_edge(0, 2)
        assert path_graph != other

    def test_repr_mentions_counts(self, path_graph):
        assert "num_nodes=6" in repr(path_graph)


class TestConversion:
    def test_to_csr_round_trip(self, two_triangles_graph):
        csr = two_triangles_graph.to_csr()
        assert csr.num_nodes == two_triangles_graph.num_nodes
        assert csr.num_edges == two_triangles_graph.num_edges
        assert set(csr.edges()) == set(two_triangles_graph.edges())
