"""Tests for repro.graph.builder."""

from repro.graph.builder import GraphBuilder


class TestGraphBuilder:
    def test_labels_get_dense_ids(self):
        builder = GraphBuilder()
        assert builder.add_node("alice") == 0
        assert builder.add_node("bob") == 1
        assert builder.add_node("alice") == 0

    def test_add_edge_registers_labels(self):
        builder = GraphBuilder()
        builder.add_edge("x", "y")
        assert builder.num_nodes == 2
        assert builder.node_id("y") == 1

    def test_self_edge_is_ignored(self):
        builder = GraphBuilder()
        builder.add_edge("x", "x")
        assert builder.build().num_edges == 0

    def test_build_collapses_duplicates(self):
        builder = GraphBuilder()
        builder.add_edges([("a", "b"), ("b", "a"), ("a", "c")])
        graph = builder.build()
        assert graph.num_edges == 2

    def test_build_csr_matches_build(self):
        builder = GraphBuilder()
        builder.add_edges([("a", "b"), ("b", "c"), ("c", "d")])
        assert set(builder.build_csr().edges()) == set(builder.build().edges())

    def test_label_round_trip(self):
        builder = GraphBuilder()
        builder.add_edge("alice", "bob")
        assert builder.label_of(0) == "alice"
        assert builder.labels() == ["alice", "bob"]

    def test_unknown_label_returns_none(self):
        assert GraphBuilder().node_id("ghost") is None

    def test_num_edge_records_counts_raw(self):
        builder = GraphBuilder()
        builder.add_edges([("a", "b"), ("a", "b")])
        assert builder.num_edge_records == 2
