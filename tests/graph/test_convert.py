"""Tests for repro.graph.convert (networkx interop)."""

import networkx as nx
import pytest

from repro.graph.convert import from_networkx, to_networkx


class TestToNetworkx:
    def test_edge_and_node_counts(self, two_triangles_graph):
        nx_graph = to_networkx(two_triangles_graph)
        assert nx_graph.number_of_nodes() == 6
        assert nx_graph.number_of_edges() == 7

    def test_csr_input(self, two_triangles_graph):
        nx_graph = to_networkx(two_triangles_graph.to_csr())
        assert nx_graph.number_of_edges() == 7

    def test_labels(self, path_graph):
        labels = list("abcdef")
        nx_graph = to_networkx(path_graph, labels=labels)
        assert set(nx_graph.nodes()) == set(labels)
        assert nx_graph.has_edge("a", "b")

    def test_label_length_mismatch(self, path_graph):
        with pytest.raises(ValueError):
            to_networkx(path_graph, labels=["a"])

    def test_invalid_type(self):
        with pytest.raises(TypeError):
            to_networkx("not a graph")


class TestFromNetworkx:
    def test_round_trip(self, random_graph):
        nx_graph = to_networkx(random_graph)
        back, mapping = from_networkx(nx_graph)
        assert back.num_nodes == random_graph.num_nodes
        assert back.num_edges == random_graph.num_edges

    def test_string_labels(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge("alice", "bob")
        graph, mapping = from_networkx(nx_graph)
        assert graph.num_nodes == 2
        assert graph.has_edge(mapping["alice"], mapping["bob"])

    def test_directed_graph_becomes_undirected(self):
        nx_graph = nx.DiGraph()
        nx_graph.add_edge(0, 1)
        nx_graph.add_edge(1, 0)
        graph, _ = from_networkx(nx_graph)
        assert graph.num_edges == 1

    def test_self_loops_dropped(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge(0, 0)
        nx_graph.add_edge(0, 1)
        graph, _ = from_networkx(nx_graph)
        assert graph.num_edges == 1
