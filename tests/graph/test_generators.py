"""Tests for repro.graph.generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    barabasi_albert_graph,
    community_ring_graph,
    erdos_renyi_graph,
    planted_partition_graph,
    powerlaw_cluster_graph,
    random_node_subset,
    ring_lattice_graph,
    watts_strogatz_graph,
)
from repro.graph.metrics import connected_components


class TestErdosRenyi:
    def test_sizes(self):
        graph = erdos_renyi_graph(100, 0.05, random_state=1)
        assert graph.num_nodes == 100
        expected = 0.05 * 100 * 99 / 2
        assert 0.5 * expected < graph.num_edges < 1.5 * expected

    def test_zero_probability(self):
        assert erdos_renyi_graph(50, 0.0, random_state=1).num_edges == 0

    def test_deterministic(self):
        first = erdos_renyi_graph(60, 0.1, random_state=9)
        second = erdos_renyi_graph(60, 0.1, random_state=9)
        assert set(first.edges()) == set(second.edges())

    def test_invalid_probability(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            erdos_renyi_graph(10, 1.5)


class TestBarabasiAlbert:
    def test_sizes_and_connectivity(self):
        graph = barabasi_albert_graph(300, 3, random_state=2)
        assert graph.num_nodes == 300
        assert graph.num_edges >= 3 * (300 - 3) * 0.8
        components = connected_components(graph.to_csr())
        assert components[0].size == 300

    def test_heavy_tail(self):
        graph = barabasi_albert_graph(500, 2, random_state=3)
        degrees = graph.to_csr().degrees()
        assert degrees.max() > 5 * degrees.mean()

    def test_m_too_large_raises(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(5, 5)


class TestRingLatticeAndWattsStrogatz:
    def test_ring_lattice_is_regular(self):
        graph = ring_lattice_graph(20, 2)
        assert all(graph.degree(node) == 4 for node in graph.nodes())

    def test_watts_strogatz_keeps_edge_count_close(self):
        graph = watts_strogatz_graph(100, 2, 0.1, random_state=5)
        assert graph.num_nodes == 100
        assert abs(graph.num_edges - 200) <= 10

    def test_zero_rewiring_is_lattice(self):
        assert set(watts_strogatz_graph(30, 2, 0.0, random_state=1).edges()) == set(
            ring_lattice_graph(30, 2).edges()
        )


class TestPlantedPartition:
    def test_block_structure(self):
        graph = planted_partition_graph([50, 50], 0.2, 0.01, random_state=4)
        intra = sum(1 for u, v in graph.edges() if (u < 50) == (v < 50))
        inter = graph.num_edges - intra
        assert intra > inter

    def test_single_community(self):
        graph = planted_partition_graph([40], 0.1, 0.0, random_state=1)
        assert graph.num_nodes == 40

    def test_empty_communities_rejected(self):
        with pytest.raises(ValueError):
            planted_partition_graph([], 0.1, 0.1)


class TestCommunityRing:
    def test_sizes(self):
        graph = community_ring_graph(8, 30, 4.0, 10, random_state=6)
        assert graph.num_nodes == 240
        assert graph.num_edges > 0

    def test_far_communities_are_far_apart(self):
        from repro.graph.traversal import shortest_path_lengths_from

        graph = community_ring_graph(12, 25, 5.0, 10, random_state=7)
        csr = graph.to_csr()
        distances = shortest_path_lengths_from(csr, 0)
        opposite = np.arange(6 * 25, 7 * 25)
        reachable = distances[opposite][distances[opposite] >= 0]
        assert reachable.size == 0 or reachable.min() >= 4

    def test_adjacent_communities_are_close(self):
        from repro.graph.traversal import shortest_path_lengths_from

        graph = community_ring_graph(12, 25, 5.0, 15, random_state=8)
        csr = graph.to_csr()
        distances = shortest_path_lengths_from(csr, 0)
        neighbour_community = np.arange(25, 50)
        reachable = distances[neighbour_community][distances[neighbour_community] >= 0]
        assert reachable.size > 0
        assert reachable.min() <= 4


class TestPowerlawCluster:
    def test_sizes(self):
        graph = powerlaw_cluster_graph(200, 3, 0.5, random_state=9)
        assert graph.num_nodes == 200
        assert graph.num_edges >= 3 * (200 - 3) * 0.5


class TestRandomNodeSubset:
    def test_distinct_and_sorted(self):
        subset = random_node_subset(100, 20, random_state=1)
        assert len(subset) == 20
        assert len(set(subset.tolist())) == 20
        assert list(subset) == sorted(subset)

    def test_too_many_raises(self):
        with pytest.raises(ValueError):
            random_node_subset(5, 10)

    def test_zero_count(self):
        assert random_node_subset(5, 0).size == 0
