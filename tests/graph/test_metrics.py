"""Tests for repro.graph.metrics."""

import numpy as np

from repro.graph.adjacency import Graph
from repro.graph.metrics import (
    clustering_coefficient,
    connected_components,
    degree_histogram,
    summarize_graph,
)


class TestConnectedComponents:
    def test_single_component(self, path_graph):
        components = connected_components(path_graph.to_csr())
        assert len(components) == 1
        assert components[0].size == 6

    def test_two_components(self):
        graph = Graph(5)
        graph.add_edges([(0, 1), (2, 3)])
        components = connected_components(graph.to_csr())
        assert len(components) == 3
        assert components[0].size == 2

    def test_components_sorted_by_size(self):
        graph = Graph(6)
        graph.add_edges([(0, 1), (1, 2), (3, 4)])
        components = connected_components(graph.to_csr())
        sizes = [component.size for component in components]
        assert sizes == sorted(sizes, reverse=True)


class TestSummarizeGraph:
    def test_fields(self, random_graph):
        summary = summarize_graph(random_graph.to_csr(), random_state=0)
        assert summary.num_nodes == 200
        assert summary.num_edges == random_graph.num_edges
        assert summary.min_degree <= summary.mean_degree <= summary.max_degree
        assert summary.largest_component_size <= 200

    def test_as_dict_keys(self, path_graph):
        summary = summarize_graph(path_graph.to_csr(), random_state=0)
        as_dict = summary.as_dict()
        assert "nodes" in as_dict and "edges" in as_dict

    def test_distance_estimates_on_path(self, path_graph):
        summary = summarize_graph(path_graph.to_csr(), distance_samples=6, random_state=0)
        assert summary.estimated_diameter_lower_bound >= 3

    def test_no_distance_samples(self, path_graph):
        summary = summarize_graph(path_graph.to_csr(), distance_samples=0)
        assert summary.estimated_mean_distance is None


class TestDegreeHistogram:
    def test_path_graph(self, path_graph):
        hist = degree_histogram(path_graph.to_csr())
        assert hist[1] == 2
        assert hist[2] == 4

    def test_sums_to_node_count(self, random_graph):
        hist = degree_histogram(random_graph.to_csr())
        assert hist.sum() == 200


class TestClusteringCoefficient:
    def test_triangle_is_one(self):
        graph = Graph(3)
        graph.add_edges([(0, 1), (1, 2), (0, 2)])
        assert clustering_coefficient(graph.to_csr()) == 1.0

    def test_path_is_zero(self, path_graph):
        assert clustering_coefficient(path_graph.to_csr()) == 0.0

    def test_subset_of_nodes(self, two_triangles_graph):
        csr = two_triangles_graph.to_csr()
        value = clustering_coefficient(csr, nodes=np.array([0, 1]))
        assert value == 1.0
