"""Tests for repro.graph.vicinity."""

import numpy as np
import pytest

from repro.graph.adjacency import Graph
from repro.graph.traversal import bfs_vicinity
from repro.graph.vicinity import VicinityIndex


class TestVicinityIndex:
    def test_lazy_size_matches_bfs(self, random_graph):
        csr = random_graph.to_csr()
        index = VicinityIndex(csr, levels=(1, 2))
        for node in (0, 3, 50):
            for level in (1, 2):
                assert index.size(node, level) == len(bfs_vicinity(csr, node, level))

    def test_is_cached_after_access(self, path_graph):
        index = VicinityIndex(path_graph.to_csr(), levels=(1,))
        assert not index.is_cached(2, 1)
        index.size(2, 1)
        assert index.is_cached(2, 1)

    def test_precompute_fills_all(self, path_graph):
        index = VicinityIndex(path_graph.to_csr(), levels=(1,), lazy=False)
        assert all(index.is_cached(node, 1) for node in range(6))

    def test_sizes_vector(self, path_graph):
        index = VicinityIndex(path_graph.to_csr(), levels=(1,))
        sizes = index.sizes([0, 2, 5], 1)
        assert list(sizes) == [2, 3, 2]

    def test_total_size(self, path_graph):
        index = VicinityIndex(path_graph.to_csr(), levels=(1,))
        assert index.total_size([0, 2, 5], 1) == 7

    def test_unknown_level_raises(self, path_graph):
        index = VicinityIndex(path_graph.to_csr(), levels=(1,))
        with pytest.raises(KeyError):
            index.size(0, 3)

    def test_invalid_level_raises(self, path_graph):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            VicinityIndex(path_graph.to_csr(), levels=(0,))

    def test_empty_levels_raise(self, path_graph):
        with pytest.raises(ValueError):
            VicinityIndex(path_graph.to_csr(), levels=())

    def test_invalidate_specific_nodes(self, path_graph):
        index = VicinityIndex(path_graph.to_csr(), levels=(1,))
        index.size(0, 1)
        index.size(1, 1)
        index.invalidate([0])
        assert not index.is_cached(0, 1)
        assert index.is_cached(1, 1)

    def test_invalidate_all(self, path_graph):
        index = VicinityIndex(path_graph.to_csr(), levels=(1,))
        index.size(0, 1)
        index.invalidate()
        assert not index.is_cached(0, 1)


class TestRebase:
    def test_rebase_keeps_clean_entries_and_drops_dirty(self):
        graph = Graph(6)
        graph.add_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
        csr = graph.to_csr()
        index = VicinityIndex(csr, levels=(1, 2), lazy=True)
        index.precompute()
        graph.add_edge(0, 5)
        patched = graph.to_csr()
        rebased = index.rebase(patched, {1: [0, 5], 2: [0, 1, 4, 5]})
        assert rebased.graph is patched
        assert rebased.is_cached(2, 1)
        assert not rebased.is_cached(0, 1)
        assert not rebased.is_cached(1, 2)
        fresh = VicinityIndex(patched, levels=(1, 2), lazy=False)
        for level in (1, 2):
            np.testing.assert_array_equal(
                rebased.sizes(range(6), level), fresh.sizes(range(6), level)
            )

    def test_rebase_without_dirty_map_drops_everything(self):
        graph = Graph(4)
        graph.add_edges([(0, 1), (1, 2)])
        index = VicinityIndex(graph.to_csr(), levels=(1,), lazy=False)
        rebased = index.rebase(graph.to_csr())
        assert not rebased.is_cached(0, 1)

    def test_rebase_onto_resized_graph_drops_everything(self):
        graph = Graph(4)
        graph.add_edges([(0, 1), (1, 2)])
        index = VicinityIndex(graph.to_csr(), levels=(1,), lazy=False)
        graph.add_node()
        rebased = index.rebase(graph.to_csr(), {1: []})
        assert not rebased.is_cached(0, 1)
