"""Tests for repro.graph.traversal (h-hop BFS, Batch BFS)."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import NodeNotFoundError
from repro.graph.convert import to_networkx
from repro.graph.generators import erdos_renyi_graph
from repro.graph.traversal import (
    BFSEngine,
    batch_bfs_vicinity,
    bfs_vicinity,
    bfs_vicinity_subgraph,
    nodes_at_distance,
    shortest_path_lengths_from,
)


class TestBfsVicinity:
    def test_zero_hops_is_source_only(self, path_graph):
        csr = path_graph.to_csr()
        assert list(bfs_vicinity(csr, 2, 0)) == [2]

    def test_path_graph_levels(self, path_graph):
        csr = path_graph.to_csr()
        assert sorted(bfs_vicinity(csr, 2, 1)) == [1, 2, 3]
        assert sorted(bfs_vicinity(csr, 2, 2)) == [0, 1, 2, 3, 4]
        assert sorted(bfs_vicinity(csr, 0, 5)) == list(range(6))

    def test_star_graph(self, star_graph):
        csr = star_graph.to_csr()
        assert sorted(bfs_vicinity(csr, 3, 1)) == [0, 3]
        assert sorted(bfs_vicinity(csr, 3, 2)) == list(range(6))

    def test_unknown_source_raises(self, path_graph):
        with pytest.raises(NodeNotFoundError):
            bfs_vicinity(path_graph.to_csr(), 99, 1)

    def test_matches_networkx_ego_graph(self, random_graph):
        csr = random_graph.to_csr()
        nx_graph = to_networkx(random_graph)
        for source in (0, 17, 101):
            for hops in (1, 2, 3):
                expected = set(nx.ego_graph(nx_graph, source, radius=hops).nodes())
                actual = set(int(x) for x in bfs_vicinity(csr, source, hops))
                assert actual == expected


class TestBatchBfs:
    def test_union_of_single_source_vicinities(self, random_graph):
        csr = random_graph.to_csr()
        sources = [0, 5, 10]
        expected = set()
        for source in sources:
            expected |= set(int(x) for x in bfs_vicinity(csr, source, 2))
        actual = set(int(x) for x in batch_bfs_vicinity(csr, sources, 2))
        assert actual == expected

    def test_duplicate_sources_are_harmless(self, path_graph):
        csr = path_graph.to_csr()
        result = batch_bfs_vicinity(csr, [0, 0, 1], 1)
        assert sorted(result) == [0, 1, 2]

    def test_each_node_reported_once(self, random_graph):
        csr = random_graph.to_csr()
        result = batch_bfs_vicinity(csr, range(0, 50), 2)
        assert len(result) == len(set(int(x) for x in result))


class TestBFSEngine:
    def test_counters_increase(self, random_graph):
        engine = BFSEngine(random_graph.to_csr())
        engine.vicinity(0, 2)
        engine.vicinity(1, 2)
        assert engine.bfs_calls == 2
        assert engine.nodes_scanned > 0

    def test_reset_counters(self, random_graph):
        engine = BFSEngine(random_graph.to_csr())
        engine.vicinity(0, 1)
        engine.reset_counters()
        assert engine.bfs_calls == 0

    def test_repeated_calls_are_consistent(self, random_graph):
        engine = BFSEngine(random_graph.to_csr())
        first = sorted(engine.vicinity(3, 2))
        second = sorted(engine.vicinity(3, 2))
        assert first == second

    def test_count_marked(self, path_graph):
        engine = BFSEngine(path_graph.to_csr())
        marked = np.zeros(6, dtype=bool)
        marked[[0, 3]] = True
        count, size = engine.count_marked_in_vicinity(2, 1, marked)
        assert (count, size) == (1, 3)

    def test_vicinity_size(self, star_graph):
        engine = BFSEngine(star_graph.to_csr())
        assert engine.vicinity_size(0, 1) == 6


class TestSubgraphAndDistances:
    def test_vicinity_subgraph_edges_are_induced(self, two_triangles_graph):
        csr = two_triangles_graph.to_csr()
        nodes, edges = bfs_vicinity_subgraph(csr, 0, 1)
        assert sorted(nodes) == [0, 1, 2]
        assert set(edges) == {(0, 1), (0, 2), (1, 2)}

    def test_shortest_path_lengths_match_networkx(self, random_graph):
        csr = random_graph.to_csr()
        nx_graph = to_networkx(random_graph)
        expected = nx.single_source_shortest_path_length(nx_graph, 0)
        actual = shortest_path_lengths_from(csr, 0)
        for node in range(random_graph.num_nodes):
            assert actual[node] == expected.get(node, -1)

    def test_cutoff_limits_depth(self, path_graph):
        distances = shortest_path_lengths_from(path_graph.to_csr(), 0, cutoff=2)
        assert distances[2] == 2
        assert distances[3] == -1

    def test_nodes_at_distance(self, path_graph):
        csr = path_graph.to_csr()
        assert list(nodes_at_distance(csr, 0, 3)) == [3]
        assert list(nodes_at_distance(csr, 0, 0)) == [0]

    def test_disconnected_nodes_are_minus_one(self):
        graph = erdos_renyi_graph(10, 0.0, random_state=1)
        distances = shortest_path_lengths_from(graph.to_csr(), 0)
        assert distances[0] == 0
        assert np.all(distances[1:] == -1)


class TestGroupedBfs:
    """The grouped (per-source, block-vectorised) multi-source BFS must be an
    exact drop-in for running one Python-level BFS per source."""

    @pytest.mark.parametrize("hops", [0, 1, 2, 3])
    def test_blocks_match_per_node_bfs(self, random_graph, hops):
        csr = random_graph.to_csr()
        engine = BFSEngine(csr)
        sources = np.arange(csr.num_nodes, dtype=np.int64)
        seen = 0
        # A small block size forces several blocks so the offset logic is hit.
        for offset, offsets, members in engine.grouped_vicinity_blocks(
            sources, hops, block_size=37
        ):
            block = offsets.size - 1
            for row in range(block):
                source = int(sources[offset + row])
                expected = np.sort(BFSEngine(csr).vicinity(source, hops))
                np.testing.assert_array_equal(
                    members[offsets[row]:offsets[row + 1]], expected
                )
            seen += block
        assert seen == csr.num_nodes

    @pytest.mark.parametrize("hops", [0, 1, 2])
    def test_vicinity_sizes_match_per_node_bfs(self, random_graph, hops):
        csr = random_graph.to_csr()
        engine = BFSEngine(csr)
        rng = np.random.default_rng(11)
        sources = rng.choice(csr.num_nodes, size=60, replace=False)
        grouped = engine.vicinity_sizes(sources, hops)
        looped = np.array(
            [BFSEngine(csr).vicinity(int(s), hops).size for s in sources]
        )
        np.testing.assert_array_equal(grouped, looped)

    def test_grouped_marked_counts_match_per_node_bfs(self, random_graph):
        csr = random_graph.to_csr()
        engine = BFSEngine(csr)
        rng = np.random.default_rng(13)
        sources = rng.choice(csr.num_nodes, size=40, replace=False)
        indicators = rng.random((3, csr.num_nodes)) < 0.2
        counts, sizes = engine.grouped_marked_counts(sources, 2, indicators)
        assert counts.shape == (3, sources.size)
        reference = BFSEngine(csr)
        for column, source in enumerate(sources):
            for row in range(3):
                marked, size = reference.count_marked_in_vicinity(
                    int(source), 2, indicators[row]
                )
                assert counts[row, column] == marked
                assert sizes[column] == size

    def test_duplicate_and_unsorted_sources(self, path_graph):
        engine = BFSEngine(path_graph.to_csr())
        sizes = engine.vicinity_sizes([3, 0, 3], 1)
        assert list(sizes) == [3, 2, 3]

    def test_counters_count_one_bfs_per_source(self, random_graph):
        engine = BFSEngine(random_graph.to_csr())
        engine.vicinity_sizes(np.arange(50), 1, block_size=8)
        assert engine.bfs_calls == 50
        assert engine.nodes_scanned > 0
        assert engine.edges_scanned > 0

    def test_bad_source_raises(self, path_graph):
        engine = BFSEngine(path_graph.to_csr())
        with pytest.raises(NodeNotFoundError):
            engine.vicinity_sizes([0, 99], 1)
        with pytest.raises(NodeNotFoundError):
            engine.grouped_marked_counts(
                [-1], 1, np.zeros((1, 6), dtype=bool)
            )

    def test_bad_indicator_shape_raises(self, path_graph):
        engine = BFSEngine(path_graph.to_csr())
        with pytest.raises(ValueError):
            engine.grouped_marked_counts([0], 1, np.zeros(6, dtype=bool))

    def test_empty_sources(self, path_graph):
        engine = BFSEngine(path_graph.to_csr())
        assert engine.vicinity_sizes([], 2).size == 0
        counts, sizes = engine.grouped_marked_counts(
            [], 1, np.zeros((2, 6), dtype=bool)
        )
        assert counts.shape == (2, 0)
        assert sizes.size == 0
