"""Tests for repro.graph.mutation."""

import pytest

from repro.graph.generators import erdos_renyi_graph
from repro.graph.mutation import add_random_edges, remove_random_edges, rewire_random_edges


class TestRemoveRandomEdges:
    def test_removes_requested_count(self, random_graph):
        before = random_graph.num_edges
        mutated = remove_random_edges(random_graph, 10, random_state=1)
        assert mutated.num_edges == before - 10
        assert random_graph.num_edges == before  # original untouched

    def test_in_place(self, random_graph):
        before = random_graph.num_edges
        returned = remove_random_edges(random_graph, 5, random_state=1, in_place=True)
        assert returned is random_graph
        assert random_graph.num_edges == before - 5

    def test_removing_more_than_available_empties_graph(self, path_graph):
        mutated = remove_random_edges(path_graph, 100, random_state=1)
        assert mutated.num_edges == 0

    def test_zero_count_is_noop(self, path_graph):
        assert remove_random_edges(path_graph, 0, random_state=1) == path_graph

    def test_negative_count_raises(self, path_graph):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            remove_random_edges(path_graph, -1)


class TestAddRandomEdges:
    def test_adds_requested_count(self, random_graph):
        before = random_graph.num_edges
        mutated = add_random_edges(random_graph, 25, random_state=2)
        assert mutated.num_edges == before + 25

    def test_no_self_loops_or_duplicates(self, path_graph):
        mutated = add_random_edges(path_graph, 8, random_state=3)
        edges = list(mutated.edges())
        assert len(edges) == len(set(edges))
        assert all(u != v for u, v in edges)

    def test_stops_at_complete_graph(self):
        graph = erdos_renyi_graph(5, 0.0, random_state=1)
        mutated = add_random_edges(graph, 1000, random_state=1)
        assert mutated.num_edges == 10  # complete graph on 5 nodes

    def test_original_untouched(self, path_graph):
        add_random_edges(path_graph, 3, random_state=4)
        assert path_graph.num_edges == 5


class TestRewireRandomEdges:
    def test_edge_count_preserved(self, random_graph):
        before = random_graph.num_edges
        mutated = rewire_random_edges(random_graph, 10, random_state=5)
        assert mutated.num_edges == before

    def test_structure_changes(self, random_graph):
        mutated = rewire_random_edges(random_graph, 30, random_state=6)
        assert set(mutated.edges()) != set(random_graph.edges())


class TestWithDeltas:
    def test_remove_reports_applied_deltas(self, random_graph):
        mutated, deltas = remove_random_edges(
            random_graph, 10, random_state=1, with_deltas=True
        )
        assert len(deltas) == 10
        assert all(op == "remove" for op, _, _ in deltas)
        for _, u, v in deltas:
            assert random_graph.has_edge(u, v)
            assert not mutated.has_edge(u, v)

    def test_add_reports_applied_deltas(self, random_graph):
        mutated, deltas = add_random_edges(
            random_graph, 12, random_state=2, with_deltas=True
        )
        assert len(deltas) == 12
        assert all(op == "add" for op, _, _ in deltas)
        for _, u, v in deltas:
            assert not random_graph.has_edge(u, v)
            assert mutated.has_edge(u, v)

    def test_rewire_interleaves_remove_and_add(self, random_graph):
        mutated, deltas = rewire_random_edges(
            random_graph, 4, random_state=3, with_deltas=True
        )
        assert [op for op, _, _ in deltas] == ["remove", "add"] * 4
        assert mutated.num_edges == random_graph.num_edges

    def test_deltas_replay_to_same_graph(self, random_graph):
        """The reported deltas reproduce the mutation when replayed."""
        mutated, deltas = rewire_random_edges(
            random_graph, 6, random_state=4, with_deltas=True
        )
        replayed = random_graph.copy()
        for op, u, v in deltas:
            if op == "add":
                replayed.add_edge(u, v)
            else:
                replayed.remove_edge(u, v)
        assert replayed == mutated

    def test_default_return_shape_unchanged(self, random_graph):
        from repro.graph.adjacency import Graph

        assert isinstance(remove_random_edges(random_graph, 1, random_state=1), Graph)
        assert isinstance(add_random_edges(random_graph, 1, random_state=1), Graph)
