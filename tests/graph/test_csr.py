"""Tests for repro.graph.csr."""

import numpy as np
import pytest

from repro.exceptions import GraphError, NodeNotFoundError
from repro.graph.csr import CSRGraph


class TestConstruction:
    def test_from_edges(self):
        csr = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert csr.num_nodes == 4
        assert csr.num_edges == 3

    def test_from_edges_deduplicates(self):
        csr = CSRGraph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert csr.num_edges == 1

    def test_from_edges_rejects_self_loop(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(3, [(1, 1)])

    def test_from_edges_rejects_unknown_node(self):
        with pytest.raises(NodeNotFoundError):
            CSRGraph.from_edges(2, [(0, 5)])

    def test_from_adjacency(self):
        csr = CSRGraph.from_adjacency([{1}, {0, 2}, {1}])
        assert csr.num_edges == 2
        assert list(csr.neighbors(1)) == [0, 2]

    def test_from_adjacency_accepts_generators(self):
        """Regression: one-shot neighbour iterables used to be consumed by a
        discarded degree pass, silently producing an edgeless graph."""
        sets = [{1}, {0, 2}, {1}]
        csr = CSRGraph.from_adjacency([iter(neigh) for neigh in sets])
        assert csr.num_edges == 2
        assert list(csr.neighbors(1)) == [0, 2]
        generators = ((node for node in neigh) for neigh in sets)
        csr = CSRGraph.from_adjacency(list(generators))
        assert csr.num_edges == 2

    def test_invalid_indptr_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([1, 2]), np.array([0, 1]))

    def test_indptr_indices_mismatch_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2]), np.array([1]))

    def test_empty_graph(self):
        csr = CSRGraph.from_edges(0, [])
        assert csr.num_nodes == 0
        assert csr.num_edges == 0


class TestQueries:
    @pytest.fixture
    def csr(self, two_triangles_graph):
        return two_triangles_graph.to_csr()

    def test_neighbors_sorted(self, csr):
        assert list(csr.neighbors(2)) == [0, 1, 3]

    def test_degree_and_degrees(self, csr):
        assert csr.degree(2) == 3
        assert np.array_equal(csr.degrees(), np.array([2, 2, 3, 3, 2, 2]))

    def test_has_edge(self, csr):
        assert csr.has_edge(2, 3)
        assert not csr.has_edge(0, 5)

    def test_has_edge_unknown_node(self, csr):
        with pytest.raises(NodeNotFoundError):
            csr.has_edge(0, 10)

    def test_edges_each_once(self, csr, two_triangles_graph):
        assert set(csr.edges()) == set(two_triangles_graph.edges())

    def test_to_graph_round_trip(self, csr, two_triangles_graph):
        assert csr.to_graph() == two_triangles_graph

    def test_repr(self, csr):
        assert "CSRGraph" in repr(csr)


class TestConsistencyWithAdjacency:
    def test_random_graph_round_trip(self, random_graph):
        csr = random_graph.to_csr()
        assert csr.num_edges == random_graph.num_edges
        for node in range(0, random_graph.num_nodes, 17):
            assert set(int(x) for x in csr.neighbors(node)) == random_graph.neighbors(node)


class TestApplyEdgeDeltas:
    @pytest.fixture
    def csr(self, two_triangles_graph):
        return two_triangles_graph.to_csr()

    def test_add_and_remove(self, csr):
        patched = csr.apply_edge_deltas(added=[(0, 5)], removed=[(2, 3)])
        assert patched.has_edge(0, 5)
        assert not patched.has_edge(2, 3)
        assert patched.num_edges == csr.num_edges
        # Original is untouched (CSR is immutable).
        assert not csr.has_edge(0, 5)
        assert csr.has_edge(2, 3)

    def test_empty_delta_returns_self(self, csr):
        assert csr.apply_edge_deltas() is csr

    def test_matches_full_rebuild(self, random_graph):
        csr = random_graph.to_csr()
        edges = list(random_graph.edges())
        removed = edges[::7][:10]
        candidates = [
            (u, v)
            for u in range(0, 60, 3)
            for v in range(u + 1, 60, 5)
            if not csr.has_edge(u, v)
        ][:10]
        patched = csr.apply_edge_deltas(added=candidates, removed=removed)
        reference = random_graph.copy()
        for u, v in removed:
            reference.remove_edge(u, v)
        for u, v in candidates:
            reference.add_edge(u, v)
        expected = reference.to_csr()
        np.testing.assert_array_equal(patched.indptr, expected.indptr)
        np.testing.assert_array_equal(patched.indices, expected.indices)

    def test_rejects_duplicate_add(self, csr):
        from repro.exceptions import EdgeError

        with pytest.raises(EdgeError):
            csr.apply_edge_deltas(added=[(2, 3)])

    def test_rejects_missing_remove(self, csr):
        from repro.exceptions import EdgeError

        with pytest.raises(EdgeError):
            csr.apply_edge_deltas(removed=[(0, 5)])

    def test_rejects_self_loop_and_unknown_node(self, csr):
        from repro.exceptions import GraphError

        with pytest.raises(GraphError):
            csr.apply_edge_deltas(added=[(1, 1)])
        with pytest.raises(NodeNotFoundError):
            csr.apply_edge_deltas(added=[(0, 99)])
