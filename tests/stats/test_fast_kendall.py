"""Property tests pitting the O(n log n) kernels against the O(n²) oracle.

The contract under test (ISSUE 4 acceptance): the merge-sort kernel matches
the naive sign-matrix kernel as an *exact integer* on arbitrary inputs —
tie-heavy, constant, duplicated — and the Fenwick weighted kernel matches the
naive weighted kernel to float round-off, including zero and duplicate
importance weights.
"""

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.stats.fast_kendall import (
    DEFAULT_CROSSOVER,
    KERNELS,
    concordance_counts,
    concordance_sum,
    count_inversions,
    dense_ranks,
    fenwick_weighted_concordance,
    merge_concordance_sum,
    naive_concordance_sum,
    naive_weighted_concordance,
    resolve_kernel,
    weighted_concordance,
)
from repro.stats.kendall import (
    kendall_tau_a,
    kendall_tau_b,
    pair_concordance_sum,
    weighted_pair_concordance,
)


def brute_force_counts(x, y):
    concordant = discordant = tied = 0
    n = len(x)
    for i in range(n):
        for j in range(i + 1, n):
            product = (x[i] - x[j]) * (y[i] - y[j])
            if product > 0:
                concordant += 1
            elif product < 0:
                discordant += 1
            else:
                tied += 1
    return concordant, discordant, tied


def random_vector_pairs(rng, sizes, trials_per_size=6):
    """Adversarial vector generator: heavy ties, constants, duplicates."""
    for n in sizes:
        for trial in range(trials_per_size):
            kind = trial % 6
            if kind == 0:  # continuous, tie-free
                yield rng.random(n), rng.random(n)
            elif kind == 1:  # heavy ties in both
                yield (
                    rng.integers(0, 3, n).astype(float),
                    rng.integers(0, 3, n).astype(float),
                )
            elif kind == 2:  # one constant vector
                yield np.full(n, 7.0), rng.integers(0, 4, n).astype(float)
            elif kind == 3:  # both constant
                yield np.zeros(n), np.zeros(n)
            elif kind == 4:  # binary vs many-valued
                yield (
                    rng.integers(0, 2, n).astype(float),
                    rng.integers(0, max(2, n), n).astype(float),
                )
            else:  # sorted with duplicated blocks (joint-tie stress)
                base = np.sort(rng.integers(0, max(2, n // 2), n)).astype(float)
                yield base, base.copy()


SIZES = (2, 3, 5, 17, 64, DEFAULT_CROSSOVER - 1, DEFAULT_CROSSOVER, 300)


class TestMergeKernel:
    def test_exact_integer_match_with_naive(self, rng):
        for x, y in random_vector_pairs(rng, SIZES):
            fast = merge_concordance_sum(x, y)
            naive = naive_concordance_sum(x, y)
            assert isinstance(fast, int)
            assert fast == naive

    def test_matches_brute_force(self, rng):
        for x, y in random_vector_pairs(rng, (2, 5, 11, 24)):
            c, d, _ = brute_force_counts(x, y)
            assert merge_concordance_sum(x, y) == c - d

    def test_perfect_orders(self):
        x = np.arange(10, dtype=float)
        assert merge_concordance_sum(x, x) == 45
        assert merge_concordance_sum(x, -x) == -45

    def test_counts_match_brute_force(self, rng):
        for x, y in random_vector_pairs(rng, (2, 4, 9, 30)):
            assert concordance_counts(x, y) == brute_force_counts(x, y)

    def test_counts_partition_all_pairs(self, rng):
        for x, y in random_vector_pairs(rng, (50,)):
            c, d, t = concordance_counts(x, y)
            assert c + d + t == 50 * 49 // 2


class TestFenwickKernel:
    def test_matches_naive_with_random_weights(self, rng):
        for x, y in random_vector_pairs(rng, SIZES):
            weights = rng.random(x.size) * 10
            fast_num, fast_den = fenwick_weighted_concordance(x, y, weights)
            naive_num, naive_den = naive_weighted_concordance(x, y, weights)
            scale = max(1.0, abs(naive_den))
            assert fast_num == pytest.approx(naive_num, rel=1e-9, abs=1e-9 * scale)
            assert fast_den == pytest.approx(naive_den, rel=1e-9, abs=1e-9 * scale)

    def test_zero_and_duplicate_weights(self, rng):
        for x, y in random_vector_pairs(rng, (5, 40, 200)):
            weights = rng.choice([0.0, 0.0, 1.0, 2.5, 2.5], size=x.size)
            fast_num, fast_den = fenwick_weighted_concordance(x, y, weights)
            naive_num, naive_den = naive_weighted_concordance(x, y, weights)
            scale = max(1.0, abs(naive_den))
            assert fast_num == pytest.approx(naive_num, rel=1e-9, abs=1e-9 * scale)
            assert fast_den == pytest.approx(naive_den, rel=1e-9, abs=1e-9 * scale)

    def test_integer_weights_are_exact(self, rng):
        """With integral weights every product is exact in float64, so the
        two kernels must agree exactly, not just to round-off."""
        for x, y in random_vector_pairs(rng, (30, 120)):
            weights = rng.integers(0, 5, size=x.size).astype(float)
            assert fenwick_weighted_concordance(x, y, weights) == (
                naive_weighted_concordance(x, y, weights)
            )

    def test_unit_weights_reduce_to_plain_s(self, rng):
        x, y = rng.random(150), rng.random(150)
        numerator, denominator = fenwick_weighted_concordance(x, y, np.ones(150))
        assert numerator == pytest.approx(merge_concordance_sum(x, y))
        assert denominator == pytest.approx(150 * 149 / 2)


class TestInversionsAndRanks:
    def test_count_inversions_brute_force(self, rng):
        for _ in range(20):
            values = rng.integers(0, 6, size=int(rng.integers(2, 40)))
            expected = sum(
                1
                for i in range(values.size)
                for j in range(i + 1, values.size)
                if values[i] > values[j]
            )
            assert count_inversions(values) == expected

    def test_count_inversions_edge_cases(self):
        assert count_inversions(np.array([1])) == 0
        assert count_inversions(np.array([], dtype=np.int64)) == 0
        assert count_inversions(np.array([3, 2, 1])) == 3
        assert count_inversions(np.array([2.5, 2.5, 2.5])) == 0

    def test_dense_ranks_preserve_order_and_ties(self, rng):
        values = rng.choice([0.1, 0.2, 0.2, 5.0, -3.0], size=30)
        ranks = dense_ranks(values)
        sign_values = np.sign(values[:, None] - values[None, :])
        sign_ranks = np.sign(ranks[:, None] - ranks[None, :])
        assert np.array_equal(sign_values, sign_ranks)


class TestDispatchFacade:
    def test_resolve_kernel(self):
        assert resolve_kernel("naive", 10**6) == "naive"
        assert resolve_kernel("fast", 2) == "fast"
        assert resolve_kernel("auto", DEFAULT_CROSSOVER - 1) == "naive"
        assert resolve_kernel("auto", DEFAULT_CROSSOVER) == "fast"
        assert resolve_kernel("auto", 10, crossover=5) == "fast"
        assert resolve_kernel("auto", 10, crossover=50) == "naive"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(EstimationError):
            resolve_kernel("blas", 100)
        with pytest.raises(EstimationError):
            concordance_sum([1.0, 2.0], [1.0, 2.0], kernel="blas")

    def test_kernels_tuple(self):
        assert KERNELS == ("auto", "naive", "fast")

    def test_facades_agree_across_kernels(self, rng):
        x = rng.integers(0, 4, 250).astype(float)
        y = rng.integers(0, 4, 250).astype(float)
        weights = rng.random(250)
        expected = naive_concordance_sum(x, y)
        for kernel in KERNELS:
            assert concordance_sum(x, y, kernel=kernel) == expected
            assert pair_concordance_sum(x, y, kernel=kernel) == expected
        naive_num, naive_den = weighted_concordance(x, y, weights, kernel="naive")
        fast_num, fast_den = weighted_concordance(x, y, weights, kernel="fast")
        scale = max(1.0, abs(naive_den))
        assert fast_num == pytest.approx(naive_num, abs=1e-9 * scale)
        assert fast_den == pytest.approx(naive_den, abs=1e-9 * scale)
        wrapped = weighted_pair_concordance(x, y, weights, kernel="fast")
        assert wrapped == (fast_num, fast_den)

    def test_tau_a_and_tau_b_kernel_invariant(self, rng):
        for x, y in random_vector_pairs(rng, (3, 40, 230)):
            assert kendall_tau_a(x, y, kernel="fast") == kendall_tau_a(
                x, y, kernel="naive"
            )
            assert kendall_tau_b(x, y, kernel="fast") == kendall_tau_b(
                x, y, kernel="naive"
            )

    def test_validation_still_enforced(self):
        with pytest.raises(EstimationError):
            concordance_sum([1.0], [1.0])
        with pytest.raises(EstimationError):
            concordance_sum([1.0, 2.0], [1.0, 2.0, 3.0])
        with pytest.raises(EstimationError):
            weighted_pair_concordance([1, 2], [1, 2], [-1.0, 1.0], kernel="fast")
