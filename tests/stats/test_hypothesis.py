"""Tests for repro.stats.hypothesis."""

import pytest

from repro.exceptions import EstimationError
from repro.stats.hypothesis import CorrelationVerdict, decide


class TestDecide:
    def test_large_positive_z_two_sided(self):
        result = decide(5.0)
        assert result.verdict is CorrelationVerdict.POSITIVE
        assert result.significant

    def test_large_negative_z_two_sided(self):
        result = decide(-5.0)
        assert result.verdict is CorrelationVerdict.NEGATIVE

    def test_small_z_is_independent(self):
        result = decide(0.5)
        assert result.verdict is CorrelationVerdict.INDEPENDENT
        assert not result.significant

    def test_one_sided_greater_ignores_negative(self):
        assert decide(-10.0, alternative="greater").verdict is CorrelationVerdict.INDEPENDENT
        assert decide(3.0, alternative="greater").verdict is CorrelationVerdict.POSITIVE

    def test_one_sided_less_ignores_positive(self):
        assert decide(10.0, alternative="less").verdict is CorrelationVerdict.INDEPENDENT
        assert decide(-3.0, alternative="less").verdict is CorrelationVerdict.NEGATIVE

    def test_alpha_threshold_behaviour(self):
        borderline = 1.8
        assert decide(borderline, alpha=0.05, alternative="greater").significant
        assert not decide(borderline, alpha=0.01, alternative="greater").significant

    def test_result_fields(self):
        result = decide(2.5, alpha=0.05, alternative="greater")
        assert result.z_score == 2.5
        assert result.alpha == 0.05
        assert result.alternative == "greater"
        assert 0.0 <= result.p_value <= 1.0

    def test_invalid_alpha(self):
        with pytest.raises(EstimationError):
            decide(1.0, alpha=0.0)

    def test_verdict_str(self):
        assert str(CorrelationVerdict.POSITIVE) == "positive"
