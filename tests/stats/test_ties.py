"""Tests for repro.stats.ties (Eq. 5 and Eq. 6)."""

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.stats.ties import (
    degenerate_ties,
    null_variance_no_ties,
    null_variance_numerator_with_ties,
    tie_corrected_sigma,
    tie_group_sizes,
)


class TestTieGroupSizes:
    def test_no_ties(self):
        assert tie_group_sizes([1.0, 2.0, 3.0]) == []

    def test_groups(self):
        assert sorted(tie_group_sizes([1, 1, 2, 2, 2, 3])) == [2, 3]

    def test_all_tied(self):
        assert tie_group_sizes([5, 5, 5, 5]) == [4]

    def test_empty(self):
        assert tie_group_sizes([]) == []

    def test_two_dimensional_rejected(self):
        with pytest.raises(EstimationError):
            tie_group_sizes(np.zeros((2, 2)))


class TestNullVarianceNoTies:
    def test_paper_formula(self):
        n = 900
        assert null_variance_no_ties(n) == pytest.approx(2 * (2 * n + 5) / (9 * n * (n - 1)))

    def test_decreases_with_n(self):
        assert null_variance_no_ties(100) > null_variance_no_ties(1000)

    def test_small_n_rejected(self):
        with pytest.raises(EstimationError):
            null_variance_no_ties(1)


class TestNullVarianceWithTies:
    def test_no_ties_reduces_to_eq5_scaled(self):
        n = 50
        pairs = 0.5 * n * (n - 1)
        expected = null_variance_no_ties(n) * pairs**2
        assert null_variance_numerator_with_ties(n, [], []) == pytest.approx(expected)

    def test_ties_reduce_variance(self):
        n = 50
        without = null_variance_numerator_with_ties(n, [], [])
        with_ties = null_variance_numerator_with_ties(n, [10, 5], [8])
        assert with_ties < without

    def test_larger_ties_reduce_more(self):
        n = 60
        small = null_variance_numerator_with_ties(n, [5], [5])
        large = null_variance_numerator_with_ties(n, [30], [30])
        assert large < small

    def test_tie_larger_than_n_rejected(self):
        with pytest.raises(EstimationError):
            null_variance_numerator_with_ties(10, [11], [])

    def test_non_positive_tie_rejected(self):
        with pytest.raises(EstimationError):
            null_variance_numerator_with_ties(10, [0], [])

    def test_variance_positive_for_partial_ties(self):
        assert null_variance_numerator_with_ties(30, [10, 10], [15]) > 0


class TestTieCorrectedSigma:
    def test_matches_manual_computation(self, rng):
        x = rng.integers(0, 3, size=40).astype(float)
        y = rng.integers(0, 3, size=40).astype(float)
        sigma = tie_corrected_sigma(x, y)
        expected = np.sqrt(
            null_variance_numerator_with_ties(40, tie_group_sizes(x), tie_group_sizes(y))
        )
        assert sigma == pytest.approx(expected)

    def test_z_scores_are_standard_normal_under_null(self, rng):
        """Monte-Carlo check of the asymptotic normality claim (Section 3.1)."""
        from repro.stats.kendall import pair_concordance_sum

        n = 60
        z_scores = []
        for _ in range(300):
            x = rng.random(n)
            y = rng.random(n)
            s = pair_concordance_sum(x, y)
            z_scores.append(s / tie_corrected_sigma(x, y))
        z_scores = np.array(z_scores)
        assert abs(z_scores.mean()) < 0.2
        assert 0.8 < z_scores.std() < 1.2

    def test_length_mismatch_rejected(self):
        with pytest.raises(EstimationError):
            tie_corrected_sigma([1, 2], [1, 2, 3])


class TestDegenerateTies:
    def test_constant_vector_is_degenerate(self):
        assert degenerate_ties([1, 1, 1], [1, 2, 3])
        assert degenerate_ties([1, 2, 3], [0, 0, 0])

    def test_varying_vectors_not_degenerate(self):
        assert not degenerate_ties([1, 2, 2], [3, 3, 4])
