"""Tests for repro.stats.normal."""

import pytest
from scipy import stats as scipy_stats

from repro.exceptions import EstimationError
from repro.stats.normal import critical_z, normal_cdf, normal_sf, z_to_p_value


class TestNormalFunctions:
    @pytest.mark.parametrize("z", [-3.0, -1.0, 0.0, 0.5, 2.33, 4.0])
    def test_cdf_matches_scipy(self, z):
        assert normal_cdf(z) == pytest.approx(scipy_stats.norm.cdf(z), abs=1e-12)

    @pytest.mark.parametrize("z", [-3.0, 0.0, 1.96, 5.0])
    def test_sf_matches_scipy(self, z):
        assert normal_sf(z) == pytest.approx(scipy_stats.norm.sf(z), abs=1e-12)

    def test_cdf_plus_sf_is_one(self):
        assert normal_cdf(1.3) + normal_sf(1.3) == pytest.approx(1.0)


class TestZToPValue:
    def test_two_sided_symmetry(self):
        assert z_to_p_value(2.0) == pytest.approx(z_to_p_value(-2.0))

    def test_one_sided_greater(self):
        assert z_to_p_value(2.33, "greater") == pytest.approx(0.0099, abs=1e-3)

    def test_one_sided_less(self):
        assert z_to_p_value(-2.33, "less") == pytest.approx(0.0099, abs=1e-3)

    def test_zero_z_two_sided_is_one(self):
        assert z_to_p_value(0.0) == pytest.approx(1.0)

    def test_invalid_alternative(self):
        with pytest.raises(EstimationError):
            z_to_p_value(1.0, "sideways")

    def test_paper_threshold_correspondence(self):
        """The paper notes z > 2.33 corresponds to one-tailed p < 0.01."""
        assert z_to_p_value(2.34, "greater") < 0.01
        assert z_to_p_value(2.32, "greater") > 0.009


class TestCriticalZ:
    def test_two_sided_05(self):
        assert critical_z(0.05) == pytest.approx(1.959964, abs=1e-4)

    def test_one_sided_05(self):
        assert critical_z(0.05, "greater") == pytest.approx(1.644854, abs=1e-4)

    def test_invalid_alpha(self):
        with pytest.raises(EstimationError):
            critical_z(1.5)

    def test_invalid_alternative(self):
        with pytest.raises(EstimationError):
            critical_z(0.05, "nope")
