"""Tests for repro.stats.kendall, cross-checked against scipy and brute force."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.exceptions import EstimationError
from repro.stats.kendall import (
    concordance_matrix,
    kendall_tau_a,
    kendall_tau_b,
    pair_concordance_sum,
    weighted_pair_concordance,
)


def brute_force_s(x, y):
    s = 0
    n = len(x)
    for i in range(n):
        for j in range(i + 1, n):
            product = (x[i] - x[j]) * (y[i] - y[j])
            s += 1 if product > 0 else (-1 if product < 0 else 0)
    return s


class TestPairConcordanceSum:
    def test_perfect_agreement(self):
        x = [1, 2, 3, 4]
        assert pair_concordance_sum(x, x) == 6

    def test_perfect_disagreement(self):
        assert pair_concordance_sum([1, 2, 3, 4], [4, 3, 2, 1]) == -6

    def test_matches_brute_force_with_ties(self, rng):
        for _ in range(10):
            x = rng.integers(0, 5, size=20).astype(float)
            y = rng.integers(0, 5, size=20).astype(float)
            assert pair_concordance_sum(x, y) == brute_force_s(x, y)

    def test_single_observation_raises(self):
        with pytest.raises(EstimationError):
            pair_concordance_sum([1.0], [2.0])

    def test_length_mismatch_raises(self):
        with pytest.raises(EstimationError):
            pair_concordance_sum([1, 2], [1, 2, 3])


class TestConcordanceMatrix:
    def test_symmetry_and_diagonal(self):
        matrix = concordance_matrix([1.0, 2.0, 3.0], [1.0, 3.0, 2.0])
        assert np.array_equal(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)

    def test_values_in_range(self, rng):
        matrix = concordance_matrix(rng.random(10), rng.random(10))
        assert set(np.unique(matrix)).issubset({-1, 0, 1})


class TestKendallTauA:
    def test_range(self, rng):
        x, y = rng.random(30), rng.random(30)
        assert -1.0 <= kendall_tau_a(x, y) <= 1.0

    def test_perfect_correlation(self):
        x = np.arange(10, dtype=float)
        assert kendall_tau_a(x, x) == 1.0
        assert kendall_tau_a(x, -x) == -1.0

    def test_matches_scipy_without_ties(self, rng):
        x = rng.permutation(25).astype(float)
        y = rng.permutation(25).astype(float)
        expected = scipy_stats.kendalltau(x, y, variant="b").statistic
        assert kendall_tau_a(x, y) == pytest.approx(expected)


class TestKendallTauB:
    def test_matches_scipy_with_ties(self, rng):
        for _ in range(10):
            x = rng.integers(0, 4, size=30).astype(float)
            y = rng.integers(0, 4, size=30).astype(float)
            expected = scipy_stats.kendalltau(x, y, variant="b").statistic
            assert kendall_tau_b(x, y) == pytest.approx(expected, abs=1e-12)

    def test_constant_vector_returns_zero(self):
        assert kendall_tau_b([1, 1, 1], [1, 2, 3]) == 0.0

    def test_binary_vectors(self):
        x = np.array([1, 1, 0, 0], dtype=float)
        y = np.array([1, 0, 1, 0], dtype=float)
        expected = scipy_stats.kendalltau(x, y, variant="b").statistic
        assert kendall_tau_b(x, y) == pytest.approx(expected)


class TestWeightedPairConcordance:
    def test_unit_weights_reduce_to_plain(self, rng):
        x, y = rng.random(15), rng.random(15)
        numerator, denominator = weighted_pair_concordance(x, y, np.ones(15))
        assert numerator == pytest.approx(pair_concordance_sum(x, y))
        assert denominator == pytest.approx(15 * 14 / 2)

    def test_weighted_ratio_in_range(self, rng):
        x, y = rng.random(20), rng.random(20)
        weights = rng.random(20) + 0.1
        numerator, denominator = weighted_pair_concordance(x, y, weights)
        assert -1.0 <= numerator / denominator <= 1.0

    def test_negative_weight_rejected(self):
        with pytest.raises(EstimationError):
            weighted_pair_concordance([1, 2], [1, 2], [-1.0, 1.0])

    def test_matches_brute_force(self, rng):
        x = rng.random(12)
        y = rng.random(12)
        weights = rng.random(12) + 0.5
        numerator, denominator = weighted_pair_concordance(x, y, weights)
        expected_numerator = 0.0
        expected_denominator = 0.0
        for i in range(12):
            for j in range(i + 1, 12):
                product = (x[i] - x[j]) * (y[i] - y[j])
                sign = 1 if product > 0 else (-1 if product < 0 else 0)
                expected_numerator += sign * weights[i] * weights[j]
                expected_denominator += weights[i] * weights[j]
        assert numerator == pytest.approx(expected_numerator)
        assert denominator == pytest.approx(expected_denominator)
