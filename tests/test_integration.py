"""End-to-end integration tests across the whole library.

These tests wire the full pipeline together the way a user of the library
would: generate a dataset, run TESC with several samplers, compare against
the baselines, and round-trip through the file formats and CLI-facing APIs.
"""

import pytest

from repro import AttributedGraph, CorrelationVerdict, TescConfig, TescTester, measure_tesc
from repro.baselines import ProximityPatternMiner, transaction_correlation
from repro.core.estimators import exact_tau
from repro.core.density import DensityComputer
from repro.datasets import make_dblp_like, make_intrusion_like
from repro.graph.io import read_edge_list, read_event_file, write_edge_list, write_event_file
from repro.sampling.batch_bfs import ExhaustiveSampler


@pytest.fixture(scope="module")
def dblp():
    return make_dblp_like(
        num_communities=10, community_size=70, num_positive_pairs=2,
        num_negative_pairs=2, num_background_keywords=2, random_state=99,
    )


class TestEndToEndOnDblpLike:
    def test_planted_pairs_detected_with_every_sampler(self, dblp):
        event_a, event_b = dblp.positive_pairs[0]
        for sampler in ("batch_bfs", "importance", "batch_importance", "whole_graph"):
            result = measure_tesc(
                dblp.attributed, event_a, event_b,
                vicinity_level=1, sampler=sampler, sample_size=200, random_state=5,
            )
            assert result.verdict is CorrelationVerdict.POSITIVE, sampler

    def test_sampled_estimate_close_to_exhaustive_tau(self, dblp):
        event_a, event_b = dblp.positive_pairs[0]
        exhaustive = measure_tesc(
            dblp.attributed, event_a, event_b,
            vicinity_level=1, sampler="exhaustive", sample_size=1, random_state=1,
        )
        sampled = measure_tesc(
            dblp.attributed, event_a, event_b,
            vicinity_level=1, sampler="batch_bfs", sample_size=300, random_state=1,
        )
        assert sampled.score == pytest.approx(exhaustive.score, abs=0.15)

    def test_tesc_and_tc_disagree_on_negative_pairs(self, dblp):
        event_a, event_b = dblp.negative_pairs[0]
        tesc = measure_tesc(
            dblp.attributed, event_a, event_b,
            vicinity_level=1, sample_size=250, random_state=2,
        )
        tc = transaction_correlation(dblp.attributed.events, event_a, event_b)
        assert tesc.verdict is CorrelationVerdict.NEGATIVE
        assert tc.z_score > tesc.z_score

    def test_file_round_trip_preserves_test_result(self, dblp, tmp_path):
        edges_path = tmp_path / "graph.txt"
        events_path = tmp_path / "events.txt"
        write_edge_list(dblp.graph, str(edges_path))
        event_a, event_b = dblp.positive_pairs[0]
        write_event_file(
            {
                event_a: dblp.attributed.event_nodes(event_a).tolist(),
                event_b: dblp.attributed.event_nodes(event_b).tolist(),
            },
            str(events_path),
        )
        graph, labels = read_edge_list(str(edges_path))
        label_to_id = {label: index for index, label in enumerate(labels)}
        events = read_event_file(str(events_path), label_to_id=label_to_id)
        # Node ids may be permuted by the round trip, but the verdict and the
        # approximate strength of the correlation must survive.
        reloaded = AttributedGraph(graph, events)
        original = measure_tesc(dblp.attributed, event_a, event_b, vicinity_level=1,
                                sample_size=200, random_state=7)
        recovered = measure_tesc(reloaded, event_a, event_b, vicinity_level=1,
                                 sample_size=200, random_state=7)
        assert recovered.verdict is original.verdict

    def test_exhaustive_sampler_matches_manual_tau(self, dblp):
        event_a, event_b = dblp.positive_pairs[1]
        attributed = dblp.attributed
        sampler = ExhaustiveSampler(attributed.csr, random_state=1)
        sample = sampler.sample(attributed.event_union(event_a, event_b), 1)
        computer = DensityComputer(attributed.csr)
        densities_a, densities_b = computer.density_vectors(
            sample.nodes,
            attributed.event_indicator(event_a),
            attributed.event_indicator(event_b),
            1,
        )
        manual_tau = exact_tau(densities_a, densities_b)
        result = measure_tesc(attributed, event_a, event_b, vicinity_level=1,
                              sampler="exhaustive", sample_size=1)
        assert result.score == pytest.approx(manual_tau)


class TestEndToEndOnIntrusionLike:
    def test_rare_pair_story(self):
        dataset = make_intrusion_like(num_subnets=60, subnet_size=30, random_state=17)
        attributed = dataset.attributed
        tester = TescTester(attributed, TescConfig(sample_size=250, random_state=3,
                                                   alternative="greater"))
        miner = ProximityPatternMiner(attributed, minsup=10 / attributed.num_nodes)
        detected_by_tesc = 0
        missed_by_pfp = 0
        for event_a, event_b in dataset.rare_pairs:
            result = tester.test(event_a, event_b)
            if result.significant:
                detected_by_tesc += 1
            if not miner.discovers_pair(event_a, event_b):
                missed_by_pfp += 1
        assert detected_by_tesc >= 1
        assert missed_by_pfp == len(dataset.rare_pairs)
