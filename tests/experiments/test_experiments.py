"""Tests for the experiment harness (tiny configurations).

Each experiment is exercised at a deliberately small scale so the whole file
runs in tens of seconds; the full paper-shape runs live in ``benchmarks/``.
"""

import pytest

from repro.experiments import (
    Figure5Config,
    Figure7Config,
    Figure8Config,
    Figure9Config,
    Figure10Config,
    Table1Config,
    Table2Config,
    Table3Config,
    Table4Config,
    Table5Config,
    run_figure5,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.runner import available_experiments, render_report, run_experiment
from repro.exceptions import ExperimentError


TINY_DBLP = dict(num_communities=8, community_size=60, event_size=100,
                 num_pairs=2, sample_size=100)


class TestRunner:
    def test_available_experiments_cover_all_tables_and_figures(self):
        expected = {f"figure{i}" for i in range(5, 11)} | {f"table{i}" for i in range(1, 6)}
        assert set(available_experiments()) == expected

    def test_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError):
            run_experiment("figure99")

    def test_config_object_and_overrides_are_exclusive(self):
        with pytest.raises(ExperimentError):
            run_experiment("table1", Table1Config(), sample_size=10)

    def test_render_report_markdown(self):
        result = run_table3(Table3Config(num_subnets=40, subnet_size=15, sample_size=100))
        report = render_report([result], markdown=True)
        assert "table3" in report
        assert "|" in report


class TestFigureExperiments:
    def test_figure5_recall_at_zero_noise_is_high(self):
        config = Figure5Config(levels=(1,), noise_grids={1: (0.0, 0.3)},
                               samplers=("batch_bfs",), **TINY_DBLP)
        result = run_figure5(config)
        table = result.tables["h=1 (positive pairs)"]
        zero_noise_recall = float(table.rows[0][1])
        high_noise_recall = float(table.rows[1][1])
        assert zero_noise_recall >= 0.5
        assert high_noise_recall <= zero_noise_recall

    def test_figure7_produces_one_row_per_batch_size(self):
        config = Figure7Config(batch_sizes=(1, 10),
                               configurations=(("positive", 2, 0.0),), **TINY_DBLP)
        result = run_figure7(config)
        assert len(result.tables["recall vs batch size"]) == 2

    def test_figure8_has_removal_and_addition_tables(self):
        config = Figure8Config(levels=(1,), removal_fractions=(0.0, 0.5),
                               addition_fractions=(0.0, 3.0), **TINY_DBLP)
        result = run_figure8(config)
        assert len(result.tables) == 2

    def test_figure9_batch_bfs_time_grows_with_event_set(self):
        config = Figure9Config(num_nodes=4000, event_set_sizes=(100, 1500),
                               levels=(1,), samplers=("batch_bfs", "importance"),
                               sample_size=100, repetitions=1)
        result = run_figure9(config)
        table = result.tables["h=1"]
        small = float(table.rows[0][1])
        large = float(table.rows[1][1])
        assert large >= small

    def test_figure10_tables_have_expected_shape(self):
        config = Figure10Config(graph_sizes=(2000,), levels=(1, 2),
                                bfs_repetitions=5, reference_node_counts=(100, 300),
                                zscore_repetitions=2)
        result = run_figure10(config)
        assert len(result.tables["(a) one h-hop BFS vs graph size"]) == 1
        z_table = result.tables["(b) z-score computation vs number of reference nodes"]
        assert float(z_table.rows[1][1]) >= float(z_table.rows[0][1])


class TestTableExperiments:
    def test_table1_all_pairs_positive(self):
        result = run_table1(Table1Config(num_communities=12, community_size=60,
                                         num_pairs=2, sample_size=150))
        table = result.tables["1-hop positive keyword pairs"]
        for row in table.rows:
            assert float(row[2]) > 0  # h=1 z-score

    def test_table2_all_pairs_negative(self):
        result = run_table2(Table2Config(num_communities=12, community_size=60,
                                         num_pairs=2, sample_size=150))
        table = result.tables["3-hop negative keyword pairs"]
        for row in table.rows:
            assert float(row[2]) < 0  # h=1 z-score is negative

    def test_table3_positive_tesc_flat_tc(self):
        result = run_table3(Table3Config(num_subnets=50, subnet_size=25,
                                         num_pairs=3, sample_size=150))
        table = result.tables["1-hop positive alert pairs"]
        z_scores = [float(row[2]) for row in table.rows]
        tc_scores = [float(row[3]) for row in table.rows]
        assert max(z_scores) > 2.0
        assert all(tc < 2.0 for tc in tc_scores)

    def test_table4_negative_tesc(self):
        result = run_table4(Table4Config(num_subnets=50, subnet_size=25,
                                         num_pairs=3, sample_size=150))
        table = result.tables["2-hop negative alert pairs"]
        assert all(float(row[2]) < -2.0 for row in table.rows)

    def test_table5_rare_pairs_missed_by_pfp(self):
        result = run_table5(Table5Config(num_subnets=50, subnet_size=25, sample_size=150))
        table = result.tables["rare positive alert pairs"]
        assert all(row[4] == "no" for row in table.rows)

    def test_result_render_contains_tables(self):
        result = run_table5(Table5Config(num_subnets=50, subnet_size=25, sample_size=100))
        rendered = result.render()
        assert "rare positive alert pairs" in rendered
        assert isinstance(result, ExperimentResult)
