"""Thin setup shim.

All project metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in editable mode on environments whose pip cannot
build PEP 660 editable wheels offline (no ``wheel`` package available):

    pip install -e . --no-use-pep517 --no-build-isolation
"""

from setuptools import setup

setup()
