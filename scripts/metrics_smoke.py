#!/usr/bin/env python
"""CI smoke test for the telemetry surface of ``tesc serve``.

Boots a real ``tesc serve --metrics-port 0`` subprocess on a generated
graph, runs a scripted request burst through the protocol client
(ranks with repeats, top-k, stream commits, plus the ungated ``metrics``
verb), scrapes the Prometheus HTTP endpoint, and fails loudly if

* either printed address cannot be parsed from the startup banner,
* the exposition is malformed (unparseable lines, families without TYPE),
* any instrumented subsystem reports zero samples after the burst
  (requests, latency histograms, pair cache, admission, pins, commits), or
* the protocol snapshot disagrees with the scripted request counts.

The raw scrape is written to ``--out`` (default ``metrics_scrape.txt``)
and uploaded as a CI artifact next to the benchmark JSON.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.graph.generators import community_ring_graph  # noqa: E402
from repro.graph.io import write_edge_list, write_event_file  # noqa: E402
from repro.service import CorrelationClient  # noqa: E402

BANNER_RE = re.compile(r"listening on ([\d.]+):(\d+)")
METRICS_RE = re.compile(r"metrics on http://([\d.]+):(\d+)/metrics")
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (?:[0-9.eE+-]+|NaN|[+-]Inf)$"
)

#: Every instrumented subsystem must report at least one sample after the
#: scripted burst (name, minimum value).
REQUIRED_NONZERO = [
    ("tesc_requests_total", 'method="rank"'),
    ("tesc_requests_total", 'method="topk"'),
    ("tesc_requests_total", 'method="commit"'),
    ("tesc_request_seconds_count", 'method="rank"'),
    ("tesc_pair_cache_hits_total", None),
    ("tesc_pair_cache_misses_total", None),
    ("tesc_admission_admitted_total", None),
    ("tesc_snapshots_pinned_total", None),
    ("tesc_commits_total", None),
    ("tesc_commit_seconds_count", None),
    ("tesc_topk_rounds_total", None),
    ("tesc_sampler_cache_misses_total", None),
]


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 compat
    print(f"metrics smoke: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


def read_banner(process: subprocess.Popen, deadline: float) -> str:
    lines = []
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            if process.poll() is not None:
                fail(f"server exited early with {process.returncode}: {lines}")
            continue
        lines.append(line.strip())
        if METRICS_RE.search(line):
            return "\n".join(lines)
    fail(f"startup banner never appeared; saw {lines}")


def sample_value(text: str, name: str, label_fragment) -> float:
    for line in text.splitlines():
        if line.startswith("#") or not line.startswith(name):
            continue
        series = line.rsplit(" ", 1)[0]
        bare = series.split("{", 1)[0]
        if bare != name:
            continue
        if label_fragment is not None and label_fragment not in series:
            continue
        return float(line.rsplit(" ", 1)[1])
    fail(f"no sample for {name} {label_fragment or ''}".strip())


def validate_exposition(text: str) -> int:
    typed = set()
    samples = 0
    for line in text.splitlines():
        if not line.strip():
            fail("blank line inside the exposition")
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram"
            ):
                fail(f"malformed TYPE line: {line!r}")
            typed.add(parts[2])
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("#"):
            fail(f"unknown comment line: {line!r}")
        if not SAMPLE_RE.match(line):
            fail(f"malformed sample line: {line!r}")
        family = line.split("{", 1)[0].split(" ", 1)[0]
        base = re.sub(r"_(bucket|sum|count)$", "", family)
        if family not in typed and base not in typed:
            fail(f"sample {family!r} has no preceding TYPE")
        samples += 1
    if samples == 0:
        fail("exposition carried zero samples")
    return samples


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="metrics_scrape.txt",
                        help="where to write the raw scrape artifact")
    parser.add_argument("--startup-timeout", type=float, default=60.0)
    args = parser.parse_args()

    graph = community_ring_graph(6, 30, 5.0, 8, random_state=3)
    # Only nodes that appear in the edge list survive the round-trip
    # through the text files; build events from those.
    connected = sorted(
        node for node in range(graph.num_nodes) if graph.degree(node) > 0
    )
    third = len(connected) // 3
    events = {
        "alpha": connected[:2 * third],
        "beta": connected[third:],
        "gamma": connected[::2],
        "delta": connected[1::2],
    }
    workdir = tempfile.mkdtemp(prefix="tesc_smoke_")
    edges_path = os.path.join(workdir, "graph.txt")
    events_path = os.path.join(workdir, "events.txt")
    write_edge_list(graph, edges_path)
    write_event_file(events, events_path)

    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--edges", edges_path, "--events", events_path,
            "--port", "0", "--metrics-port", "0",
            "--sample-size", "150", "--seed", "3", "--workers", "1",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env={**os.environ, "PYTHONPATH": os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src"),
             os.environ.get("PYTHONPATH", "")]
        )},
    )
    try:
        banner = read_banner(
            process, time.monotonic() + args.startup_timeout
        )
        host, port = BANNER_RE.search(banner).groups()
        metrics_host, metrics_port = METRICS_RE.search(banner).groups()
        print(f"metrics smoke: server {host}:{port}, "
              f"exposition {metrics_host}:{metrics_port}")

        # -- the scripted burst ------------------------------------------
        num_ranks, num_topk, num_commits = 4, 2, 2
        with CorrelationClient(host, int(port), timeout=60.0) as client:
            for index in range(num_ranks):
                spec = (
                    [("alpha", "beta")] if index % 2 == 0
                    else [("alpha", "gamma"), ("beta", "delta")]
                )
                client.rank(spec)
            for _ in range(num_topk):
                client.topk(2)
            # The server relabels file nodes to 0..n-1, so small ids are
            # always valid; re-attaching is an accepted no-op commit.
            for index in range(num_commits):
                client.stream([{
                    "op": "event_attach", "event": "alpha", "node": index,
                }])
            snapshot = client.metrics()["metrics"]

            url = f"http://{metrics_host}:{metrics_port}/metrics"
            with urllib.request.urlopen(url, timeout=30.0) as response:
                content_type = response.headers.get("Content-Type", "")
                text = response.read().decode("utf-8")
            client.shutdown()

        if "version=0.0.4" not in content_type:
            fail(f"unexpected scrape content type {content_type!r}")

        samples = validate_exposition(text)
        print(f"metrics smoke: exposition well-formed, {samples} samples")

        for name, fragment in REQUIRED_NONZERO:
            value = sample_value(text, name, fragment)
            if not value > 0:
                fail(f"{name} {fragment or ''} is zero after the burst")
        print(f"metrics smoke: all {len(REQUIRED_NONZERO)} required "
              "subsystems report nonzero samples")

        # The protocol snapshot must agree with the scripted counts.
        def verb_count(method):
            for entry in snapshot["tesc_requests_total"]["values"]:
                if entry["labels"] == {"method": method}:
                    return entry["value"]
            return 0.0

        expected = {
            "rank": num_ranks, "topk": num_topk, "commit": num_commits,
        }
        for method, count in expected.items():
            got = verb_count(method)
            if got != count:
                fail(f"snapshot says {got} {method} requests, sent {count}")
        print(f"metrics smoke: request counters reconcile ({expected})")

        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"metrics smoke: scrape written to {args.out}")
        return 0
    finally:
        if process.poll() is None:
            process.terminate()
            try:
                process.wait(timeout=15.0)
            except subprocess.TimeoutExpired:
                process.kill()


if __name__ == "__main__":
    sys.exit(main())
