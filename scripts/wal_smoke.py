#!/usr/bin/env python
"""CI smoke test for ``tesc serve --wal`` / ``--store``: kill -9, recover.

Boots a real ``tesc serve --wal`` subprocess on a generated graph, commits
a scripted sequence of delta batches through the protocol client, records
the post-commit epoch and a full rank answer, then SIGKILLs the server —
no shutdown hook, no flush, exactly the crash the log exists for.  A
second server is booted on the same ``--wal`` and the script fails loudly
if

* the replay banner does not report every committed batch,
* the recovered epoch differs from the epoch at the moment of the kill,
* the recovered rank answer is not bit-identical to the pre-kill answer,
* or a torn tail (garbage appended to the log between the runs) breaks
  any of the above — torn bytes must be truncated, never replayed.

The checkpoint phase then reruns the crash with ``--store``: commit, cut a
checkpoint through the ``tesc checkpoint`` CLI verb (which also compacts
the covered WAL prefix), commit a short tail, kill -9 again.  The reboot
must report ``recovery: checkpoint from ckpt-...`` in its banner, replay
*only* the tail batches (the bounded-recovery contract), land on the
killed epoch, and answer bit-identically.
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.graph.generators import community_ring_graph  # noqa: E402
from repro.graph.io import write_edge_list, write_event_file  # noqa: E402
from repro.service import CorrelationClient  # noqa: E402

BANNER_RE = re.compile(r"listening on ([\d.]+):(\d+)")
WAL_RE = re.compile(
    r"write-ahead log at .* \((\d+) committed batch\(es\) replayed, "
    r"epoch (\d+)\)"
)
STORE_RE = re.compile(
    r"checkpoint store at .* \(recovery: (\w+)(?: from (ckpt-[0-9a-f-]+))?\)"
)


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 compat
    print(f"wal smoke: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


def _env():
    return {**os.environ, "PYTHONPATH": os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src"),
         os.environ.get("PYTHONPATH", "")]
    )}


def start_server(edges_path, events_path, wal_path, startup_timeout,
                 store_path=None):
    """Boot ``tesc serve --wal`` (plus ``--store`` when given) and parse
    (process, host, port, replayed, epoch, recovery) from the banner."""
    command = [
        sys.executable, "-m", "repro.cli", "serve",
        "--edges", edges_path, "--events", events_path,
        "--port", "0", "--wal", wal_path,
        "--sample-size", "150", "--seed", "3", "--workers", "1",
    ]
    if store_path is not None:
        command += ["--store", store_path]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=_env(),
    )
    lines = []
    deadline = time.monotonic() + startup_timeout
    address = replay = recovery = None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            if process.poll() is not None:
                fail(f"server exited early with {process.returncode}: {lines}")
            continue
        lines.append(line.strip())
        address = address or BANNER_RE.search(line)
        replay = replay or WAL_RE.search(line)
        recovery = recovery or STORE_RE.search(line)
        if address and replay and (store_path is None or recovery):
            host, port = address.groups()
            replayed, epoch = (int(group) for group in replay.groups())
            return process, host, int(port), replayed, epoch, recovery
    fail(f"startup banner never appeared; saw {lines}")


def run_checkpoint_verb(host, port):
    """Cut a checkpoint through the real ``tesc checkpoint`` CLI verb."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "checkpoint",
         "--host", host, "--port", str(port)],
        capture_output=True, text=True, timeout=120.0, env=_env(),
    )
    if result.returncode != 0:
        fail(f"tesc checkpoint exited {result.returncode}: {result.stderr}")
    match = re.search(r"ckpt-[0-9a-f-]+", result.stdout)
    if match is None:
        fail(f"tesc checkpoint printed no checkpoint name: {result.stdout!r}")
    return match.group(0)


def sigkill(process: subprocess.Popen) -> None:
    os.kill(process.pid, signal.SIGKILL)
    process.wait(timeout=15.0)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batches", type=int, default=3,
                        help="delta batches to commit before the kill")
    parser.add_argument("--tail-batches", type=int, default=2,
                        help="batches to commit after the checkpoint")
    parser.add_argument("--startup-timeout", type=float, default=60.0)
    args = parser.parse_args()

    graph = community_ring_graph(6, 30, 5.0, 8, random_state=3)
    connected = sorted(
        node for node in range(graph.num_nodes) if graph.degree(node) > 0
    )
    third = len(connected) // 3
    events = {
        "alpha": connected[:2 * third],
        "beta": connected[third:],
        "gamma": connected[::2],
        "delta": connected[1::2],
    }
    workdir = tempfile.mkdtemp(prefix="tesc_wal_smoke_")
    edges_path = os.path.join(workdir, "graph.txt")
    events_path = os.path.join(workdir, "events.txt")
    wal_path = os.path.join(workdir, "deltas.wal")
    write_edge_list(graph, edges_path)
    write_event_file(events, events_path)

    # -- run 1: commit, record, kill -9 ----------------------------------
    process, host, port, replayed, epoch, _ = start_server(
        edges_path, events_path, wal_path, args.startup_timeout
    )
    try:
        if replayed != 0 or epoch != 0:
            fail(f"fresh log replayed {replayed} batches at epoch {epoch}")
        with CorrelationClient(host, port, timeout=60.0) as client:
            # The server relabels file nodes to 0..n-1 in ``connected``
            # order: low ids are alpha members, high ids are not.  Each
            # batch therefore attaches a non-member and detaches a member
            # — two real mutations, observable in the rank answer.
            for index in range(args.batches):
                result = client.stream([
                    {"op": "event_attach", "event": "alpha",
                     "node": len(connected) - 1 - index},
                    {"op": "event_detach", "event": "alpha",
                     "node": index},
                ])
            killed_epoch = result["epoch"]
            answer = client.rank([("alpha", "beta"), ("gamma", "delta")])
        if killed_epoch != args.batches:
            fail(f"epoch {killed_epoch} after {args.batches} commits")
        print(f"wal smoke: committed {args.batches} batches, "
              f"epoch {killed_epoch}, killing -9")
    finally:
        if process.poll() is None:
            sigkill(process)

    # A torn tail: the crash interleaves with a write that never reached
    # its commit record.  Recovery must truncate it, not replay it.
    with open(wal_path, "ab") as handle:
        handle.write(b'deadbeef {"torn": tr')
    print("wal smoke: appended torn tail to the log")

    # -- run 2: recover from the log -------------------------------------
    process, host, port, replayed, epoch, _ = start_server(
        edges_path, events_path, wal_path, args.startup_timeout
    )
    try:
        if replayed != args.batches:
            fail(f"recovery replayed {replayed} batches, "
                 f"committed {args.batches}")
        if epoch != killed_epoch:
            fail(f"recovered epoch {epoch}, killed at {killed_epoch}")
        with CorrelationClient(host, port, timeout=60.0) as client:
            status_epoch = client.status()["epoch"]
            recovered = client.rank([("alpha", "beta"), ("gamma", "delta")])
            client.shutdown()
        if status_epoch != killed_epoch:
            fail(f"status epoch {status_epoch} != {killed_epoch}")
        if recovered["pairs"] != answer["pairs"]:
            fail("recovered rank answer diverged from the pre-kill answer")
        print(f"wal smoke: {replayed} batches replayed, epoch {epoch}, "
              "rank answer bit-identical across kill -9")
    finally:
        if process.poll() is None:
            sigkill(process)

    # -- run 3: checkpoint through the CLI verb, tail commits, kill -9 ----
    store_path = os.path.join(workdir, "store")
    process, host, port, replayed, epoch, recovery = start_server(
        edges_path, events_path, wal_path, args.startup_timeout,
        store_path=store_path,
    )
    try:
        # Fresh store over the existing 3-batch log: full replay.
        if recovery.group(1) != "full_replay":
            fail(f"expected full_replay on an empty store, "
                 f"got {recovery.group(1)}")
        if replayed != args.batches:
            fail(f"store boot replayed {replayed}, committed {args.batches}")
        with CorrelationClient(host, port, timeout=60.0) as client:
            # Attach beta to low node ids before the checkpoint, detach
            # exactly those after it: whatever the file-order relabelling
            # made of the initial membership, every tail batch is a real
            # mutation (the node is certainly a member when detached).
            for index in range(args.tail_batches):
                client.stream([
                    {"op": "event_attach", "event": "beta", "node": index},
                ])
            checkpoint_name = run_checkpoint_verb(host, port)
            print(f"wal smoke: cut {checkpoint_name} via tesc checkpoint")
            for index in range(args.tail_batches):
                result = client.stream([
                    {"op": "event_detach", "event": "beta", "node": index},
                ])
            killed_epoch = result["epoch"]
            answer = client.rank([("alpha", "beta"), ("gamma", "delta")])
        print(f"wal smoke: {args.tail_batches} tail batch(es) past the "
              f"checkpoint, epoch {killed_epoch}, killing -9")
    finally:
        if process.poll() is None:
            sigkill(process)

    # -- run 4: bounded recovery from checkpoint + tail -------------------
    process, host, port, replayed, epoch, recovery = start_server(
        edges_path, events_path, wal_path, args.startup_timeout,
        store_path=store_path,
    )
    try:
        if recovery.group(1) != "checkpoint":
            fail(f"expected checkpoint recovery, got {recovery.group(1)}")
        if recovery.group(2) != checkpoint_name:
            fail(f"recovered from {recovery.group(2)}, "
                 f"checkpointed {checkpoint_name}")
        # The recovery bound: only the batches committed AFTER the
        # checkpoint replay, not the whole history.
        if replayed != args.tail_batches:
            fail(f"bounded recovery replayed {replayed} batch(es), "
                 f"expected the {args.tail_batches}-batch tail")
        if epoch != killed_epoch:
            fail(f"recovered epoch {epoch}, killed at {killed_epoch}")
        with CorrelationClient(host, port, timeout=60.0) as client:
            status = client.status()
            recovered = client.rank([("alpha", "beta"), ("gamma", "delta")])
            client.shutdown()
        storage = status.get("storage") or {}
        if (storage.get("recovery") or {}).get("path") != "checkpoint":
            fail(f"status storage section says {storage!r}")
        if recovered["pairs"] != answer["pairs"]:
            fail("checkpoint-recovered rank answer diverged from pre-kill")
        print(f"wal smoke: checkpoint recovery replayed only {replayed} "
              f"tail batch(es), epoch {epoch}, rank answer bit-identical")
        return 0
    finally:
        if process.poll() is None:
            sigkill(process)


if __name__ == "__main__":
    sys.exit(main())
