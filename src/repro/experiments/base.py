"""Shared experiment-result plumbing."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.utils.tables import TextTable


@dataclass
class ExperimentResult:
    """The output of one experiment run.

    Attributes
    ----------
    experiment_id:
        The paper artifact this reproduces ("figure5", "table3", ...).
    title:
        Human-readable title matching the paper's caption.
    tables:
        Named text tables holding the regenerated rows/series.
    paper_reference:
        Short description of what the paper reported, for side-by-side
        comparison in EXPERIMENTS.md.
    notes:
        Free-form observations recorded while running.
    parameters:
        The configuration the experiment ran with (for reproducibility).
    elapsed_seconds:
        Wall-clock duration of the run.
    """

    experiment_id: str
    title: str
    tables: Dict[str, TextTable] = field(default_factory=dict)
    paper_reference: str = ""
    notes: List[str] = field(default_factory=list)
    parameters: Dict[str, object] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def add_table(self, name: str, table: TextTable) -> None:
        """Attach a named table to the result."""
        self.tables[name] = table

    def add_note(self, note: str) -> None:
        """Record a free-form observation."""
        self.notes.append(note)

    def render(self, markdown: bool = False) -> str:
        """Render the whole result as text (or markdown)."""
        lines: List[str] = []
        header = f"{self.experiment_id}: {self.title}"
        lines.append(f"## {header}" if markdown else header)
        if self.paper_reference:
            lines.append("")
            lines.append(f"Paper reference: {self.paper_reference}")
        if self.parameters:
            lines.append("")
            rendered = ", ".join(f"{key}={value}" for key, value in self.parameters.items())
            lines.append(f"Parameters: {rendered}")
        for name, table in self.tables.items():
            lines.append("")
            lines.append(f"### {name}" if markdown else f"-- {name} --")
            lines.append(table.render(markdown=markdown))
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"- {note}" if markdown else f"note: {note}")
        lines.append("")
        lines.append(f"(elapsed: {self.elapsed_seconds:.1f}s)")
        return "\n".join(lines)


class experiment_timer:
    """Context manager stamping :attr:`ExperimentResult.elapsed_seconds`."""

    def __init__(self, result: ExperimentResult) -> None:
        self._result = result
        self._start: Optional[float] = None

    def __enter__(self) -> "experiment_timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        if self._start is not None:
            self._result.elapsed_seconds = time.perf_counter() - self._start
