"""Figure 6: recall of the three samplers on simulated **negative** pairs.

Mirror image of Figure 5: 100 negatively correlated pairs per vicinity level,
perturbed by relocating event-b nodes next to event-a nodes with probability
``noise``.  The paper's observation is that *low* vicinity levels are harder
to break for negative pairs (the reverse of the positive case), so the h=1
curves stay near 1.0 over a wide noise range while the h=3 curves drop
earlier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.core.config import TescConfig
from repro.datasets.synthetic_dblp import make_dblp_like
from repro.experiments.base import ExperimentResult, experiment_timer
from repro.simulation.runner import SimulationStudy
from repro.utils.rng import RandomState
from repro.utils.tables import TextTable

#: Noise grids per vicinity level, as read off the x-axes of Figure 6.
PAPER_NEGATIVE_NOISE_GRIDS: Dict[int, Tuple[float, ...]] = {
    1: (0.0, 0.2, 0.4, 0.6, 0.8, 0.9),
    2: (0.0, 0.2, 0.4, 0.6, 0.8, 0.9),
    3: (0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
}


@dataclass
class Figure6Config:
    """Configuration of the Figure 6 reproduction (CI-scale defaults)."""

    num_communities: int = 12
    community_size: int = 100
    event_size: int = 300
    num_pairs: int = 6
    sample_size: int = 200
    levels: Tuple[int, ...] = (1, 2, 3)
    samplers: Tuple[str, ...] = ("batch_bfs", "importance", "whole_graph")
    noise_grids: Dict[int, Tuple[float, ...]] = field(
        default_factory=lambda: dict(PAPER_NEGATIVE_NOISE_GRIDS)
    )
    alpha: float = 0.05
    random_state: RandomState = 11


def run_figure6(config: Figure6Config = Figure6Config()) -> ExperimentResult:
    """Run the Figure 6 reproduction and return its recall tables."""
    result = ExperimentResult(
        experiment_id="figure6",
        title="Recall of reference-node samplers on simulated negative pairs",
        paper_reference=(
            "Figure 6: recall starts at 1.0 and falls with noise; unlike the "
            "positive case, *lower* vicinity levels are harder to break."
        ),
        parameters={
            "graph": f"dblp-like {config.num_communities}x{config.community_size}",
            "event_size": config.event_size,
            "num_pairs": config.num_pairs,
            "sample_size": config.sample_size,
            "alpha": config.alpha,
        },
    )
    with experiment_timer(result):
        dataset = make_dblp_like(
            num_communities=config.num_communities,
            community_size=config.community_size,
            num_positive_pairs=1,
            num_negative_pairs=1,
            num_background_keywords=0,
            random_state=config.random_state,
        )
        graph = dataset.attributed.csr
        study = SimulationStudy(
            graph,
            event_size=config.event_size,
            num_pairs=config.num_pairs,
            random_state=config.random_state,
        )
        base_config = TescConfig(
            vicinity_level=1,
            sample_size=config.sample_size,
            alpha=config.alpha,
            random_state=config.random_state,
        )
        for level in config.levels:
            table = TextTable(["noise"] + list(config.samplers), float_format="{:.3f}")
            noise_grid = config.noise_grids.get(level, (0.0, 0.3, 0.6, 0.9))
            curves = study.sampler_sweep(
                "negative", level, noise_grid, config.samplers, base_config
            )
            for noise in noise_grid:
                row = [noise] + [curves[s][float(noise)].recall for s in config.samplers]
                table.add_row(row)
            result.add_table(f"h={level} (negative pairs)", table)
    return result
