"""Experiment harness: one module per table and figure of the paper.

Every experiment exposes a ``*Config`` dataclass (with CI-scale defaults and
the paper-scale values documented next to them) and a ``run_*`` function
returning an :class:`~repro.experiments.base.ExperimentResult` whose tables
contain the same rows/series the paper reports.  The registry in
:mod:`repro.experiments.runner` maps experiment ids ("figure5" ... "table5")
to these functions for the CLI and the benchmark suite.
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.figure5 import Figure5Config, run_figure5
from repro.experiments.figure6 import Figure6Config, run_figure6
from repro.experiments.figure7 import Figure7Config, run_figure7
from repro.experiments.figure8 import Figure8Config, run_figure8
from repro.experiments.figure9 import Figure9Config, run_figure9
from repro.experiments.figure10 import Figure10Config, run_figure10
from repro.experiments.table1 import Table1Config, run_table1
from repro.experiments.table2 import Table2Config, run_table2
from repro.experiments.table3 import Table3Config, run_table3
from repro.experiments.table4 import Table4Config, run_table4
from repro.experiments.table5 import Table5Config, run_table5
from repro.experiments.runner import available_experiments, run_experiment

__all__ = [
    "ExperimentResult",
    "Figure5Config", "run_figure5",
    "Figure6Config", "run_figure6",
    "Figure7Config", "run_figure7",
    "Figure8Config", "run_figure8",
    "Figure9Config", "run_figure9",
    "Figure10Config", "run_figure10",
    "Table1Config", "run_table1",
    "Table2Config", "run_table2",
    "Table3Config", "run_table3",
    "Table4Config", "run_table4",
    "Table5Config", "run_table5",
    "available_experiments",
    "run_experiment",
]
