"""Figure 8: impact of graph density (random edge removal/addition) on recall.

Section 5.2.3 perturbs the DBLP graph by randomly removing or adding edges
and re-runs Batch BFS on the noise-free simulated pairs.  Removing edges
increases distances, so recall of *positive* pairs falls; adding edges brings
nodes closer, so recall of *negative* pairs falls; the other combinations
stay at 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.config import TescConfig
from repro.datasets.synthetic_dblp import make_dblp_like
from repro.experiments.base import ExperimentResult, experiment_timer
from repro.graph.mutation import add_random_edges, remove_random_edges
from repro.simulation.recall import evaluate_recall
from repro.simulation.runner import SimulationStudy
from repro.utils.rng import RandomState
from repro.utils.tables import TextTable


@dataclass
class Figure8Config:
    """Configuration of the Figure 8 reproduction (CI-scale defaults).

    The paper removes up to 3.5M of DBLP's 3.55M edges and adds up to 50M;
    the reproduction expresses the sweep as fractions of the edge count.
    """

    num_communities: int = 12
    community_size: int = 100
    event_size: int = 300
    num_pairs: int = 5
    sample_size: int = 200
    levels: Tuple[int, ...] = (1, 2, 3)
    removal_fractions: Tuple[float, ...] = (0.0, 0.3, 0.6, 0.9)
    addition_fractions: Tuple[float, ...] = (0.0, 2.0, 5.0, 10.0)
    alpha: float = 0.05
    random_state: RandomState = 17


def run_figure8(config: Figure8Config = Figure8Config()) -> ExperimentResult:
    """Run the Figure 8 reproduction."""
    result = ExperimentResult(
        experiment_id="figure8",
        title="Impact of randomly removing/adding edges on correlation recall",
        paper_reference=(
            "Figure 8: removing edges lowers recall of positive pairs (1-hop "
            "least affected); adding edges lowers recall of negative pairs."
        ),
        parameters={
            "graph": f"dblp-like {config.num_communities}x{config.community_size}",
            "event_size": config.event_size,
            "num_pairs": config.num_pairs,
            "removal_fractions": config.removal_fractions,
            "addition_fractions": config.addition_fractions,
        },
    )
    with experiment_timer(result):
        dataset = make_dblp_like(
            num_communities=config.num_communities,
            community_size=config.community_size,
            num_positive_pairs=1,
            num_negative_pairs=1,
            num_background_keywords=0,
            random_state=config.random_state,
        )
        base_graph = dataset.graph
        csr = base_graph.to_csr()
        study = SimulationStudy(
            csr,
            event_size=config.event_size,
            num_pairs=config.num_pairs,
            random_state=config.random_state,
        )
        test_config = TescConfig(
            vicinity_level=1,
            sample_size=config.sample_size,
            sampler="batch_bfs",
            alpha=config.alpha,
            random_state=config.random_state,
        )

        # Pairs are planted once on the unperturbed graph, then evaluated on
        # perturbed copies — exactly the paper's protocol.
        positive_pairs = {
            level: [(p.nodes_a, p.nodes_b) for p in study.generate_pairs("positive", level)]
            for level in config.levels
        }
        negative_pairs = {
            level: [(p.nodes_a, p.nodes_b) for p in study.generate_pairs("negative", level)]
            for level in config.levels
        }

        removal_table = TextTable(
            ["edges removed (fraction)"] + [f"positive, h={level}" for level in config.levels],
            float_format="{:.3f}",
        )
        for fraction in config.removal_fractions:
            removed = remove_random_edges(
                base_graph, int(fraction * base_graph.num_edges),
                random_state=config.random_state,
            ).to_csr()
            row = [fraction]
            for level in config.levels:
                evaluation = evaluate_recall(
                    removed, positive_pairs[level], "positive",
                    test_config.with_level(level),
                )
                row.append(evaluation.recall)
            removal_table.add_row(row)
        result.add_table("(a) edge removal vs positive-pair recall", removal_table)

        addition_table = TextTable(
            ["edges added (fraction)"] + [f"negative, h={level}" for level in config.levels],
            float_format="{:.3f}",
        )
        for fraction in config.addition_fractions:
            added = add_random_edges(
                base_graph, int(fraction * base_graph.num_edges),
                random_state=config.random_state,
            ).to_csr()
            row = [fraction]
            for level in config.levels:
                evaluation = evaluate_recall(
                    added, negative_pairs[level], "negative",
                    test_config.with_level(level),
                )
                row.append(evaluation.recall)
            addition_table.add_row(row)
        result.add_table("(b) edge addition vs negative-pair recall", addition_table)
    return result
