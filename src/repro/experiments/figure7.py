"""Figure 7: batched importance sampling — recall vs nodes drawn per vicinity.

Section 5.2.2 evaluates the batched variant of Importance sampling: when the
sampler has paid for the h-hop BFS of one event node, it may draw several
reference nodes from that vicinity instead of one.  Recall stays high for a
while and then degrades (the sample gets trapped in local correlations), and
it degrades *later* for h = 3 than for h = 2 because 3-vicinities overlap
more.  The paper evaluates four configurations: positive h=2 noise 0,
positive h=3 noise 0.1, negative h=2 noise 0.5, negative h=3 noise 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.config import TescConfig
from repro.datasets.synthetic_dblp import make_dblp_like
from repro.experiments.base import ExperimentResult, experiment_timer
from repro.simulation.recall import evaluate_recall
from repro.simulation.runner import SimulationStudy
from repro.utils.rng import RandomState
from repro.utils.tables import TextTable

#: The four curves of Figure 7 as (correlation, level, noise) triples.
PAPER_FIGURE7_CONFIGURATIONS: Tuple[Tuple[str, int, float], ...] = (
    ("positive", 2, 0.0),
    ("positive", 3, 0.1),
    ("negative", 2, 0.5),
    ("negative", 3, 0.0),
)


@dataclass
class Figure7Config:
    """Configuration of the Figure 7 reproduction (CI-scale defaults).

    Paper-scale: batch sizes 1..20, 100 pairs per configuration, n = 900.
    """

    num_communities: int = 12
    community_size: int = 100
    event_size: int = 300
    num_pairs: int = 5
    sample_size: int = 200
    batch_sizes: Tuple[int, ...] = (1, 5, 10, 15, 20)
    configurations: Tuple[Tuple[str, int, float], ...] = PAPER_FIGURE7_CONFIGURATIONS
    alpha: float = 0.05
    random_state: RandomState = 13


def run_figure7(config: Figure7Config = Figure7Config()) -> ExperimentResult:
    """Run the Figure 7 reproduction."""
    result = ExperimentResult(
        experiment_id="figure7",
        title="Batched importance sampling: recall vs reference nodes per vicinity",
        paper_reference=(
            "Figure 7: recall stays high for small batch sizes and degrades as "
            "more reference nodes are drawn per vicinity; h=3 curves stay high "
            "longer than h=2 curves."
        ),
        parameters={
            "graph": f"dblp-like {config.num_communities}x{config.community_size}",
            "event_size": config.event_size,
            "num_pairs": config.num_pairs,
            "sample_size": config.sample_size,
            "batch_sizes": config.batch_sizes,
        },
    )
    with experiment_timer(result):
        dataset = make_dblp_like(
            num_communities=config.num_communities,
            community_size=config.community_size,
            num_positive_pairs=1,
            num_negative_pairs=1,
            num_background_keywords=0,
            random_state=config.random_state,
        )
        graph = dataset.attributed.csr
        study = SimulationStudy(
            graph,
            event_size=config.event_size,
            num_pairs=config.num_pairs,
            random_state=config.random_state,
        )

        columns = ["batch size"] + [
            f"{corr}, h={level}, noise={noise}" for corr, level, noise in config.configurations
        ]
        table = TextTable(columns, float_format="{:.3f}")

        # Generate each configuration's pairs once and reuse them across batch sizes
        # so the curves differ only by the sampler's batching.
        pair_sets: List[Tuple[str, int, list]] = []
        for correlation, level, noise in config.configurations:
            pairs = study.generate_pairs(correlation, level, noise)
            pair_sets.append((correlation, level,
                              [(pair.nodes_a, pair.nodes_b) for pair in pairs]))

        for batch_size in config.batch_sizes:
            row: List[object] = [batch_size]
            for (correlation, level, pairs) in pair_sets:
                test_config = TescConfig(
                    vicinity_level=level,
                    sample_size=config.sample_size,
                    sampler="importance",
                    batch_per_vicinity=batch_size,
                    alpha=config.alpha,
                    random_state=config.random_state,
                )
                evaluation = evaluate_recall(graph, pairs, correlation, test_config)
                row.append(evaluation.recall)
            table.add_row(row)
        result.add_table("recall vs batch size", table)
    return result
