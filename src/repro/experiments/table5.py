"""Table 5: rare alert pairs found by TESC but missed by proximity patterns.

The paper runs the pFP proximity-pattern miner (minsup = 10/|V|, α = 1,
ǫ = 0.12) on the Intrusion dataset and reports two alert pairs with only a
few dozen occurrences each that have significantly positive 1-hop TESC yet do
not appear among the mined proximity patterns — because proximity pattern
mining requires events to co-occur *frequently*, not merely closely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.proximity import ProximityPatternMiner
from repro.core.config import TescConfig
from repro.core.tesc import TescTester
from repro.datasets.synthetic_intrusion import make_intrusion_like
from repro.experiments.base import ExperimentResult, experiment_timer
from repro.stats.normal import z_to_p_value
from repro.utils.rng import RandomState
from repro.utils.tables import TextTable


@dataclass
class Table5Config:
    """Configuration of the Table 5 reproduction (CI-scale defaults)."""

    num_subnets: int = 120
    subnet_size: int = 40
    num_rare_pairs: int = 2
    sample_size: int = 400
    vicinity_level: int = 1
    sampler: str = "batch_bfs"
    minsup_numerator: float = 10.0
    epsilon: float = 0.12
    random_state: RandomState = 47


def run_table5(config: Table5Config = Table5Config()) -> ExperimentResult:
    """Run the Table 5 reproduction."""
    result = ExperimentResult(
        experiment_id="table5",
        title="Rare alert pairs with positive 1-hop TESC missed by proximity pattern mining",
        paper_reference=(
            "Table 5: two rare pairs (tens of occurrences) with z-scores 3.30 and "
            "2.52 that do not appear among mined proximity patterns."
        ),
        parameters={
            "graph": f"intrusion-like {config.num_subnets}x{config.subnet_size}",
            "sample_size": config.sample_size,
            "minsup": f"{config.minsup_numerator}/|V|",
            "epsilon": config.epsilon,
        },
    )
    with experiment_timer(result):
        dataset = make_intrusion_like(
            num_subnets=config.num_subnets,
            subnet_size=config.subnet_size,
            num_rare_pairs=config.num_rare_pairs,
            random_state=config.random_state,
        )
        attributed = dataset.attributed
        tester = TescTester(attributed)
        miner = ProximityPatternMiner(
            attributed,
            minsup=config.minsup_numerator / attributed.num_nodes,
            epsilon=config.epsilon,
        )
        table = TextTable(
            ["pair (counts)", "TESC z", "p-value", "pFP support x |V|", "found by pFP"],
            float_format="{:.4f}",
        )
        for event_a, event_b in dataset.rare_pairs:
            test = tester.test(
                event_a,
                event_b,
                TescConfig(
                    vicinity_level=config.vicinity_level,
                    sample_size=config.sample_size,
                    sampler=config.sampler,
                    alternative="greater",
                    random_state=config.random_state,
                ),
            )
            count_a = attributed.events.occurrence_count(event_a)
            count_b = attributed.events.occurrence_count(event_b)
            support = miner.pair_support(event_a, event_b) * attributed.num_nodes
            table.add_row(
                [
                    f"{event_a} ({count_a}) vs {event_b} ({count_b})",
                    test.z_score,
                    z_to_p_value(test.z_score, "greater"),
                    support,
                    miner.discovers_pair(event_a, event_b),
                ]
            )

        # Contrast row: the frequent positive pairs *are* found by pFP.
        frequent_found = sum(
            1 for a, b in dataset.positive_pairs if miner.discovers_pair(a, b)
        )
        result.add_table("rare positive alert pairs", table)
        result.add_note(
            f"{frequent_found}/{len(dataset.positive_pairs)} frequent positive pairs "
            "are discovered by proximity pattern mining, while the rare pairs above "
            "are missed despite their significant TESC."
        )
    return result
