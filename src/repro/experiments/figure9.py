"""Figure 9: running time of the sampling algorithms vs number of event nodes.

The paper draws random event-node sets of 1k–500k nodes on the 20M-node
Twitter graph and measures each sampler's time to produce n = 900 reference
nodes, for h = 1, 2, 3.  The reproduction uses a smaller Twitter-like graph
(the curve shapes are the target): Batch BFS grows with |V_{a∪b}| while
Importance sampling stays nearly flat, and Whole-graph sampling is only
competitive for large event sets and high h.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.experiments.base import ExperimentResult, experiment_timer
from repro.datasets.synthetic_twitter import make_twitter_like
from repro.graph.vicinity import VicinityIndex
from repro.sampling.registry import create_sampler
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.tables import TextTable
from repro.utils.timing import Timer


@dataclass
class Figure9Config:
    """Configuration of the Figure 9 reproduction (CI-scale defaults).

    Paper-scale: 20M-node Twitter graph, event sets of 1k–500k nodes,
    n = 900, 50 repetitions per point.
    """

    num_nodes: int = 20_000
    edges_per_node: int = 8
    event_set_sizes: Tuple[int, ...] = (500, 2_000, 5_000, 10_000)
    levels: Tuple[int, ...] = (1, 2, 3)
    samplers: Tuple[str, ...] = ("batch_bfs", "importance", "whole_graph")
    sample_size: int = 300
    repetitions: int = 3
    precompute_index: bool = True
    random_state: RandomState = 23


def run_figure9(config: Figure9Config = Figure9Config()) -> ExperimentResult:
    """Run the Figure 9 reproduction and return per-level timing tables."""
    result = ExperimentResult(
        experiment_id="figure9",
        title="Running time of reference-node sampling vs number of event nodes",
        paper_reference=(
            "Figure 9: Batch BFS time grows with |Va∪b|; Importance sampling "
            "stays nearly flat; Whole-graph sampling is only competitive for "
            "large event sets at h=3."
        ),
        parameters={
            "graph": f"twitter-like BA({config.num_nodes}, {config.edges_per_node})",
            "event_set_sizes": config.event_set_sizes,
            "sample_size": config.sample_size,
            "repetitions": config.repetitions,
        },
    )
    with experiment_timer(result):
        rng = ensure_rng(config.random_state)
        graph = make_twitter_like(
            num_nodes=config.num_nodes,
            edges_per_node=config.edges_per_node,
            random_state=rng,
        )
        # The |V^h_v| index is an offline artifact in the paper (pre-computed
        # once per graph), so it is built outside the timed region.
        vicinity_index = VicinityIndex(graph, levels=config.levels,
                                       lazy=not config.precompute_index)
        if config.precompute_index:
            vicinity_index.precompute()
            result.add_note(
                "the |V^h_v| index was pre-computed offline before timing, "
                "as in the paper's setup"
            )

        for level in config.levels:
            table = TextTable(
                ["|Va∪b|"] + [f"{s} (s)" for s in config.samplers], float_format="{:.4f}"
            )
            for size in config.event_set_sizes:
                if size > graph.num_nodes:
                    continue
                row: list = [size]
                for sampler_name in config.samplers:
                    timer = Timer()
                    for repetition in range(config.repetitions):
                        event_nodes = rng.choice(graph.num_nodes, size=size, replace=False)
                        sampler = create_sampler(
                            sampler_name,
                            graph,
                            vicinity_index=vicinity_index,
                            random_state=rng,
                        )
                        with timer.lap(sampler_name):
                            sampler.sample(event_nodes, level, config.sample_size)
                    row.append(timer.total(sampler_name) / config.repetitions)
                table.add_row(row)
            result.add_table(f"h={level}", table)
    return result
