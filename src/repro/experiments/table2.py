"""Table 2: keyword pairs with high 3-hop negative TESC (DBLP).

The paper lists five keyword pairs from far-apart research areas ("Texture vs
Java", "GPU vs RDF", ...) whose TESC z-scores are negative at every level
(largest in magnitude at h = 1, still negative at h = 3) while their
transaction correlation is near zero or even positive — authors who used both
keywords exist, but the communities are far apart in the graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.baselines.transaction import transaction_correlation
from repro.core.config import TescConfig
from repro.core.tesc import TescTester
from repro.datasets.synthetic_dblp import make_dblp_like
from repro.experiments.base import ExperimentResult, experiment_timer
from repro.utils.rng import RandomState
from repro.utils.tables import TextTable


@dataclass
class Table2Config:
    """Configuration of the Table 2 reproduction (CI-scale defaults)."""

    num_communities: int = 24
    community_size: int = 120
    num_pairs: int = 5
    sample_size: int = 400
    levels: Tuple[int, ...] = (1, 2, 3)
    sampler: str = "batch_bfs"
    random_state: RandomState = 37


def run_table2(config: Table2Config = Table2Config()) -> ExperimentResult:
    """Run the Table 2 reproduction."""
    result = ExperimentResult(
        experiment_id="table2",
        title="Keyword pairs exhibiting high 3-hop negative TESC (DBLP-like)",
        paper_reference=(
            "Table 2: five keyword pairs with negative TESC at every level "
            "(e.g. -23.63 / -9.41 / -6.40) while TC is near zero or positive."
        ),
        parameters={
            "graph": f"dblp-like {config.num_communities}x{config.community_size}",
            "sample_size": config.sample_size,
            "sampler": config.sampler,
        },
    )
    with experiment_timer(result):
        dataset = make_dblp_like(
            num_communities=config.num_communities,
            community_size=config.community_size,
            num_positive_pairs=1,
            num_negative_pairs=config.num_pairs,
            random_state=config.random_state,
        )
        tester = TescTester(dataset.attributed)
        table = TextTable(
            ["#", "pair"] + [f"TESC z (h={level})" for level in config.levels] + ["TC z"],
        )
        for index, (event_a, event_b) in enumerate(dataset.negative_pairs, start=1):
            row: list = [index, f"{event_a} vs {event_b}"]
            for level in config.levels:
                test = tester.test(
                    event_a,
                    event_b,
                    TescConfig(
                        vicinity_level=level,
                        sample_size=config.sample_size,
                        sampler=config.sampler,
                        random_state=config.random_state,
                    ),
                )
                row.append(test.z_score)
            tc = transaction_correlation(dataset.attributed.events, event_a, event_b)
            row.append(tc.z_score)
            table.add_row(row)
        result.add_table("3-hop negative keyword pairs", table)
        result.add_note(
            "Expected shape: all TESC z-scores negative (attenuating as h grows); "
            "TC z near zero or positive despite the strong structural repulsion."
        )
    return result
