"""Table 3: alert pairs with high 1-hop positive TESC (Intrusion).

The paper lists five intrusion-alert pairs (pre-attack probes, ICMP floods,
e-mail exploits...) whose 1-hop TESC is strongly positive while their
transaction correlation is near zero or even negative — attackers alternate
related techniques over the hosts of a subnet instead of stacking them on a
single host.  This TESC-positive / TC-flat contrast is the paper's headline
motivation for the measure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.transaction import transaction_correlation
from repro.core.config import TescConfig
from repro.core.tesc import TescTester
from repro.datasets.synthetic_intrusion import make_intrusion_like
from repro.experiments.base import ExperimentResult, experiment_timer
from repro.utils.rng import RandomState
from repro.utils.tables import TextTable


@dataclass
class Table3Config:
    """Configuration of the Table 3 reproduction (CI-scale defaults).

    Paper-scale: the real Intrusion graph (200,858 nodes, 545 alert types),
    n = 900 reference nodes.
    """

    num_subnets: int = 120
    subnet_size: int = 40
    num_pairs: int = 5
    sample_size: int = 400
    vicinity_level: int = 1
    sampler: str = "batch_bfs"
    random_state: RandomState = 41


def run_table3(config: Table3Config = Table3Config()) -> ExperimentResult:
    """Run the Table 3 reproduction."""
    result = ExperimentResult(
        experiment_id="table3",
        title="Alert pairs exhibiting high 1-hop positive TESC (Intrusion-like)",
        paper_reference=(
            "Table 3: five alert pairs with TESC z between ~4 and ~14 at h=1 "
            "while TC is small or negative (e.g. 12.15 vs -0.04)."
        ),
        parameters={
            "graph": f"intrusion-like {config.num_subnets}x{config.subnet_size}",
            "sample_size": config.sample_size,
            "h": config.vicinity_level,
        },
    )
    with experiment_timer(result):
        dataset = make_intrusion_like(
            num_subnets=config.num_subnets,
            subnet_size=config.subnet_size,
            num_positive_pairs=config.num_pairs,
            random_state=config.random_state,
        )
        tester = TescTester(dataset.attributed)
        table = TextTable(["#", "pair", f"TESC z (h={config.vicinity_level})", "TC z"])
        for index, (event_a, event_b) in enumerate(dataset.positive_pairs, start=1):
            test = tester.test(
                event_a,
                event_b,
                TescConfig(
                    vicinity_level=config.vicinity_level,
                    sample_size=config.sample_size,
                    sampler=config.sampler,
                    random_state=config.random_state,
                ),
            )
            tc = transaction_correlation(dataset.attributed.events, event_a, event_b)
            table.add_row([index, f"{event_a} vs {event_b}", test.z_score, tc.z_score])
        result.add_table("1-hop positive alert pairs", table)
        result.add_note(
            "Expected shape: TESC z clearly positive for every pair while TC z "
            "stays near zero or negative — the structural correlation TC misses."
        )
    return result
