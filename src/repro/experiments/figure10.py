"""Figure 10: cost of the two non-sampling phases of the framework.

(a) one h-hop BFS (the density computation primitive) as the graph grows —
the paper reports ~5.2 ms for a 3-hop BFS on a 20M-node graph; and
(b) the z-score computation as the number of reference nodes grows — ~4 ms
for 1000 reference nodes, with its O(n²) shape visible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Tuple

from repro.core.estimators import plain_estimate
from repro.datasets.synthetic_twitter import make_twitter_like
from repro.experiments.base import ExperimentResult, experiment_timer
from repro.graph.traversal import BFSEngine
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.tables import TextTable


@dataclass
class Figure10Config:
    """Configuration of the Figure 10 reproduction (CI-scale defaults).

    Paper-scale: graphs up to 20M nodes for (a); up to 1000 reference nodes
    for (b).
    """

    graph_sizes: Tuple[int, ...] = (5_000, 10_000, 20_000, 40_000)
    edges_per_node: int = 8
    levels: Tuple[int, ...] = (1, 2, 3)
    bfs_repetitions: int = 20
    reference_node_counts: Tuple[int, ...] = (200, 400, 600, 800, 1000)
    zscore_repetitions: int = 5
    random_state: RandomState = 29


def run_figure10(config: Figure10Config = Figure10Config()) -> ExperimentResult:
    """Run the Figure 10 reproduction (BFS cost and z-score cost)."""
    result = ExperimentResult(
        experiment_id="figure10",
        title="Cost of one h-hop BFS and of the z-score computation",
        paper_reference=(
            "Figure 10: (a) a single h-hop BFS stays in the millisecond range "
            "even on large graphs and grows with h; (b) z-score computation is "
            "O(n^2) but only a few milliseconds for n = 1000."
        ),
        parameters={
            "graph_sizes": config.graph_sizes,
            "levels": config.levels,
            "reference_node_counts": config.reference_node_counts,
        },
    )
    with experiment_timer(result):
        rng = ensure_rng(config.random_state)

        bfs_table = TextTable(
            ["graph size"] + [f"h={level} (ms)" for level in config.levels],
            float_format="{:.3f}",
        )
        for num_nodes in config.graph_sizes:
            graph = make_twitter_like(
                num_nodes=num_nodes, edges_per_node=config.edges_per_node, random_state=rng
            )
            engine = BFSEngine(graph)
            sources = rng.choice(graph.num_nodes, size=config.bfs_repetitions, replace=False)
            row: list = [num_nodes]
            for level in config.levels:
                started = time.perf_counter()
                for source in sources:
                    engine.vicinity(int(source), level)
                elapsed = time.perf_counter() - started
                row.append(1000.0 * elapsed / config.bfs_repetitions)
            bfs_table.add_row(row)
        result.add_table("(a) one h-hop BFS vs graph size", bfs_table)

        z_table = TextTable(["reference nodes", "z-score time (ms)"], float_format="{:.3f}")
        for count in config.reference_node_counts:
            densities_a = rng.random(count)
            densities_b = rng.random(count)
            started = time.perf_counter()
            for _ in range(config.zscore_repetitions):
                plain_estimate(densities_a, densities_b)
            elapsed = time.perf_counter() - started
            z_table.add_row([count, 1000.0 * elapsed / config.zscore_repetitions])
        result.add_table("(b) z-score computation vs number of reference nodes", z_table)
    return result
