"""Figure 5: recall of the three samplers on simulated **positive** pairs.

The paper plants 100 positively correlated event pairs (|V_a| = 5000) on the
DBLP graph for each vicinity level h = 1, 2, 3, perturbs them with increasing
noise, and reports the recall of one-tailed tests (α = 0.05, n = 900) for
Batch BFS, Importance sampling and Whole-graph sampling.  The reproduction
uses the synthetic DBLP-like graph at a reduced default scale; the curve
shape (recall starts at 1.0 and falls off as noise grows, with higher h
harder to break) is the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.core.config import TescConfig
from repro.datasets.synthetic_dblp import make_dblp_like
from repro.experiments.base import ExperimentResult, experiment_timer
from repro.simulation.runner import SimulationStudy
from repro.utils.rng import RandomState
from repro.utils.tables import TextTable

#: Noise grids per vicinity level, as read off the x-axes of Figure 5.
PAPER_POSITIVE_NOISE_GRIDS: Dict[int, Tuple[float, ...]] = {
    1: (0.0, 0.1, 0.2, 0.3),
    2: (0.0, 0.1, 0.2, 0.3),
    3: (0.0, 0.2, 0.4, 0.6, 0.7),
}


@dataclass
class Figure5Config:
    """Configuration of the Figure 5 reproduction.

    Paper-scale values: DBLP graph (~1M nodes), event_size=5000,
    num_pairs=100, sample_size=900.  The defaults below are CI-scale.
    """

    num_communities: int = 12
    community_size: int = 100
    event_size: int = 300
    num_pairs: int = 6
    sample_size: int = 200
    levels: Tuple[int, ...] = (1, 2, 3)
    samplers: Tuple[str, ...] = ("batch_bfs", "importance", "whole_graph")
    noise_grids: Dict[int, Tuple[float, ...]] = field(
        default_factory=lambda: dict(PAPER_POSITIVE_NOISE_GRIDS)
    )
    alpha: float = 0.05
    random_state: RandomState = 7


def run_figure5(config: Figure5Config = Figure5Config()) -> ExperimentResult:
    """Run the Figure 5 reproduction and return its recall tables."""
    result = ExperimentResult(
        experiment_id="figure5",
        title="Recall of reference-node samplers on simulated positive pairs",
        paper_reference=(
            "Figure 5: recall starts at 1.0 and falls with noise; Batch BFS is "
            "the most accurate, Importance sampling close behind, and "
            "higher vicinity levels are harder to break."
        ),
        parameters={
            "graph": f"dblp-like {config.num_communities}x{config.community_size}",
            "event_size": config.event_size,
            "num_pairs": config.num_pairs,
            "sample_size": config.sample_size,
            "alpha": config.alpha,
        },
    )
    with experiment_timer(result):
        dataset = make_dblp_like(
            num_communities=config.num_communities,
            community_size=config.community_size,
            num_positive_pairs=1,
            num_negative_pairs=1,
            num_background_keywords=0,
            random_state=config.random_state,
        )
        graph = dataset.attributed.csr
        study = SimulationStudy(
            graph,
            event_size=config.event_size,
            num_pairs=config.num_pairs,
            random_state=config.random_state,
        )
        base_config = TescConfig(
            vicinity_level=1,
            sample_size=config.sample_size,
            alpha=config.alpha,
            random_state=config.random_state,
        )
        for level in config.levels:
            table = TextTable(["noise"] + list(config.samplers), float_format="{:.3f}")
            noise_grid = config.noise_grids.get(level, (0.0, 0.1, 0.2, 0.3))
            curves = study.sampler_sweep(
                "positive", level, noise_grid, config.samplers, base_config
            )
            for noise in noise_grid:
                row = [noise] + [curves[s][float(noise)].recall for s in config.samplers]
                table.add_row(row)
            result.add_table(f"h={level} (positive pairs)", table)
            zero_noise = {s: curves[s][float(noise_grid[0])].recall for s in config.samplers}
            result.add_note(
                f"h={level}: recall at zero noise = "
                + ", ".join(f"{s}:{r:.2f}" for s, r in zero_noise.items())
            )
    return result
