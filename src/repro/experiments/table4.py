"""Table 4: alert pairs with high 2-hop negative TESC (Intrusion).

The paper lists five alert pairs tied to different attack approaches or
platforms (TFTP attacks vs LDAP brute forcing, Microsoft-only vs
Netscape-only exploits) whose 2-hop TESC is strongly negative with a mildly
negative transaction correlation.  The paper uses h = 2 rather than h = 3
because the Intrusion graph's huge-degree hubs make 2-vicinities already
cover much of the network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.transaction import transaction_correlation
from repro.core.config import TescConfig
from repro.core.tesc import TescTester
from repro.datasets.synthetic_intrusion import make_intrusion_like
from repro.experiments.base import ExperimentResult, experiment_timer
from repro.utils.rng import RandomState
from repro.utils.tables import TextTable


@dataclass
class Table4Config:
    """Configuration of the Table 4 reproduction (CI-scale defaults)."""

    num_subnets: int = 120
    subnet_size: int = 40
    num_pairs: int = 5
    sample_size: int = 400
    vicinity_level: int = 2
    sampler: str = "batch_bfs"
    random_state: RandomState = 43


def run_table4(config: Table4Config = Table4Config()) -> ExperimentResult:
    """Run the Table 4 reproduction."""
    result = ExperimentResult(
        experiment_id="table4",
        title="Alert pairs exhibiting high 2-hop negative TESC (Intrusion-like)",
        paper_reference=(
            "Table 4: five alert pairs with TESC z around -27 to -31 at h=2 and "
            "moderately negative TC."
        ),
        parameters={
            "graph": f"intrusion-like {config.num_subnets}x{config.subnet_size}",
            "sample_size": config.sample_size,
            "h": config.vicinity_level,
        },
    )
    with experiment_timer(result):
        dataset = make_intrusion_like(
            num_subnets=config.num_subnets,
            subnet_size=config.subnet_size,
            num_negative_pairs=config.num_pairs,
            random_state=config.random_state,
        )
        tester = TescTester(dataset.attributed)
        table = TextTable(["#", "pair", f"TESC z (h={config.vicinity_level})", "TC z"])
        for index, (event_a, event_b) in enumerate(dataset.negative_pairs, start=1):
            test = tester.test(
                event_a,
                event_b,
                TescConfig(
                    vicinity_level=config.vicinity_level,
                    sample_size=config.sample_size,
                    sampler=config.sampler,
                    random_state=config.random_state,
                ),
            )
            tc = transaction_correlation(dataset.attributed.events, event_a, event_b)
            table.add_row([index, f"{event_a} vs {event_b}", test.z_score, tc.z_score])
        result.add_table("2-hop negative alert pairs", table)
        result.add_note(
            "Expected shape: strongly negative TESC z for every pair with mildly "
            "negative TC."
        )
    return result
