"""Table 1: keyword pairs with high 1-hop positive TESC (DBLP).

The paper lists five semantically related keyword pairs ("Texture vs Image",
"Wireless vs Sensor", ...) whose TESC z-scores are positive at h = 1 and grow
with the vicinity level, and whose transaction correlation is also strongly
positive.  The reproduction reports the planted positive keyword pairs of the
synthetic DBLP-like dataset with the same columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.baselines.transaction import transaction_correlation
from repro.core.config import TescConfig
from repro.core.tesc import TescTester
from repro.datasets.synthetic_dblp import make_dblp_like
from repro.experiments.base import ExperimentResult, experiment_timer
from repro.utils.rng import RandomState
from repro.utils.tables import TextTable


@dataclass
class Table1Config:
    """Configuration of the Table 1 reproduction (CI-scale defaults).

    Paper-scale: the real DBLP graph (~1M nodes) with 0.19M keywords and
    n = 900 reference nodes.
    """

    num_communities: int = 24
    community_size: int = 120
    num_pairs: int = 5
    sample_size: int = 400
    levels: Tuple[int, ...] = (1, 2, 3)
    sampler: str = "batch_bfs"
    random_state: RandomState = 31


def run_table1(config: Table1Config = Table1Config()) -> ExperimentResult:
    """Run the Table 1 reproduction."""
    result = ExperimentResult(
        experiment_id="table1",
        title="Keyword pairs exhibiting high 1-hop positive TESC (DBLP-like)",
        paper_reference=(
            "Table 1: five keyword pairs with positive TESC z-scores that grow "
            "with h (e.g. 6.22 / 19.85 / 30.58) and strongly positive TC."
        ),
        parameters={
            "graph": f"dblp-like {config.num_communities}x{config.community_size}",
            "sample_size": config.sample_size,
            "sampler": config.sampler,
        },
    )
    with experiment_timer(result):
        dataset = make_dblp_like(
            num_communities=config.num_communities,
            community_size=config.community_size,
            num_positive_pairs=config.num_pairs,
            num_negative_pairs=1,
            random_state=config.random_state,
        )
        tester = TescTester(dataset.attributed)
        table = TextTable(
            ["#", "pair"] + [f"TESC z (h={level})" for level in config.levels] + ["TC z"],
        )
        for index, (event_a, event_b) in enumerate(dataset.positive_pairs, start=1):
            row: list = [index, f"{event_a} vs {event_b}"]
            for level in config.levels:
                test = tester.test(
                    event_a,
                    event_b,
                    TescConfig(
                        vicinity_level=level,
                        sample_size=config.sample_size,
                        sampler=config.sampler,
                        random_state=config.random_state,
                    ),
                )
                row.append(test.z_score)
            tc = transaction_correlation(dataset.attributed.events, event_a, event_b)
            row.append(tc.z_score)
            table.add_row(row)
        result.add_table("1-hop positive keyword pairs", table)
        result.add_note(
            "Expected shape: all TESC z-scores positive and increasing with h; "
            "TC z positive."
        )
    return result
