"""Experiment registry and EXPERIMENTS.md generation."""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional

from repro.exceptions import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.experiments.figure5 import Figure5Config, run_figure5
from repro.experiments.figure6 import Figure6Config, run_figure6
from repro.experiments.figure7 import Figure7Config, run_figure7
from repro.experiments.figure8 import Figure8Config, run_figure8
from repro.experiments.figure9 import Figure9Config, run_figure9
from repro.experiments.figure10 import Figure10Config, run_figure10
from repro.experiments.table1 import Table1Config, run_table1
from repro.experiments.table2 import Table2Config, run_table2
from repro.experiments.table3 import Table3Config, run_table3
from repro.experiments.table4 import Table4Config, run_table4
from repro.experiments.table5 import Table5Config, run_table5

#: experiment id -> (config factory, runner)
_REGISTRY: Dict[str, tuple] = {
    "figure5": (Figure5Config, run_figure5),
    "figure6": (Figure6Config, run_figure6),
    "figure7": (Figure7Config, run_figure7),
    "figure8": (Figure8Config, run_figure8),
    "figure9": (Figure9Config, run_figure9),
    "figure10": (Figure10Config, run_figure10),
    "table1": (Table1Config, run_table1),
    "table2": (Table2Config, run_table2),
    "table3": (Table3Config, run_table3),
    "table4": (Table4Config, run_table4),
    "table5": (Table5Config, run_table5),
}


def available_experiments() -> List[str]:
    """Ids of all registered experiments (figures first, then tables)."""
    return sorted(_REGISTRY)


def experiment_config_fields(experiment_id: str) -> frozenset:
    """Names of the overridable config fields of one experiment.

    Every experiment config is a dataclass; this is the set of keyword
    overrides :func:`run_experiment` accepts for it (``random_state`` is
    common to all of them).
    """
    entry = _REGISTRY.get(experiment_id)
    if entry is None:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{', '.join(available_experiments())}"
        )
    config_factory = entry[0]
    if dataclasses.is_dataclass(config_factory):
        return frozenset(f.name for f in dataclasses.fields(config_factory))
    return frozenset()


def run_experiment(experiment_id: str, config=None, **config_overrides) -> ExperimentResult:
    """Run one experiment by id.

    ``config`` may be a prepared config object; otherwise the experiment's
    default config is created and ``config_overrides`` are applied to it.
    """
    entry = _REGISTRY.get(experiment_id)
    if entry is None:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{', '.join(available_experiments())}"
        )
    config_factory, runner = entry
    if config is None:
        config = config_factory(**config_overrides)
    elif config_overrides:
        raise ExperimentError("pass either a config object or overrides, not both")
    return runner(config)


def run_all(experiment_ids: Optional[List[str]] = None,
            progress: Optional[Callable[[str], None]] = None,
            workers: Optional[int] = None,
            config_overrides: Optional[Dict[str, Any]] = None) -> List[ExperimentResult]:
    """Run several (default: all) experiments with their default configs.

    ``workers`` > 1 fans the experiments out across a process pool, one
    worker task per experiment (each experiment seeds its own RNG from its
    config, so results are identical to a serial run).  Results are returned
    in the requested order either way.  ``workers=0`` or negative means one
    worker per available core.

    ``config_overrides`` are applied to each experiment's default config,
    filtered per experiment to the fields its config actually defines (see
    :func:`experiment_config_fields`) — e.g. ``random_state`` reseeds every
    experiment, while a field only some configs carry silently skips the
    rest.
    """
    from repro.core.parallel import resolve_workers

    ids = list(experiment_ids) if experiment_ids is not None else available_experiments()
    for experiment_id in ids:
        if experiment_id not in _REGISTRY:
            raise ExperimentError(
                f"unknown experiment {experiment_id!r}; available: "
                f"{', '.join(available_experiments())}"
            )
    overrides = dict(config_overrides or {})
    per_id: Dict[str, Dict[str, Any]] = {
        experiment_id: {
            key: value for key, value in overrides.items()
            if key in experiment_config_fields(experiment_id)
        }
        for experiment_id in ids
    }
    worker_count = resolve_workers(workers)
    if worker_count > 1 and len(ids) > 1:
        if progress is not None:
            for experiment_id in ids:
                progress(experiment_id)
        with ProcessPoolExecutor(max_workers=min(worker_count, len(ids))) as pool:
            futures = [
                pool.submit(run_experiment, experiment_id, **per_id[experiment_id])
                for experiment_id in ids
            ]
            return [future.result() for future in futures]
    results: List[ExperimentResult] = []
    for experiment_id in ids:
        if progress is not None:
            progress(experiment_id)
        results.append(run_experiment(experiment_id, **per_id[experiment_id]))
    return results


def render_report(results: List[ExperimentResult], markdown: bool = True) -> str:
    """Render a full experiments report (the body of EXPERIMENTS.md)."""
    parts: List[str] = []
    if markdown:
        parts.append("# Experiment results")
        parts.append("")
        parts.append(
            "Each section reproduces one table or figure of the paper on the "
            "synthetic substitute datasets (see DESIGN.md for the substitutions "
            "and EXPERIMENTS.md for the paper-vs-measured discussion)."
        )
        parts.append("")
    for result in results:
        parts.append(result.render(markdown=markdown))
        parts.append("")
    return "\n".join(parts)
