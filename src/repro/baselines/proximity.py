"""Proximity pattern mining (pFP), the positive-correlation competitor.

Khan, Yan and Wu ("Towards proximity pattern mining in large graphs",
SIGMOD 2010) mine *sets of events that frequently co-occur in local
neighbourhoods*.  The paper compares against it in Section 5.4 / Table 5 and
makes two points:

1. most highly positive TESC pairs are also found as proximity patterns, but
2. **rare** event pairs are missed, because proximity pattern mining is
   intrinsically a frequent-pattern problem (events must co-occur not only
   closely but also *frequently* closely).

This module implements a faithful-in-spirit, pair-oriented pFP variant with
the same two ingredients that drive that behaviour:

* **information propagation** — each node aggregates the events occurring in
  its ``hops``-neighbourhood into a per-event *strength*: the distance-damped
  occurrence count diluted by the neighbourhood size, with strengths below
  ``epsilon`` discarded (the ǫ cut-off of the pFP model);
* **aggregated support** — the support of a pattern is the total pattern
  strength accumulated over all nodes (the joint strength is the minimum of
  the member events' strengths), normalised by ``|V|``.  A pattern is
  reported when this support reaches ``minsup``.

A rare-but-structurally-correlated pair therefore falls below ``minsup`` even
though every one of its occurrences is tightly co-located — exactly the
failure mode Table 5 exercises — while frequent co-located pairs are found.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.events.attributed_graph import AttributedGraph
from repro.exceptions import ConfigurationError
from repro.graph.traversal import BFSEngine
from repro.utils.validation import check_fraction, check_positive_int


@dataclass(frozen=True)
class ProximityPattern:
    """A mined proximity pattern: a set of events with its aggregate support."""

    events: Tuple[str, ...]
    support: float

    def contains_pair(self, event_a: str, event_b: str) -> bool:
        """Whether the pattern covers both given events."""
        return event_a in self.events and event_b in self.events


class ProximityPatternMiner:
    """Pair-level proximity pattern mining with a minimum-support threshold.

    Parameters
    ----------
    attributed:
        The attributed graph to mine.
    minsup:
        Minimum normalised support for a pattern to be reported (the paper
        uses ``10 / |V|``, i.e. an aggregate pattern mass of ten nodes).
    hops:
        Neighbourhood radius used for event propagation (1 matches the local
        neighbourhoods of the paper's comparison).
    damping:
        Weight of an occurrence at distance ``d`` in the propagation step
        (``damping ** d``; the paper's comparison uses α = 1).
    epsilon:
        Minimum propagated strength for an event to count as present in a
        node's neighbourhood aggregate (``ǫ = 0.12`` in the paper's setup).
    """

    def __init__(
        self,
        attributed: AttributedGraph,
        minsup: float,
        hops: int = 1,
        damping: float = 1.0,
        epsilon: float = 0.12,
    ) -> None:
        self.attributed = attributed
        self.minsup = check_fraction(minsup, "minsup")
        self.hops = check_positive_int(hops, "hops")
        if not 0.0 < damping <= 1.0:
            raise ConfigurationError(f"damping must be in (0, 1], got {damping}")
        self.damping = damping
        self.epsilon = check_fraction(epsilon, "epsilon")
        self._engine = BFSEngine(attributed.csr)
        self._vicinity_cache: Optional[List[np.ndarray]] = None

    # -- propagation -------------------------------------------------------

    def _vicinities(self) -> List[np.ndarray]:
        """Per-node ``hops``-vicinities (cached across events)."""
        if self._vicinity_cache is None:
            self._vicinity_cache = [
                self._engine.vicinity(node, self.hops)
                for node in range(self.attributed.num_nodes)
            ]
        return self._vicinity_cache

    def _strength(self, event: str) -> np.ndarray:
        """Propagated, diluted, ǫ-filtered strength of ``event`` at every node.

        The strength at node ``v`` is the damping-weighted count of the
        event's occurrences within ``hops`` of ``v`` divided by the size of
        ``v``'s neighbourhood; values below ``epsilon`` are zeroed.
        """
        indicator = self.attributed.event_indicator(event).astype(float)
        strengths = np.zeros(self.attributed.num_nodes, dtype=float)
        for node, vicinity in enumerate(self._vicinities()):
            if vicinity.size == 0:
                continue
            if self.damping >= 1.0:
                mass = float(indicator[vicinity].sum())
            else:
                # Ring-by-ring damping: re-expand per level only when needed.
                mass = 0.0
                previous = np.array([node], dtype=np.int64)
                seen = {node}
                mass += float(indicator[node])
                for depth in range(1, self.hops + 1):
                    current = self._engine.vicinity(node, depth)
                    ring = [int(x) for x in current if int(x) not in seen]
                    seen.update(ring)
                    if ring:
                        mass += (self.damping ** depth) * float(
                            indicator[np.array(ring, dtype=np.int64)].sum()
                        )
            strength = mass / float(vicinity.size)
            strengths[node] = strength if strength >= self.epsilon else 0.0
        return strengths

    # -- mining -------------------------------------------------------------

    def pair_support(self, event_a: str, event_b: str) -> float:
        """Normalised aggregated support of the pair.

        ``support = (1/|V|) * sum_v min(strength_a(v), strength_b(v))``.
        """
        strength_a = self._strength(event_a)
        strength_b = self._strength(event_b)
        joint = np.minimum(strength_a, strength_b)
        return float(joint.sum()) / self.attributed.num_nodes

    def mine_pairs(self, events: Optional[Iterable[str]] = None) -> List[ProximityPattern]:
        """Mine all event pairs whose support reaches ``minsup``."""
        names = sorted(events) if events is not None else self.attributed.event_names()
        strengths = {name: self._strength(name) for name in names}
        patterns: List[ProximityPattern] = []
        num_nodes = self.attributed.num_nodes
        for event_a, event_b in combinations(names, 2):
            joint = np.minimum(strengths[event_a], strengths[event_b])
            support = float(joint.sum()) / num_nodes
            if support >= self.minsup:
                patterns.append(ProximityPattern(events=(event_a, event_b), support=support))
        patterns.sort(key=lambda pattern: pattern.support, reverse=True)
        return patterns

    def discovers_pair(self, event_a: str, event_b: str) -> bool:
        """Whether the pair would be reported (support >= minsup)."""
        return self.pair_support(event_a, event_b) >= self.minsup
