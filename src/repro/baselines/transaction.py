"""Transaction Correlation (TC): correlation without graph structure.

The paper contrasts TESC against treating each node as an isolated
market-basket transaction.  Two TC measures appear:

* **Lift** (Section 1): ``P(a, b) / (P(a) P(b))`` — values above 1 indicate
  attraction at the transaction level.
* **Kendall τ-b z-score** (Section 5.4): τ-b between the two binary
  occurrence indicator vectors, standardised with the same tie-corrected
  null variance used for TESC.  This is the "TC" column of Tables 1–4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.events.event_set import EventLayer
from repro.events.queries import contingency_table
from repro.exceptions import EstimationError
from repro.stats.hypothesis import SignificanceResult, decide
from repro.stats.kendall import kendall_tau_b, pair_concordance_sum
from repro.stats.ties import degenerate_ties, tie_corrected_sigma


@dataclass(frozen=True)
class TransactionCorrelation:
    """Result of a Transaction Correlation analysis of an event pair."""

    event_a: str
    event_b: str
    lift: float
    tau_b: float
    z_score: float
    p_value: float
    significance: SignificanceResult
    contingency: tuple

    @property
    def verdict(self):
        """Positive / negative / independent verdict at the test's alpha."""
        return self.significance.verdict


def lift(events: EventLayer, event_a: str, event_b: str) -> float:
    """Lift of the two events over the node transactions.

    ``lift = N * n11 / (|V_a| * |V_b|)`` where ``N`` is the number of nodes.
    Returns ``0.0`` when either event has no occurrences (no evidence).
    """
    n11, n10, n01, _n00 = contingency_table(events, event_a, event_b)
    size_a = n11 + n10
    size_b = n11 + n01
    if size_a == 0 or size_b == 0:
        return 0.0
    return events.num_nodes * n11 / (size_a * size_b)


def _binary_z_score(n11: int, n10: int, n01: int, n00: int) -> tuple:
    """Kendall τ-b and z-score for two binary vectors given their 2x2 table.

    For binary indicators the concordance numerator has the closed form
    ``S = n11 * n00 - n10 * n01`` and the tie groups are the value counts of
    each indicator; using the closed form avoids materialising the
    million-entry indicator vectors of the full graph.
    """
    n = n11 + n10 + n01 + n00
    if n < 2:
        raise EstimationError("at least two transactions are required")
    s = float(n11) * float(n00) - float(n10) * float(n01)

    ones_a = n11 + n10
    zeros_a = n - ones_a
    ones_b = n11 + n01
    zeros_b = n - ones_b

    # τ-b denominator.
    n0 = 0.5 * n * (n - 1)
    n1 = 0.5 * (ones_a * (ones_a - 1) + zeros_a * (zeros_a - 1))
    n2 = 0.5 * (ones_b * (ones_b - 1) + zeros_b * (zeros_b - 1))
    tau_denominator = np.sqrt((n0 - n1) * (n0 - n2))
    tau_b = float(s / tau_denominator) if tau_denominator > 0 else 0.0

    # Null sigma of S with the binary tie structure (Eq. 6).
    from repro.stats.ties import null_variance_numerator_with_ties

    ties_a = [size for size in (ones_a, zeros_a) if size >= 2]
    ties_b = [size for size in (ones_b, zeros_b) if size >= 2]
    if ones_a == 0 or zeros_a == 0 or ones_b == 0 or zeros_b == 0:
        return tau_b, 0.0
    variance = null_variance_numerator_with_ties(n, ties_a, ties_b)
    z_score = float(s / np.sqrt(variance)) if variance > 0 else 0.0
    return tau_b, z_score


def transaction_correlation(
    events: EventLayer,
    event_a: str,
    event_b: str,
    alpha: float = 0.05,
    alternative: str = "two-sided",
) -> TransactionCorrelation:
    """Full Transaction Correlation analysis of an event pair."""
    table = contingency_table(events, event_a, event_b)
    tau_b, z_score = _binary_z_score(*table)
    significance = decide(z_score, alpha, alternative)
    return TransactionCorrelation(
        event_a=event_a,
        event_b=event_b,
        lift=lift(events, event_a, event_b),
        tau_b=tau_b,
        z_score=z_score,
        p_value=significance.p_value,
        significance=significance,
        contingency=table,
    )


def transaction_tau_b_dense(
    indicator_a: np.ndarray, indicator_b: np.ndarray, kernel: str = "auto"
) -> float:
    """Reference τ-b on dense binary vectors (used to cross-check the closed form).

    Routed through the size-dispatched concordance kernels, so the dense
    cross-check stays usable on full-graph indicator vectors (O(N log N)
    instead of an N×N sign matrix).
    """
    if indicator_a.shape != indicator_b.shape:
        raise EstimationError("indicator vectors must have the same shape")
    return kendall_tau_b(
        indicator_a.astype(float), indicator_b.astype(float), kernel=kernel
    )


def transaction_z_dense(
    indicator_a: np.ndarray, indicator_b: np.ndarray, kernel: str = "auto"
) -> float:
    """Reference z-score on dense binary vectors (cross-check of the closed form)."""
    a = indicator_a.astype(float)
    b = indicator_b.astype(float)
    if degenerate_ties(a, b):
        return 0.0
    s = pair_concordance_sum(a, b, kernel=kernel)
    sigma = tie_corrected_sigma(a, b)
    return float(s / sigma) if sigma > 0 else 0.0
