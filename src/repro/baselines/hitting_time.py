"""Hitting-time based event affinity (the SIGMOD 2011 measure).

Guan et al. (SIGMOD 2011) assess the *self*-correlation of a single event
with a truncated-hitting-time proximity between event nodes.  The TESC paper
argues the measure does not transfer to two-event correlation because the
null distribution cannot be estimated without destroying each event's
internal structure; it also reports (Figure 10a discussion) that one hitting
time approximation costs ~170 ms versus ~5 ms for a 3-hop BFS, motivating the
density measure.

We implement the adapted two-event affinity so that the comparison can be
made concrete: the affinity of ``a`` and ``b`` is the average truncated
hitting probability from nodes of ``a`` to the node set of ``b`` (and
symmetrically), estimated by random walks.  It produces a score but — as the
paper stresses — no principled significance value; the benchmarks use it only
for cost and ranking comparisons.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.events.attributed_graph import AttributedGraph
from repro.exceptions import EstimationError
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_positive_int


def _walk_hit_fraction(
    attributed: AttributedGraph,
    sources: np.ndarray,
    targets: np.ndarray,
    max_steps: int,
    walks_per_source: int,
    rng: np.random.Generator,
) -> float:
    """Fraction of truncated random walks from ``sources`` that hit ``targets``."""
    target_marker = np.zeros(attributed.num_nodes, dtype=bool)
    target_marker[targets] = True
    graph = attributed.csr
    hits = 0
    total = 0
    for source in sources:
        for _ in range(walks_per_source):
            total += 1
            node = int(source)
            for _step in range(max_steps):
                neighbours = graph.neighbors(node)
                if neighbours.size == 0:
                    break
                node = int(neighbours[int(rng.integers(0, neighbours.size))])
                if target_marker[node]:
                    hits += 1
                    break
    if total == 0:
        raise EstimationError("no walks were simulated")
    return hits / total


def hitting_time_affinity(
    attributed: AttributedGraph,
    event_a: str,
    event_b: str,
    max_steps: int = 5,
    walks_per_source: int = 10,
    max_sources: Optional[int] = 200,
    random_state: RandomState = None,
) -> float:
    """Symmetric truncated-hitting affinity between two events in [0, 1].

    Parameters
    ----------
    max_steps:
        Truncation length of each random walk (the hitting-time horizon).
    walks_per_source:
        Monte-Carlo walks started from each sampled event node.
    max_sources:
        Cap on the number of event nodes used as walk sources per direction
        (``None`` uses all of them).
    """
    check_positive_int(max_steps, "max_steps")
    check_positive_int(walks_per_source, "walks_per_source")
    rng = ensure_rng(random_state)

    nodes_a = attributed.event_nodes(event_a)
    nodes_b = attributed.event_nodes(event_b)
    if nodes_a.size == 0 or nodes_b.size == 0:
        raise EstimationError("both events need at least one occurrence")

    def subsample(nodes: np.ndarray) -> np.ndarray:
        if max_sources is None or nodes.size <= max_sources:
            return nodes
        return rng.choice(nodes, size=max_sources, replace=False)

    forward = _walk_hit_fraction(
        attributed, subsample(nodes_a), nodes_b, max_steps, walks_per_source, rng
    )
    backward = _walk_hit_fraction(
        attributed, subsample(nodes_b), nodes_a, max_steps, walks_per_source, rng
    )
    return 0.5 * (forward + backward)
