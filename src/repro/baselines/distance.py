"""The average-distance strawman with an empirical randomisation test.

Section 6 discusses the "straightforward" alternative to TESC: measure the
average graph distance between nodes of the two events and judge significance
by randomly re-placing the events ("perturbing events a and b independently
... and calculating the empirical distribution of the measure").  The paper
points out why this is unsatisfying — it is hard to preserve each event's
internal structure under randomisation, and the empirical test is expensive —
but implements of the strawman makes that comparison concrete in the
ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.events.attributed_graph import AttributedGraph
from repro.exceptions import EstimationError
from repro.graph.traversal import shortest_path_lengths_from
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_positive_int


def average_distance_measure(
    attributed: AttributedGraph,
    event_a: str,
    event_b: str,
    max_sources: Optional[int] = 100,
    unreachable_penalty: Optional[float] = None,
    random_state: RandomState = None,
) -> float:
    """Mean shortest-path distance from event-a nodes to the nearest event-b node.

    Unreachable pairs contribute ``unreachable_penalty`` (default: the number
    of nodes, an upper bound on any finite distance).  Smaller values mean
    the events sit closer together on the graph.
    """
    rng = ensure_rng(random_state)
    nodes_a = attributed.event_nodes(event_a)
    nodes_b = attributed.event_nodes(event_b)
    if nodes_a.size == 0 or nodes_b.size == 0:
        raise EstimationError("both events need at least one occurrence")
    if unreachable_penalty is None:
        unreachable_penalty = float(attributed.num_nodes)

    if max_sources is not None and nodes_a.size > max_sources:
        nodes_a = rng.choice(nodes_a, size=max_sources, replace=False)

    marker_b = np.zeros(attributed.num_nodes, dtype=bool)
    marker_b[nodes_b] = True

    total = 0.0
    for source in nodes_a:
        distances = shortest_path_lengths_from(attributed.csr, int(source))
        reachable = distances[marker_b & (distances >= 0)]
        total += float(reachable.min()) if reachable.size else unreachable_penalty
    return total / nodes_a.size


@dataclass(frozen=True)
class RandomizationResult:
    """Outcome of the empirical randomisation test."""

    observed: float
    null_mean: float
    null_std: float
    empirical_p_value: float
    num_randomizations: int

    @property
    def z_score(self) -> float:
        """Observed value standardised by the empirical null distribution."""
        if self.null_std == 0:
            return 0.0
        return (self.observed - self.null_mean) / self.null_std


def randomization_test(
    attributed: AttributedGraph,
    event_a: str,
    event_b: str,
    num_randomizations: int = 20,
    max_sources: Optional[int] = 50,
    random_state: RandomState = None,
) -> RandomizationResult:
    """Empirical test of the average-distance measure.

    Event b is re-placed uniformly at random (with its observed size) in each
    randomisation round — precisely the "perturb events independently" recipe
    whose inability to preserve internal event structure the paper criticises.
    The empirical p-value is the fraction of rounds whose average distance is
    at most the observed one (one-sided test for attraction).
    """
    check_positive_int(num_randomizations, "num_randomizations")
    rng = ensure_rng(random_state)

    observed = average_distance_measure(
        attributed, event_a, event_b, max_sources=max_sources, random_state=rng
    )

    size_b = attributed.event_nodes(event_b).size
    null_values = np.empty(num_randomizations, dtype=float)
    for index in range(num_randomizations):
        random_nodes = rng.choice(attributed.num_nodes, size=size_b, replace=False)
        shadow = AttributedGraph(
            attributed.csr,
            {
                event_a: attributed.event_nodes(event_a),
                event_b: random_nodes,
            },
        )
        null_values[index] = average_distance_measure(
            shadow, event_a, event_b, max_sources=max_sources, random_state=rng
        )

    at_most_observed = int(np.count_nonzero(null_values <= observed))
    empirical_p = (at_most_observed + 1) / (num_randomizations + 1)
    return RandomizationResult(
        observed=float(observed),
        null_mean=float(null_values.mean()),
        null_std=float(null_values.std(ddof=1)) if num_randomizations > 1 else 0.0,
        empirical_p_value=float(empirical_p),
        num_randomizations=num_randomizations,
    )
