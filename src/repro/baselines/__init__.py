"""Baselines and comparators used in the paper's evaluation.

* :mod:`repro.baselines.transaction` — Transaction Correlation (TC): Lift and
  the Kendall τ-b z-score over nodes treated as isolated transactions
  (the comparison column of Tables 1–4).
* :mod:`repro.baselines.proximity` — proximity pattern mining (the pFP
  algorithm of Khan et al., SIGMOD 2010), the positive-correlation competitor
  of Section 5.4 / Table 5.
* :mod:`repro.baselines.hitting_time` — hitting-time based affinity in the
  spirit of Guan et al. (SIGMOD 2011), the measure the paper argues is
  unsuitable for TESC.
* :mod:`repro.baselines.distance` — the "average distance between the two
  events + randomisation test" strawman discussed in Section 6.
"""

from repro.baselines.transaction import (
    TransactionCorrelation,
    lift,
    transaction_correlation,
)
from repro.baselines.proximity import ProximityPattern, ProximityPatternMiner
from repro.baselines.hitting_time import hitting_time_affinity
from repro.baselines.distance import average_distance_measure, randomization_test

__all__ = [
    "TransactionCorrelation",
    "lift",
    "transaction_correlation",
    "ProximityPattern",
    "ProximityPatternMiner",
    "hitting_time_affinity",
    "average_distance_measure",
    "randomization_test",
]
