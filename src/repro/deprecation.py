"""Deprecation plumbing for the pre-``Session`` public surface.

PR 7 fronted the five engines with one façade
(:func:`repro.api.open_session`); the engines stay importable and fully
functional, but *direct construction from user code* is deprecated so the
public surface can converge on the Session API.  The helper here emits the
:class:`DeprecationWarning` only when the constructing frame lives outside
the ``repro`` package — the façade, the service, the CLI and the experiment
harness all build engines internally and must stay silent.
"""

from __future__ import annotations

import sys
import warnings


def _caller_module(depth: int) -> str:
    """``__name__`` of the frame ``depth`` levels above this one ('' if gone)."""
    try:
        frame = sys._getframe(depth)
    except ValueError:  # pragma: no cover - stack shallower than depth
        return ""
    return frame.f_globals.get("__name__", "") or ""


def warn_deprecated_construction(name: str, replacement: str) -> None:
    """Warn about direct construction of ``name`` from non-``repro`` code.

    Call as the first statement of the deprecated class's ``__init__``; the
    frame two levels up is then the code that invoked the constructor.
    Internal callers (``repro`` and every ``repro.*`` module, including the
    Session façade) are exempt, so library-internal composition never spams.
    """
    module = _caller_module(3)
    if module == "repro" or module.startswith("repro."):
        return
    warnings.warn(
        f"constructing {name} directly is deprecated; use "
        f"{replacement} instead (see repro.api.open_session)",
        DeprecationWarning,
        stacklevel=3,
    )
