"""Event layer: events occurring on graph nodes.

The paper abstracts node data (purchased products, paper keywords, intrusion
alerts) as *events*; each node ``v`` carries a set of events ``Q_v`` and each
event ``a`` has an occurrence set ``V_a``.  :class:`EventLayer` stores this
mapping in both directions, and :class:`AttributedGraph` bundles a graph with
its event layer — the object the public TESC API operates on.
"""

from repro.events.event_set import EventLayer
from repro.events.attributed_graph import AttributedGraph
from repro.events.queries import (
    contingency_table,
    event_node_union,
    jaccard_overlap,
    cooccurrence_count,
)
from repro.events.intensity import IntensityMap

__all__ = [
    "EventLayer",
    "AttributedGraph",
    "contingency_table",
    "event_node_union",
    "jaccard_overlap",
    "cooccurrence_count",
    "IntensityMap",
]
