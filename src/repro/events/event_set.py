"""Event occurrence storage.

:class:`EventLayer` is a two-way index between event names and the nodes on
which they occur: ``V_a`` lookups (event → sorted node array) and ``Q_v``
lookups (node → event names).  Occurrences are sets — a node either has an
event or it does not; per-node intensities are modelled separately in
:mod:`repro.events.intensity`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Set

import numpy as np

from repro.exceptions import EventError, UnknownEventError


class EventLayer:
    """Mapping between events and the graph nodes they occur on.

    Parameters
    ----------
    num_nodes:
        Number of nodes in the underlying graph; occurrences outside
        ``[0, num_nodes)`` are rejected.

    Examples
    --------
    >>> layer = EventLayer(num_nodes=10)
    >>> layer.add_occurrences("wireless", [1, 2, 3])
    >>> layer.add_occurrence("sensor", 2)
    >>> sorted(layer.events_of(2))
    ['sensor', 'wireless']
    >>> list(layer.nodes_of("wireless"))
    [1, 2, 3]
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
        self.num_nodes = num_nodes
        self._event_to_nodes: Dict[str, Set[int]] = {}
        self._node_to_events: Dict[int, Set[str]] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every mutation.

        Callers that memoise derived data (e.g. the indicator cache on
        :class:`~repro.events.attributed_graph.AttributedGraph`) compare this
        counter to detect staleness instead of hashing the occurrence sets.
        """
        return self._version

    # -- construction -------------------------------------------------------

    def add_occurrence(self, event: str, node: int) -> bool:
        """Record that ``event`` occurred on ``node``.

        Returns ``True`` when the occurrence is new, ``False`` for a repeat
        (occurrences are sets).  The :attr:`version` counter is bumped only
        on an actual change, so memoised indicators survive no-op replays of
        a delta stream.
        """
        if not isinstance(event, str) or not event:
            raise EventError(f"event name must be a non-empty string, got {event!r}")
        node = int(node)
        if not (0 <= node < self.num_nodes):
            raise EventError(
                f"node {node} is outside the graph (num_nodes={self.num_nodes})"
            )
        nodes = self._event_to_nodes.setdefault(event, set())
        if node in nodes:
            return False
        nodes.add(node)
        self._node_to_events.setdefault(node, set()).add(event)
        self._version += 1
        return True

    def remove_occurrence(self, event: str, node: int) -> bool:
        """Erase one occurrence of ``event`` on ``node``.

        Returns ``True`` when the occurrence existed and was removed,
        ``False`` when it was absent (including unknown events) — streaming
        detach deltas replay idempotently.  An event whose last occurrence is
        removed stays registered with an empty node set, so monitored events
        keep resolving (with zero occurrences) rather than raising.
        """
        node = int(node)
        nodes = self._event_to_nodes.get(event)
        if nodes is None or node not in nodes:
            return False
        nodes.discard(node)
        events = self._node_to_events.get(node)
        if events is not None:
            events.discard(event)
            if not events:
                del self._node_to_events[node]
        self._version += 1
        return True

    def add_occurrences(self, event: str, nodes: Iterable[int]) -> None:
        """Record that ``event`` occurred on every node in ``nodes``."""
        for node in nodes:
            self.add_occurrence(event, int(node))

    @classmethod
    def from_mapping(cls, num_nodes: int,
                     mapping: Mapping[str, Iterable[int]]) -> "EventLayer":
        """Build a layer from ``{event: iterable of node ids}``."""
        layer = cls(num_nodes)
        for event, nodes in mapping.items():
            layer.add_occurrences(event, nodes)
        return layer

    def remove_event(self, event: str) -> None:
        """Remove an event and all its occurrences."""
        nodes = self._event_to_nodes.pop(event, None)
        if nodes is None:
            raise UnknownEventError(event)
        self._version += 1
        for node in nodes:
            events = self._node_to_events.get(node)
            if events is not None:
                events.discard(event)
                if not events:
                    del self._node_to_events[node]

    # -- queries --------------------------------------------------------------

    def events(self) -> List[str]:
        """All event names, sorted."""
        return sorted(self._event_to_nodes)

    def __contains__(self, event: str) -> bool:
        return event in self._event_to_nodes

    def __len__(self) -> int:
        return len(self._event_to_nodes)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._event_to_nodes))

    def has_event(self, event: str) -> bool:
        """Whether ``event`` has at least one occurrence."""
        return event in self._event_to_nodes

    def nodes_of(self, event: str) -> np.ndarray:
        """``V_event`` as a sorted int64 array."""
        nodes = self._event_to_nodes.get(event)
        if nodes is None:
            raise UnknownEventError(event)
        return np.array(sorted(nodes), dtype=np.int64)

    def occurrence_count(self, event: str) -> int:
        """``|V_event|``."""
        nodes = self._event_to_nodes.get(event)
        if nodes is None:
            raise UnknownEventError(event)
        return len(nodes)

    def events_of(self, node: int) -> Set[str]:
        """``Q_node`` — the set of events occurring on ``node`` (a copy)."""
        return set(self._node_to_events.get(int(node), set()))

    def indicator(self, event: str) -> np.ndarray:
        """Boolean vector of length ``num_nodes``: node has ``event``."""
        marked = np.zeros(self.num_nodes, dtype=bool)
        marked[self.nodes_of(event)] = True
        return marked

    def event_sizes(self) -> Dict[str, int]:
        """``{event: |V_event|}`` for all events."""
        return {event: len(nodes) for event, nodes in self._event_to_nodes.items()}

    def to_mapping(self) -> Dict[str, List[int]]:
        """Plain ``{event: sorted node list}`` representation (for IO)."""
        return {event: sorted(nodes) for event, nodes in self._event_to_nodes.items()}

    def restore_version(self, version: int) -> None:
        """Pin the :attr:`version` counter to a recovered value.

        Used when the layer is rebuilt from a checkpoint: the occurrences are
        reconstructed via :meth:`from_mapping` (which bumps the counter once
        per occurrence), then the counter is pinned to the version recorded
        in the manifest so caches keyed by ``(structure_version,
        events.version)`` keep matching across a restart.
        """
        self._version = int(version)

    def copy(self) -> "EventLayer":
        """Deep copy of the layer.

        Events whose occurrence set has been emptied (e.g. by streaming
        detach deltas) stay registered in the copy.  The :attr:`version`
        counter is preserved, so a snapshot's copied layer still identifies
        the graph state it was taken from — caches keyed by
        ``(structure_version, events.version)`` (shared-memory dataset
        publications, indicator caches) must not conflate two snapshots of
        different states taken at the same structure version.
        """
        clone = EventLayer(self.num_nodes)
        clone._event_to_nodes = {
            event: set(nodes) for event, nodes in self._event_to_nodes.items()
        }
        clone._node_to_events = {
            node: set(events) for node, events in self._node_to_events.items()
        }
        clone._version = self._version
        return clone

    def __repr__(self) -> str:
        return (
            f"EventLayer(num_nodes={self.num_nodes}, "
            f"num_events={len(self._event_to_nodes)})"
        )
