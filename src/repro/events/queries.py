"""Event-pair queries used by the TESC measure and the baselines."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.events.event_set import EventLayer


def event_node_union(events: EventLayer, event_a: str, event_b: str) -> np.ndarray:
    """``V_{a∪b}``: nodes carrying at least one of the two events."""
    return np.union1d(events.nodes_of(event_a), events.nodes_of(event_b))


def cooccurrence_count(events: EventLayer, event_a: str, event_b: str) -> int:
    """``|V_a ∩ V_b|``: nodes carrying both events."""
    return int(np.intersect1d(events.nodes_of(event_a), events.nodes_of(event_b)).size)


def jaccard_overlap(events: EventLayer, event_a: str, event_b: str) -> float:
    """Jaccard similarity of the two occurrence sets."""
    union = event_node_union(events, event_a, event_b).size
    if union == 0:
        return 0.0
    return cooccurrence_count(events, event_a, event_b) / union


def contingency_table(events: EventLayer, event_a: str,
                      event_b: str) -> Tuple[int, int, int, int]:
    """The 2x2 transaction contingency table over all graph nodes.

    Returns ``(n11, n10, n01, n00)`` where ``n11`` counts nodes carrying both
    events, ``n10`` only ``a``, ``n01`` only ``b`` and ``n00`` neither.  This
    is the table the Transaction Correlation baselines (Lift, Kendall τ-b)
    are computed from — the nodes are treated as isolated market-basket
    transactions with no graph structure.
    """
    size_a = events.occurrence_count(event_a)
    size_b = events.occurrence_count(event_b)
    both = cooccurrence_count(events, event_a, event_b)
    n11 = both
    n10 = size_a - both
    n01 = size_b - both
    n00 = events.num_nodes - size_a - size_b + both
    return n11, n10, n01, n00
