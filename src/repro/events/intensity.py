"""Per-node event intensity (Section 6 extension).

The paper's future-work discussion suggests "consider[ing] event intensity on
nodes, e.g. the frequency by which an author used a keyword".  The intensity
map stores such per-(event, node) counts, and the weighted density extension
in :mod:`repro.core.weighted` consumes them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

import numpy as np

from repro.exceptions import EventError
from repro.events.event_set import EventLayer


class IntensityMap:
    """Per-node occurrence intensities for events.

    Intensities default to 1.0 for any occurrence that has no explicit
    intensity recorded, so an :class:`IntensityMap` is always consistent with
    the binary :class:`EventLayer` it annotates.
    """

    def __init__(self, events: EventLayer) -> None:
        self.events = events
        self._intensity: Dict[Tuple[str, int], float] = {}

    def set_intensity(self, event: str, node: int, value: float) -> None:
        """Record that ``event`` occurred on ``node`` with ``value`` intensity."""
        if value < 0:
            raise EventError(f"intensity must be non-negative, got {value}")
        if not self.events.has_event(event):
            raise EventError(f"event {event!r} has no occurrences in the layer")
        node = int(node)
        occurrences = self.events.nodes_of(event)
        if node not in set(int(x) for x in occurrences):
            raise EventError(f"event {event!r} does not occur on node {node}")
        self._intensity[(event, node)] = float(value)

    def update(self, event: str, values: Mapping[int, float]) -> None:
        """Record intensities for many nodes of one event."""
        for node, value in values.items():
            self.set_intensity(event, node, value)

    def intensity(self, event: str, node: int) -> float:
        """Intensity of ``event`` on ``node`` (0 if the event is absent there)."""
        node = int(node)
        explicit = self._intensity.get((event, node))
        if explicit is not None:
            return explicit
        if event in self.events.events_of(node):
            return 1.0
        return 0.0

    def intensity_vector(self, event: str) -> np.ndarray:
        """Dense vector of intensities for ``event`` over all nodes."""
        vector = np.zeros(self.events.num_nodes, dtype=float)
        for node in self.events.nodes_of(event):
            vector[int(node)] = self.intensity(event, int(node))
        return vector

    def total_intensity(self, event: str, nodes: Iterable[int]) -> float:
        """Sum of intensities of ``event`` over ``nodes``."""
        members = set(int(x) for x in self.events.nodes_of(event))
        return float(
            sum(self.intensity(event, int(node)) for node in nodes if int(node) in members)
        )
