"""The attributed graph: a graph plus its event layer.

:class:`AttributedGraph` is the central user-facing object.  It owns the CSR
graph used by traversal, the :class:`~repro.events.event_set.EventLayer`, an
optional node-label list, and a lazily built
:class:`~repro.graph.vicinity.VicinityIndex` shared by the samplers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.events.event_set import EventLayer
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.graph.vicinity import VicinityIndex


class AttributedGraph:
    """A graph whose nodes carry events.

    Parameters
    ----------
    graph:
        Either a mutable :class:`Graph` or an immutable :class:`CSRGraph`.
        Mutable graphs are converted to CSR once at construction time.
    events:
        An :class:`EventLayer`, or a plain ``{event: node ids}`` mapping.
    labels:
        Optional human-readable node labels (author names, IPs, ...).
    """

    def __init__(
        self,
        graph: Union[Graph, CSRGraph],
        events: Union[EventLayer, Mapping[str, Iterable[int]], None] = None,
        labels: Optional[Sequence[str]] = None,
    ) -> None:
        if isinstance(graph, Graph):
            self.csr = graph.to_csr()
        elif isinstance(graph, CSRGraph):
            self.csr = graph
        else:
            raise TypeError(f"graph must be Graph or CSRGraph, got {type(graph).__name__}")

        if events is None:
            self.events = EventLayer(self.csr.num_nodes)
        elif isinstance(events, EventLayer):
            if events.num_nodes != self.csr.num_nodes:
                raise ValueError(
                    "event layer covers a different number of nodes than the graph"
                )
            self.events = events
        else:
            self.events = EventLayer.from_mapping(self.csr.num_nodes, events)

        if labels is not None and len(labels) != self.csr.num_nodes:
            raise ValueError("labels length must equal the number of nodes")
        self.labels = list(labels) if labels is not None else None
        self._vicinity_index: Optional[VicinityIndex] = None
        self._indicator_cache: Dict[str, np.ndarray] = {}
        self._indicator_cache_version = self.events.version

    # -- basic delegation -----------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the graph."""
        return self.csr.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of undirected edges in the graph."""
        return self.csr.num_edges

    def label_of(self, node: int) -> str:
        """Human-readable label for ``node`` (falls back to the id)."""
        if self.labels is None:
            return str(node)
        return str(self.labels[node])

    def versions(self) -> tuple:
        """``(structure_version, events_version)`` of the current state.

        The pair uniquely identifies one graph state: dynamic graphs bump
        ``structure_version`` on every effective structural commit, the
        event layer bumps its version on every occurrence change.  Static
        graphs report structure version ``0``.  Snapshot handles pin this
        pair, and every version-keyed cache (indicator cache, shared-memory
        dataset publication, service epoch map) derives its key from it.
        """
        return (
            int(getattr(self, "structure_version", 0)),
            int(self.events.version),
        )

    def snapshot(self) -> "AttributedGraph":
        """A static copy of the current state (shared CSR, copied events).

        The CSR is immutable and therefore shared; the event layer is
        deep-copied (version preserved), so later mutations of this graph
        leave the returned snapshot untouched.
        :class:`~repro.streaming.dynamic_graph.DynamicAttributedGraph`
        overrides this with an epoch-memoised variant backed by the lease
        table.
        """
        return AttributedGraph(self.csr, self.events.copy(), labels=self.labels)

    # -- event helpers ---------------------------------------------------------

    def event_nodes(self, event: str) -> np.ndarray:
        """``V_event`` as a sorted array."""
        return self.events.nodes_of(event)

    def event_union(self, event_a: str, event_b: str) -> np.ndarray:
        """``V_{a∪b}`` — nodes having at least one of the two events."""
        return np.union1d(self.events.nodes_of(event_a), self.events.nodes_of(event_b))

    def event_indicator(self, event: str) -> np.ndarray:
        """Boolean occurrence vector for ``event`` (memoised).

        Indicators are cached per event and invalidated whenever the event
        layer mutates, so batch workloads that revisit the same events
        (:class:`~repro.core.batch.BatchTescEngine`, Tables 1–5 loops) build
        each vector once.  The returned array is shared — treat it as
        read-only.
        """
        if self._indicator_cache_version != self.events.version:
            self._indicator_cache.clear()
            self._indicator_cache_version = self.events.version
        cached = self._indicator_cache.get(event)
        if cached is None:
            cached = self.events.indicator(event)
            cached.setflags(write=False)
            self._indicator_cache[event] = cached
        return cached

    def indicator_matrix(self, events: Sequence[str]) -> np.ndarray:
        """Stacked boolean indicators, one row per event in ``events``.

        The ``(len(events), num_nodes)`` matrix feeds
        :meth:`~repro.core.density.DensityComputer.density_matrix`, which
        reads the densities of *all* events off each reference vicinity in
        one vectorised pass.  Rows come from the per-event indicator cache.
        """
        if not events:
            return np.zeros((0, self.num_nodes), dtype=bool)
        return np.stack([self.event_indicator(event) for event in events])

    def event_names(self) -> List[str]:
        """All event names."""
        return self.events.events()

    # -- indices ---------------------------------------------------------------

    def vicinity_index(self, levels: Iterable[int] = (1, 2, 3)) -> VicinityIndex:
        """The shared lazily-populated vicinity-size index.

        The first call creates the index; later calls return the same object
        as long as the requested levels are covered, otherwise a new index is
        created covering the union of levels.
        """
        requested = tuple(sorted(set(int(level) for level in levels)))
        if self._vicinity_index is None or any(
            level not in self._vicinity_index.levels for level in requested
        ):
            merged = requested
            if self._vicinity_index is not None:
                merged = tuple(sorted(set(requested) | set(self._vicinity_index.levels)))
            self._vicinity_index = VicinityIndex(self.csr, levels=merged, lazy=True)
        return self._vicinity_index

    def invalidate_vicinity(self, nodes: Optional[Iterable[int]] = None) -> None:
        """Drop memoised vicinity sizes after a graph mutation.

        ``nodes=None`` clears the whole index; otherwise only the given nodes
        are invalidated (pass every node whose vicinity may have changed —
        nodes within ``h - 1`` hops of a touched edge endpoint).  This is the
        public partial-invalidation seam for code that mutates graphs by
        means other than the streaming delta path (which rebases its index
        via :meth:`~repro.graph.vicinity.VicinityIndex.rebase` instead); it
        is a no-op while no vicinity index has been built yet.
        """
        if self._vicinity_index is not None:
            self._vicinity_index.invalidate(nodes)

    # -- summaries ---------------------------------------------------------------

    def event_summary(self) -> Dict[str, int]:
        """``{event: occurrence count}`` over all events."""
        return self.events.event_sizes()

    def __repr__(self) -> str:
        return (
            f"AttributedGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges}, "
            f"num_events={len(self.events)})"
        )
