"""Kendall rank correlation primitives.

The TESC statistic (Eq. 3/4) is a Kendall τ computed over reference-node
density vectors, and the Transaction Correlation baseline uses Kendall τ-b
over binary transaction vectors (Section 5.4).  This module provides:

* :func:`pair_concordance_sum` — ``S = #concordant − #discordant`` pairs,
  i.e. the numerator of Eq. 4.
* :func:`weighted_pair_concordance` — the weighted numerator and denominator
  of the importance-sampling estimator ``t̃`` (Eq. 8).
* :func:`kendall_tau_a` and :func:`kendall_tau_b` — the classic coefficients.

For the sample sizes the paper uses (``n`` around 900) a vectorised ``O(n²)``
computation is fast (<10 ms) and, unlike the ``O(n log n)`` merge-sort trick,
extends directly to the weighted estimator, so that is what we use.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import EstimationError


def _as_vector(values, name: str) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise EstimationError(f"{name} must be a 1-D vector, got shape {array.shape}")
    return array


def concordance_matrix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Pairwise concordance signs ``c(i, j)`` as an ``n x n`` matrix.

    ``c(i, j) = sign((x_i - x_j) * (y_i - y_j))`` — +1 for concordant pairs,
    −1 for discordant pairs and 0 for ties, exactly Eq. 1 with the densities
    already computed.  Only useful for small ``n`` (tests, diagnostics).
    """
    x = _as_vector(x, "x")
    y = _as_vector(y, "y")
    if x.size != y.size:
        raise EstimationError("x and y must have the same length")
    dx = np.sign(x[:, None] - x[None, :])
    dy = np.sign(y[:, None] - y[None, :])
    return (dx * dy).astype(np.int64)


def pair_concordance_sum(x: np.ndarray, y: np.ndarray) -> int:
    """``S = #concordant − #discordant`` over all unordered pairs.

    This is the numerator ``sum_{i<j} c(r_i, r_j)`` of Eq. 4.
    """
    x = _as_vector(x, "x")
    y = _as_vector(y, "y")
    if x.size != y.size:
        raise EstimationError("x and y must have the same length")
    if x.size < 2:
        raise EstimationError("at least two observations are required")
    dx = np.sign(x[:, None] - x[None, :])
    dy = np.sign(y[:, None] - y[None, :])
    total = float((dx * dy).sum())  # counts each unordered pair twice; diagonal is 0
    return int(round(total / 2.0))


def weighted_pair_concordance(
    x: np.ndarray, y: np.ndarray, pair_weights: np.ndarray
) -> Tuple[float, float]:
    """Weighted concordance numerator and denominator of Eq. 8.

    ``pair_weights[i]`` is the per-node weight ``w_i / p(r_i)``; the pair
    weight used by the estimator is the product of the two node weights.
    Returns ``(sum_{i<j} c_ij * W_ij, sum_{i<j} W_ij)``.
    """
    x = _as_vector(x, "x")
    y = _as_vector(y, "y")
    weights = _as_vector(pair_weights, "pair_weights")
    if not (x.size == y.size == weights.size):
        raise EstimationError("x, y and pair_weights must have the same length")
    if x.size < 2:
        raise EstimationError("at least two observations are required")
    if np.any(weights < 0):
        raise EstimationError("pair_weights must be non-negative")
    dx = np.sign(x[:, None] - x[None, :])
    dy = np.sign(y[:, None] - y[None, :])
    weight_matrix = weights[:, None] * weights[None, :]
    concordance = dx * dy
    numerator = float((concordance * weight_matrix).sum() / 2.0)
    denominator = float(
        (weight_matrix.sum() - np.sum(weights * weights)) / 2.0
    )
    return numerator, denominator


def kendall_tau_a(x: np.ndarray, y: np.ndarray) -> float:
    """Kendall τ-a: ``S / (n(n-1)/2)`` — Eq. 3/4 of the paper."""
    x = _as_vector(x, "x")
    n = x.size
    if n < 2:
        raise EstimationError("at least two observations are required")
    s = pair_concordance_sum(x, y)
    return float(s) / (0.5 * n * (n - 1))


def kendall_tau_b(x: np.ndarray, y: np.ndarray) -> float:
    """Kendall τ-b: tie-adjusted coefficient used for Transaction Correlation.

    ``τ_b = S / sqrt((n0 - n1)(n0 - n2))`` where ``n0 = n(n-1)/2`` and
    ``n1``/``n2`` are the numbers of tied pairs within ``x``/``y``.  Returns
    0.0 when either variable is constant (the coefficient is undefined; zero
    is the conventional "no detectable correlation" value).
    """
    x = _as_vector(x, "x")
    y = _as_vector(y, "y")
    if x.size != y.size:
        raise EstimationError("x and y must have the same length")
    n = x.size
    if n < 2:
        raise EstimationError("at least two observations are required")
    from repro.stats.ties import tie_group_sizes

    s = pair_concordance_sum(x, y)
    n0 = 0.5 * n * (n - 1)
    ties_x = tie_group_sizes(x)
    ties_y = tie_group_sizes(y)
    n1 = float(sum(t * (t - 1) / 2.0 for t in ties_x))
    n2 = float(sum(t * (t - 1) / 2.0 for t in ties_y))
    denominator = np.sqrt((n0 - n1) * (n0 - n2))
    if denominator == 0:
        return 0.0
    return float(s / denominator)
