"""Kendall rank correlation primitives.

The TESC statistic (Eq. 3/4) is a Kendall τ computed over reference-node
density vectors, and the Transaction Correlation baseline uses Kendall τ-b
over binary transaction vectors (Section 5.4).  This module provides:

* :func:`pair_concordance_sum` — ``S = #concordant − #discordant`` pairs,
  i.e. the numerator of Eq. 4.
* :func:`weighted_pair_concordance` — the weighted numerator and denominator
  of the importance-sampling estimator ``t̃`` (Eq. 8).
* :func:`kendall_tau_a` and :func:`kendall_tau_b` — the classic coefficients.

All four validate their inputs and then route through the size-dispatched
kernels of :mod:`repro.stats.fast_kendall`: a vectorised ``O(n²)``
sign-matrix kernel below the crossover (~200 observations, where its small
constant wins) and the exact ``O(n log n)`` merge-sort / Fenwick-tree
kernels above it.  ``kernel`` accepts ``"auto"`` (default), ``"naive"`` or
``"fast"`` to force a path; the unweighted kernels return the same integer
``S`` either way, so dispatch never changes a result.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import EstimationError
from repro.stats.fast_kendall import concordance_sum, weighted_concordance


def _as_vector(values, name: str) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise EstimationError(f"{name} must be a 1-D vector, got shape {array.shape}")
    return array


def concordance_matrix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Pairwise concordance signs ``c(i, j)`` as an ``n x n`` matrix.

    ``c(i, j) = sign((x_i - x_j) * (y_i - y_j))`` — +1 for concordant pairs,
    −1 for discordant pairs and 0 for ties, exactly Eq. 1 with the densities
    already computed.  Only useful for small ``n`` (tests, diagnostics).
    """
    x = _as_vector(x, "x")
    y = _as_vector(y, "y")
    if x.size != y.size:
        raise EstimationError("x and y must have the same length")
    dx = np.sign(x[:, None] - x[None, :])
    dy = np.sign(y[:, None] - y[None, :])
    return (dx * dy).astype(np.int64)


def pair_concordance_sum(
    x: np.ndarray,
    y: np.ndarray,
    kernel: str = "auto",
    crossover: Optional[int] = None,
) -> int:
    """``S = #concordant − #discordant`` over all unordered pairs.

    This is the numerator ``sum_{i<j} c(r_i, r_j)`` of Eq. 4.  ``kernel``
    selects the concordance kernel (see :mod:`repro.stats.fast_kendall`);
    the result is the same exact integer on every path.
    """
    x = _as_vector(x, "x")
    y = _as_vector(y, "y")
    if x.size != y.size:
        raise EstimationError("x and y must have the same length")
    if x.size < 2:
        raise EstimationError("at least two observations are required")
    return concordance_sum(x, y, kernel=kernel, crossover=crossover)


def weighted_pair_concordance(
    x: np.ndarray,
    y: np.ndarray,
    pair_weights: np.ndarray,
    kernel: str = "auto",
    crossover: Optional[int] = None,
) -> Tuple[float, float]:
    """Weighted concordance numerator and denominator of Eq. 8.

    ``pair_weights[i]`` is the per-node weight ``w_i / p(r_i)``; the pair
    weight used by the estimator is the product of the two node weights.
    Returns ``(sum_{i<j} c_ij * W_ij, sum_{i<j} W_ij)``.  The naive and
    Fenwick kernels agree up to float summation order.
    """
    x = _as_vector(x, "x")
    y = _as_vector(y, "y")
    weights = _as_vector(pair_weights, "pair_weights")
    if not (x.size == y.size == weights.size):
        raise EstimationError("x, y and pair_weights must have the same length")
    if x.size < 2:
        raise EstimationError("at least two observations are required")
    if np.any(weights < 0):
        raise EstimationError("pair_weights must be non-negative")
    return weighted_concordance(x, y, weights, kernel=kernel, crossover=crossover)


def kendall_tau_a(
    x: np.ndarray, y: np.ndarray, kernel: str = "auto"
) -> float:
    """Kendall τ-a: ``S / (n(n-1)/2)`` — Eq. 3/4 of the paper."""
    x = _as_vector(x, "x")
    n = x.size
    if n < 2:
        raise EstimationError("at least two observations are required")
    s = pair_concordance_sum(x, y, kernel=kernel)
    return float(s) / (0.5 * n * (n - 1))


def kendall_tau_b(
    x: np.ndarray, y: np.ndarray, kernel: str = "auto"
) -> float:
    """Kendall τ-b: tie-adjusted coefficient used for Transaction Correlation.

    ``τ_b = S / sqrt((n0 - n1)(n0 - n2))`` where ``n0 = n(n-1)/2`` and
    ``n1``/``n2`` are the numbers of tied pairs within ``x``/``y``.  Returns
    0.0 when either variable is constant (the coefficient is undefined; zero
    is the conventional "no detectable correlation" value).
    """
    x = _as_vector(x, "x")
    y = _as_vector(y, "y")
    if x.size != y.size:
        raise EstimationError("x and y must have the same length")
    n = x.size
    if n < 2:
        raise EstimationError("at least two observations are required")
    from repro.stats.ties import tie_group_sizes

    s = pair_concordance_sum(x, y, kernel=kernel)
    n0 = 0.5 * n * (n - 1)
    ties_x = tie_group_sizes(x)
    ties_y = tie_group_sizes(y)
    n1 = float(sum(t * (t - 1) / 2.0 for t in ties_x))
    n2 = float(sum(t * (t - 1) / 2.0 for t in ties_y))
    denominator = np.sqrt((n0 - n1) * (n0 - n2))
    if denominator == 0:
        return 0.0
    return float(s / denominator)
