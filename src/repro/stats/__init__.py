"""Rank-correlation statistics underpinning the TESC test.

The modules here are pure numerics: they operate on density vectors and have
no knowledge of graphs.  This keeps the statistical machinery independently
testable against brute force and against ``scipy.stats``.
"""

from repro.stats.fast_kendall import (
    DEFAULT_CROSSOVER,
    KERNELS,
    fenwick_weighted_concordance,
    merge_concordance_sum,
    resolve_kernel,
)
from repro.stats.kendall import (
    concordance_matrix,
    kendall_tau_a,
    kendall_tau_b,
    pair_concordance_sum,
    weighted_pair_concordance,
)
from repro.stats.ties import (
    null_variance_no_ties,
    null_variance_numerator_with_ties,
    tie_group_sizes,
    tie_corrected_sigma,
)
from repro.stats.normal import normal_cdf, normal_sf, z_to_p_value
from repro.stats.hypothesis import CorrelationVerdict, SignificanceResult, decide

__all__ = [
    "DEFAULT_CROSSOVER",
    "KERNELS",
    "fenwick_weighted_concordance",
    "merge_concordance_sum",
    "resolve_kernel",
    "concordance_matrix",
    "kendall_tau_a",
    "kendall_tau_b",
    "pair_concordance_sum",
    "weighted_pair_concordance",
    "tie_group_sizes",
    "null_variance_no_ties",
    "null_variance_numerator_with_ties",
    "tie_corrected_sigma",
    "normal_cdf",
    "normal_sf",
    "z_to_p_value",
    "CorrelationVerdict",
    "SignificanceResult",
    "decide",
]
