"""Normal-distribution helpers for significance assessment.

The TESC statistic is asymptotically normal under the null hypothesis
(Section 3.1), so p-values are plain normal tail probabilities of the
observed z-score.
"""

from __future__ import annotations

import math

from repro.exceptions import EstimationError


def normal_cdf(z: float) -> float:
    """Standard normal cumulative distribution function."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def normal_sf(z: float) -> float:
    """Standard normal survival function ``P(Z > z)``."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def z_to_p_value(z: float, alternative: str = "two-sided") -> float:
    """Convert a z-score into a p-value.

    Parameters
    ----------
    z:
        The observed z-score.
    alternative:
        ``"two-sided"`` tests for any correlation, ``"greater"`` for positive
        correlation (attraction) only, ``"less"`` for negative correlation
        (repulsion) only.  The paper's experiments use one-tailed tests at
        significance level 0.05.
    """
    if alternative == "two-sided":
        return 2.0 * normal_sf(abs(z))
    if alternative == "greater":
        return normal_sf(z)
    if alternative == "less":
        return normal_cdf(z)
    raise EstimationError(
        f"alternative must be 'two-sided', 'greater' or 'less', got {alternative!r}"
    )


def critical_z(alpha: float, alternative: str = "two-sided") -> float:
    """The rejection threshold on |z| for significance level ``alpha``."""
    if not 0.0 < alpha < 1.0:
        raise EstimationError(f"alpha must be in (0, 1), got {alpha}")
    from scipy.stats import norm

    if alternative == "two-sided":
        return float(norm.isf(alpha / 2.0))
    if alternative in ("greater", "less"):
        return float(norm.isf(alpha))
    raise EstimationError(
        f"alternative must be 'two-sided', 'greater' or 'less', got {alternative!r}"
    )
