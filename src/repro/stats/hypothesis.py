"""Hypothesis-test bookkeeping: verdicts and significance results."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import EstimationError
from repro.stats.normal import z_to_p_value


class CorrelationVerdict(enum.Enum):
    """Outcome of a TESC significance test."""

    POSITIVE = "positive"
    NEGATIVE = "negative"
    INDEPENDENT = "independent"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class SignificanceResult:
    """A z-score with its p-value and accept/reject decision.

    Attributes
    ----------
    z_score:
        The observed standardised statistic (Eq. 7).
    p_value:
        Tail probability under the null for the chosen alternative.
    alpha:
        Significance level the decision was made at.
    alternative:
        ``"two-sided"``, ``"greater"`` or ``"less"``.
    verdict:
        :class:`CorrelationVerdict` – positive / negative / independent.
    """

    z_score: float
    p_value: float
    alpha: float
    alternative: str
    verdict: CorrelationVerdict

    @property
    def significant(self) -> bool:
        """Whether the null hypothesis of independence was rejected."""
        return self.verdict is not CorrelationVerdict.INDEPENDENT


def decide(z_score: float, alpha: float = 0.05,
           alternative: str = "two-sided") -> SignificanceResult:
    """Turn a z-score into a :class:`SignificanceResult`.

    For the two-sided alternative the verdict's sign follows the sign of the
    z-score; for one-sided alternatives only the requested direction can be
    declared significant.
    """
    if not 0.0 < alpha < 1.0:
        raise EstimationError(f"alpha must be in (0, 1), got {alpha}")
    p_value = z_to_p_value(z_score, alternative)
    verdict = CorrelationVerdict.INDEPENDENT
    if p_value < alpha:
        if alternative == "greater":
            verdict = CorrelationVerdict.POSITIVE
        elif alternative == "less":
            verdict = CorrelationVerdict.NEGATIVE
        else:
            verdict = (
                CorrelationVerdict.POSITIVE if z_score > 0 else CorrelationVerdict.NEGATIVE
            )
    return SignificanceResult(
        z_score=float(z_score),
        p_value=float(p_value),
        alpha=float(alpha),
        alternative=alternative,
        verdict=verdict,
    )
