"""Tie handling and the tie-corrected null variance (Eq. 5 and Eq. 6).

Under the null hypothesis (the two events are independent with respect to the
graph structure) the sampled Kendall statistic ``t(a, b)`` is asymptotically
normal with mean 0.  Without ties its variance is Eq. 5:

    sigma^2 = 2 (2n + 5) / (9 n (n - 1)).

Reference nodes whose vicinities see only one of the two events create ties
in the density vectors, and the paper switches to the tie-corrected variance
of the *numerator* (Eq. 6), then divides by ``[n(n-1)/2]^2``.  More/larger
ties always shrink the variance.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import EstimationError


def tie_group_sizes(values: Sequence[float]) -> List[int]:
    """Sizes of the tie groups in ``values``.

    Every group of equal values of size >= 2 contributes its size; untied
    values are excluded (a "tie" of size 1 contributes nothing to Eq. 6, so
    including them would only add zero terms).
    """
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise EstimationError(f"values must be a 1-D vector, got shape {array.shape}")
    if array.size == 0:
        return []
    _, counts = np.unique(array, return_counts=True)
    return [int(c) for c in counts if c >= 2]


def null_variance_no_ties(n: int) -> float:
    """Eq. 5: variance of ``t(a, b)`` under the null hypothesis, no ties."""
    if n < 2:
        raise EstimationError(f"at least two reference nodes are required, got {n}")
    return 2.0 * (2 * n + 5) / (9.0 * n * (n - 1))


def null_variance_numerator_with_ties(
    n: int, ties_x: Sequence[int], ties_y: Sequence[int]
) -> float:
    """Eq. 6: tie-corrected variance of the numerator ``S`` under the null.

    ``ties_x``/``ties_y`` are the tie-group sizes (``u_i`` and ``v_i`` in the
    paper) of the two density vectors.  With no ties this reduces to Eq. 5
    multiplied by ``[n(n-1)/2]^2``.
    """
    if n < 2:
        raise EstimationError(f"at least two reference nodes are required, got {n}")
    for name, ties in (("ties_x", ties_x), ("ties_y", ties_y)):
        for size in ties:
            if size < 1:
                raise EstimationError(f"{name} contains a non-positive tie size {size}")
            if size > n:
                raise EstimationError(f"{name} contains a tie larger than n ({size} > {n})")

    u = np.asarray(list(ties_x), dtype=float)
    v = np.asarray(list(ties_y), dtype=float)

    def term0(sizes: np.ndarray) -> float:
        return float(np.sum(sizes * (sizes - 1) * (2 * sizes + 5)))

    def term1(sizes: np.ndarray) -> float:
        return float(np.sum(sizes * (sizes - 1) * (sizes - 2)))

    def term2(sizes: np.ndarray) -> float:
        return float(np.sum(sizes * (sizes - 1)))

    variance = (n * (n - 1) * (2 * n + 5) - term0(u) - term0(v)) / 18.0
    if n > 2:
        variance += term1(u) * term1(v) / (9.0 * n * (n - 1) * (n - 2))
    variance += term2(u) * term2(v) / (2.0 * n * (n - 1))
    return float(variance)


def tie_corrected_sigma(x: Sequence[float], y: Sequence[float]) -> float:
    """Standard deviation of the numerator ``S`` under the null hypothesis.

    Computes the tie groups of both vectors and plugs them into Eq. 6; with
    no ties this equals ``sqrt(Eq. 5) * n(n-1)/2``.  The z-score of Eq. 7 is
    then simply ``S / sigma_c``.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size != y.size:
        raise EstimationError("x and y must have the same length")
    n = int(x.size)
    variance = null_variance_numerator_with_ties(n, tie_group_sizes(x), tie_group_sizes(y))
    if variance < 0:
        raise EstimationError(f"negative null variance {variance}; ties are inconsistent")
    return float(np.sqrt(variance))


def degenerate_ties(x: Sequence[float], y: Sequence[float]) -> bool:
    """Whether either vector is entirely one tie (zero null variance).

    When every reference node sees the same density for one of the events,
    the Kendall statistic carries no information and the tie-corrected null
    variance is ~0; callers report a z-score of 0 in that case instead of
    dividing by zero.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    return bool(np.unique(x).size <= 1 or np.unique(y).size <= 1)
