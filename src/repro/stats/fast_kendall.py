"""O(n log n) Kendall concordance kernels and the size-dispatched facade.

Every TESC estimate (Eq. 3/4/8) reduces to a concordance computation over a
pair of density vectors.  The historical implementation materialised ``n x n``
sign matrices — O(n²) time *and* memory per call — which caps the reference
sample size ``n`` (the single biggest lever on estimator variance) around the
paper's n=900.  This module provides exact sub-quadratic kernels:

* :func:`merge_concordance_sum` — Knight's merge-sort algorithm for the exact
  integer ``S = #concordant − #discordant``: sort by ``(x, y)``, count the
  strict inversions of the resulting ``y`` sequence (the discordant pairs)
  with an O(n log n) bottom-up merge, and correct for tie groups in ``x``,
  ``y`` and ``(x, y)`` jointly.  Matches the naive sign-matrix kernel
  **bit for bit** (both produce the same integer).
* :func:`fenwick_weighted_concordance` — the Eq. 8 weighted numerator /
  denominator via a Fenwick tree (binary indexed tree): sort by ``x``,
  sweep x-tie groups in order and, for each node, read the total weight of
  already-inserted nodes with strictly smaller / strictly larger y-rank off
  the tree in O(log n).  Equal y-ranks contribute zero (ties), and an x-tie
  group is queried in full before any of its members is inserted, so pairs
  tied in ``x`` contribute zero as well.  Agrees with the naive kernel to
  float round-off (different summation order).
* the ``naive_*`` kernels — the original vectorised O(n²) implementations,
  kept verbatim as the oracle for property tests and as the faster path
  below the dispatch crossover (BLAS-style vectorisation beats the merge
  bookkeeping for small ``n``).

:func:`concordance_sum` and :func:`weighted_concordance` are the facades the
rest of the code base routes through: ``kernel="auto"`` (the default) picks
the naive kernel below :data:`DEFAULT_CROSSOVER` observations and the fast
kernel at or above it; ``"naive"`` / ``"fast"`` force a path for benchmarks
and debugging (``TescConfig.kendall_kernel`` / ``--kendall-kernel``).

Complexity summary (per pair estimate):

============================  ==========  ========
kernel                        time        memory
============================  ==========  ========
naive sign matrices           O(n²)       O(n²)
merge-sort (Knight)           O(n log n)  O(n)
Fenwick weighted              O(n log n)  O(n)
============================  ==========  ========
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import EstimationError

#: Kernel names accepted by the facades (and ``TescConfig.kendall_kernel``).
KERNELS = ("auto", "naive", "fast")

#: ``kernel="auto"`` dispatch threshold: below this many observations the
#: vectorised O(n²) kernel's smaller constant wins; at or above it the
#: O(n log n) kernels win (measured crossover ~130–250 on CPython/NumPy —
#: at n=900 the merge kernel is already ~15x faster).
DEFAULT_CROSSOVER = 192


def resolve_kernel(kernel: str, n: int, crossover: Optional[int] = None) -> str:
    """Resolve a kernel request into ``"naive"`` or ``"fast"`` for size ``n``."""
    if kernel not in KERNELS:
        raise EstimationError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    if kernel != "auto":
        return kernel
    threshold = DEFAULT_CROSSOVER if crossover is None else int(crossover)
    return "fast" if n >= threshold else "naive"


def dense_ranks(values: np.ndarray) -> np.ndarray:
    """Dense integer ranks (0-based) preserving order and ties exactly.

    Equal inputs get equal ranks and the rank order is the value order, so
    every sign ``sign(v_i - v_j)`` is preserved — the concordance structure
    of the ranked vector is identical to the original's.  O(n log n).
    """
    values = np.asarray(values)
    _, inverse = np.unique(values, return_inverse=True)
    return inverse.astype(np.int64, copy=False).ravel()


def count_inversions(values: np.ndarray) -> int:
    """Number of strict inversions ``i < j with v_i > v_j``, O(n log n).

    Bottom-up merge counting, vectorised across runs: the array is padded to
    a power of two with a +inf sentinel and reshaped to ``(runs, 2·width)``
    rows per pass; a stable per-row argsort merges each run pair while a
    cumulative count of left-half elements yields, for every right-half
    element, how many left-half elements strictly exceed it.  The stable
    sort places equal left-half elements *before* right-half ones, so ties
    contribute no inversions.
    """
    values = np.asarray(values)
    n = values.size
    if n < 2:
        return 0
    size = 1 << (n - 1).bit_length()
    if np.issubdtype(values.dtype, np.integer):
        arr = np.empty(size, dtype=np.int64)
        arr[n:] = int(values.max()) + 1
    else:
        arr = np.empty(size, dtype=np.float64)
        arr[n:] = np.inf
    arr[:n] = values
    inversions = 0
    width = 1
    while width < size:
        rows = arr.reshape(-1, 2 * width)
        order = np.argsort(rows, axis=1, kind="stable")
        from_right = order >= width
        left_seen = np.cumsum(~from_right, axis=1)
        inversions += int(((width - left_seen) * from_right).sum())
        arr = np.take_along_axis(rows, order, axis=1).ravel()
        width *= 2
    return inversions


def _tied_pair_count(ranks: np.ndarray) -> int:
    """Number of unordered pairs sharing the same rank value."""
    counts = np.bincount(ranks)
    return int((counts * (counts - 1) // 2).sum())


def _check_pair(x, y) -> Tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x)
    y = np.asarray(y)
    if x.ndim != 1 or y.ndim != 1:
        raise EstimationError("concordance kernels need 1-D vectors")
    if x.size != y.size:
        raise EstimationError("x and y must have the same length")
    if x.size < 2:
        raise EstimationError("at least two observations are required")
    return x, y


# -- naive O(n²) kernels (the oracle and the small-n path) --------------------


def naive_concordance_sum(x: np.ndarray, y: np.ndarray) -> int:
    """``S`` via the full sign-matrix product — O(n²) time and memory.

    This is the historical implementation, kept as the property-test oracle
    and as the ``kernel="naive"`` path (it wins below the dispatch crossover
    thanks to its pure-vectorised inner loop).
    """
    x, y = _check_pair(x, y)
    return _naive_concordance_sum(x, y)


def _naive_concordance_sum(x: np.ndarray, y: np.ndarray) -> int:
    x = x.astype(float, copy=False)
    y = y.astype(float, copy=False)
    dx = np.sign(x[:, None] - x[None, :])
    dy = np.sign(y[:, None] - y[None, :])
    total = float((dx * dy).sum())  # counts each unordered pair twice; diagonal is 0
    return int(round(total / 2.0))


def naive_weighted_concordance(
    x: np.ndarray, y: np.ndarray, weights: np.ndarray
) -> Tuple[float, float]:
    """Eq. 8 numerator/denominator via full sign and weight matrices (O(n²))."""
    x, y = _check_pair(x, y)
    return _naive_weighted_concordance(x, y, np.asarray(weights, dtype=float))


def _naive_weighted_concordance(
    x: np.ndarray, y: np.ndarray, weights: np.ndarray
) -> Tuple[float, float]:
    x = x.astype(float, copy=False)
    y = y.astype(float, copy=False)
    dx = np.sign(x[:, None] - x[None, :])
    dy = np.sign(y[:, None] - y[None, :])
    weight_matrix = weights[:, None] * weights[None, :]
    concordance = dx * dy
    numerator = float((concordance * weight_matrix).sum() / 2.0)
    denominator = float((weight_matrix.sum() - np.sum(weights * weights)) / 2.0)
    return numerator, denominator


# -- the merge-sort kernel (Knight's algorithm) -------------------------------


def merge_concordance_sum(x: np.ndarray, y: np.ndarray) -> int:
    """Exact ``S = #concordant − #discordant`` in O(n log n) time, O(n) memory.

    Knight's algorithm with full tie awareness: with ``n0 = n(n-1)/2`` total
    pairs, ``tx``/``ty`` the pairs tied within ``x``/``y``, ``txy`` the pairs
    tied in both, and ``D`` the discordant count,

        ``C = n0 − tx − ty + txy − D``  and  ``S = C − D``.

    ``D`` is the number of strict inversions of the ``y`` sequence after
    sorting by ``(x, y)`` lexicographically: pairs tied in ``x`` are sorted
    by ascending ``y`` (no inversion), pairs tied in ``y`` are never strict
    inversions, so inversions are exactly the pairs with ``x_i < x_j`` and
    ``y_i > y_j``.  All integer arithmetic — bit-identical to
    :func:`naive_concordance_sum`.
    """
    x, y = _check_pair(x, y)
    concordant, discordant, _ = _concordance_counts(x, y)
    return concordant - discordant


def concordance_counts(x: np.ndarray, y: np.ndarray) -> Tuple[int, int, int]:
    """Exact ``(#concordant, #discordant, #tied)`` pair counts, O(n log n).

    The tie-aware decomposition behind :func:`merge_concordance_sum`,
    exposed separately for diagnostics (`repro.core.concordance`).
    """
    x, y = _check_pair(x, y)
    return _concordance_counts(x, y)


def _concordance_counts(x: np.ndarray, y: np.ndarray) -> Tuple[int, int, int]:
    n = int(x.size)
    ranks_x = dense_ranks(x)
    ranks_y = dense_ranks(y)
    order = np.lexsort((ranks_y, ranks_x))
    discordant = count_inversions(ranks_y[order])
    total_pairs = n * (n - 1) // 2
    tied_x = _tied_pair_count(ranks_x)
    tied_y = _tied_pair_count(ranks_y)
    # Joint key: ranks are < n, so the combined key fits int64 far below 2^63.
    joint = dense_ranks(ranks_x * np.int64(n) + ranks_y)
    tied_both = _tied_pair_count(joint)
    tied = tied_x + tied_y - tied_both
    concordant = total_pairs - tied - discordant
    return concordant, discordant, tied


# -- the Fenwick-tree weighted kernel -----------------------------------------


def fenwick_weighted_concordance(
    x: np.ndarray, y: np.ndarray, weights: np.ndarray
) -> Tuple[float, float]:
    """Eq. 8 numerator/denominator in O(n log n) time, O(n) memory.

    Sweeps the observations in ascending ``x`` order, one x-tie group at a
    time.  A Fenwick tree over dense y-ranks accumulates the weights of the
    already-inserted (strictly smaller ``x``) observations; for each new
    observation the prefix sums at ``rank−1`` and ``rank`` split that weight
    mass into strictly-smaller-y (concordant), equal-y (tied, contributing
    zero) and strictly-larger-y (discordant).  Querying a whole x-tie group
    before inserting any of its members makes pairs tied in ``x`` contribute
    zero — the explicit tie handling the naive kernel gets from its sign
    matrices.

    The denominator uses the closed form ``((Σw)² − Σw²)/2``.  Both outputs
    agree with :func:`naive_weighted_concordance` up to summation order
    (≲1e-12 relative in practice).
    """
    x, y = _check_pair(x, y)
    weights = np.asarray(weights, dtype=float)
    if weights.shape != x.shape:
        raise EstimationError("weights must match the observation vectors")
    return _fenwick_weighted_concordance(x, y, weights)


def _fenwick_weighted_concordance(
    x: np.ndarray, y: np.ndarray, weights: np.ndarray
) -> Tuple[float, float]:
    n = int(x.size)
    ranks_x = dense_ranks(x)
    ranks_y = dense_ranks(y) + 1  # 1-based for the tree
    num_ranks = int(ranks_y.max())
    order = np.lexsort((ranks_y, ranks_x))
    xs = ranks_x[order].tolist()
    ys = ranks_y[order].tolist()
    ws = weights[order].tolist()

    tree = [0.0] * (num_ranks + 1)
    inserted_total = 0.0
    numerator = 0.0
    start = 0
    while start < n:
        stop = start
        group_x = xs[start]
        # Query phase: the whole x-tie group reads the tree before any insert.
        while stop < n and xs[stop] == group_x:
            rank = ys[stop]
            below = 0.0  # total inserted weight with y-rank < rank
            index = rank - 1
            while index > 0:
                below += tree[index]
                index -= index & (-index)
            below_or_equal = 0.0  # ... with y-rank <= rank
            index = rank
            while index > 0:
                below_or_equal += tree[index]
                index -= index & (-index)
            above = inserted_total - below_or_equal
            numerator += ws[stop] * (below - above)
            stop += 1
        # Insert phase.
        while start < stop:
            index = ys[start]
            value = ws[start]
            while index <= num_ranks:
                tree[index] += value
                index += index & (-index)
            inserted_total += value
            start += 1

    weight_sum = float(weights.sum())
    denominator = (weight_sum * weight_sum - float(np.sum(weights * weights))) / 2.0
    return numerator, denominator


# -- the dispatch facades -----------------------------------------------------


def concordance_sum(
    x: np.ndarray,
    y: np.ndarray,
    kernel: str = "auto",
    crossover: Optional[int] = None,
) -> int:
    """``S = #concordant − #discordant`` through the size-dispatched facade.

    The naive and merge-sort kernels return the same integer, so dispatch
    never changes a result — only its cost.
    """
    x, y = _check_pair(x, y)
    if resolve_kernel(kernel, int(x.size), crossover) == "fast":
        concordant, discordant, _ = _concordance_counts(x, y)
        return concordant - discordant
    return _naive_concordance_sum(x, y)


def weighted_concordance(
    x: np.ndarray,
    y: np.ndarray,
    weights: np.ndarray,
    kernel: str = "auto",
    crossover: Optional[int] = None,
) -> Tuple[float, float]:
    """Eq. 8 weighted numerator/denominator through the dispatch facade.

    The two kernels agree to float round-off (summation order differs);
    exact integer agreement holds whenever the weights are integral.
    """
    x, y = _check_pair(x, y)
    weights = np.asarray(weights, dtype=float)
    if weights.shape != x.shape:
        raise EstimationError("weights must match the observation vectors")
    if resolve_kernel(kernel, int(x.size), crossover) == "fast":
        return _fenwick_weighted_concordance(x, y, weights)
    return _naive_weighted_concordance(x, y, weights)
