"""Command-line interface for the TESC reproduction library.

Subcommands
-----------
``tesc test``
    Run a TESC significance test for two events stored in edge-list/event
    files.
``tesc rank``
    Batch-test many event pairs on one graph with the shared-sample
    :class:`~repro.core.batch.BatchTescEngine` and print them ranked
    (``--top-k`` routes through the progressive engine when sorting by
    score).
``tesc topk``
    Progressive top-k: grow the shared sample in geometric rounds, prune
    pairs whose confidence interval falls below the k-th lower bound, and
    print the surviving top-k (identical to a full ``tesc rank`` top-k).
``tesc stream``
    Replay a JSONL delta file against a dynamic graph, incrementally
    re-ranking monitored event pairs after every commit and printing the
    ranking deltas.
``tesc serve``
    Start the correlation service: a persistent server answering
    ``rank``/``topk``/``stream`` requests over a local socket, with a
    long-lived shared-memory worker pool and epoch-keyed result caching
    (``--metrics-port`` adds a Prometheus HTTP endpoint,
    ``--slow-request-seconds`` a JSON-lines slow-request log).
``tesc status``
    Summarise a running server's status and metrics once, or as a live
    terminal dashboard with ``--watch``.
``tesc checkpoint``
    Force a durable checkpoint on a running ``tesc serve --store`` server
    (ungated, off the commit path; the covered WAL prefix is compacted).
``tesc experiment``
    Run one of the paper's experiments (figure5 ... table5) and print the
    regenerated tables.
``tesc dataset``
    Generate one of the synthetic datasets and print its summary.
``tesc simulate``
    Run a small simulation study (recall vs noise) on a synthetic graph.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Any, Dict, List, Optional

from repro import __version__
from repro.core.batch import SORT_KEYS
from repro.core.config import DEFAULT_TOPK_INITIAL_SAMPLE_SIZE, TescConfig
from repro.core.parallel import ParallelBatchTescEngine, resolve_workers
from repro.core.tesc import TescTester
from repro.datasets.registry import available_datasets, load_dataset
from repro.events.attributed_graph import AttributedGraph
from repro.experiments.runner import available_experiments, run_all
from repro.graph.io import read_edge_list, read_event_file
from repro.graph.metrics import summarize_graph
from repro.sampling.registry import available_samplers
from repro.simulation.runner import SimulationStudy
from repro.stats.fast_kendall import KERNELS
from repro.utils.logging import configure_logging
from repro.utils.tables import TextTable, render_mapping


def _shared_engine_parent() -> argparse.ArgumentParser:
    """The flags every engine-backed subcommand accepts identically.

    ``rank``, ``topk``, ``stream``, ``serve`` and ``experiment`` all take
    ``--workers``, ``--kendall-kernel``, ``--top-k`` and ``--seed`` with the
    same spelling and semantics; defining them once on a parent parser keeps
    the subcommands from drifting apart.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("shared engine options")
    group.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="shard the workload across N worker processes (0 = one per "
             "core); results are identical to a serial run",
    )
    group.add_argument(
        "--kendall-kernel", default="auto", choices=list(KERNELS),
        help="concordance kernel: auto (size-dispatched), naive (O(n^2) "
             "sign matrices) or fast (O(n log n) merge sort); identical "
             "rankings either way",
    )
    group.add_argument(
        "--top-k", type=int, default=None, metavar="K",
        help="cap output at the K best-ranked pairs (serve: server-side "
             "default for rank/topk requests; topk: alias for --k)",
    )
    group.add_argument(
        "--seed", type=int, default=None,
        help="random seed (TescConfig.random_state; experiment: reseeds "
             "each experiment's config)",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="tesc",
        description="Two-Event Structural Correlation (TESC) testing framework",
    )
    parser.add_argument("--version", action="version", version=f"tesc {__version__}")
    parser.add_argument("--verbose", action="store_true", help="enable INFO logging")
    subparsers = parser.add_subparsers(dest="command")
    shared = _shared_engine_parent()

    test_parser = subparsers.add_parser("test", help="test one event pair from files")
    test_parser.add_argument("--edges", required=True, help="edge-list file (u v per line)")
    test_parser.add_argument("--events", required=True, help="event file (event<TAB>node)")
    test_parser.add_argument("--event-a", required=True)
    test_parser.add_argument("--event-b", required=True)
    test_parser.add_argument("--level", type=int, default=1, help="vicinity level h")
    test_parser.add_argument("--sample-size", type=int, default=900)
    test_parser.add_argument("--sampler", default="batch_bfs", choices=available_samplers())
    test_parser.add_argument("--alpha", type=float, default=0.05)
    test_parser.add_argument(
        "--alternative", default="two-sided", choices=["two-sided", "greater", "less"]
    )
    test_parser.add_argument(
        "--kendall-kernel", default="auto", choices=list(KERNELS),
        help="concordance kernel: auto (size-dispatched), naive (O(n^2) "
             "sign matrices) or fast (O(n log n) merge sort / Fenwick tree)",
    )
    test_parser.add_argument("--seed", type=int, default=None)

    rank_parser = subparsers.add_parser(
        "rank", parents=[shared],
        help="batch-test many event pairs and print them ranked",
    )
    rank_parser.add_argument("--edges", required=True, help="edge-list file (u v per line)")
    rank_parser.add_argument("--events", required=True, help="event file (event<TAB>node)")
    rank_parser.add_argument(
        "--pair", nargs=2, action="append", metavar=("EVENT_A", "EVENT_B"),
        help="one pair to test (repeatable); default: all pairs of events in the file",
    )
    rank_parser.add_argument("--level", type=int, default=1, help="vicinity level h")
    rank_parser.add_argument("--sample-size", type=int, default=900)
    rank_parser.add_argument(
        "--sampler", default="batch_bfs",
        choices=["batch_bfs", "exhaustive", "whole_graph", "reject"],
        help="uniform samplers only (importance weights cannot be shared across pairs)",
    )
    rank_parser.add_argument("--alpha", type=float, default=0.05)
    rank_parser.add_argument("--sort-by", default="score", choices=list(SORT_KEYS))
    rank_parser.add_argument("--markdown", action="store_true",
                             help="render the ranking as markdown")
    rank_parser.add_argument(
        "--no-progressive", action="store_true",
        help="with --top-k and --sort-by score: force the full batch engine "
             "instead of routing through the progressive top-k engine",
    )

    topk_parser = subparsers.add_parser(
        "topk", parents=[shared],
        help="progressive top-k pair ranking with confidence-bound pruning",
    )
    topk_parser.add_argument("--edges", required=True, help="edge-list file (u v per line)")
    topk_parser.add_argument("--events", required=True, help="event file (event<TAB>node)")
    topk_parser.add_argument("--k", type=int, default=None,
                             help="how many top pairs to return "
                                  "(--top-k is accepted as an alias)")
    topk_parser.add_argument(
        "--pair", nargs=2, action="append", metavar=("EVENT_A", "EVENT_B"),
        help="one candidate pair (repeatable); default: all pairs of events in the file",
    )
    topk_parser.add_argument("--level", type=int, default=1, help="vicinity level h")
    topk_parser.add_argument("--sample-size", type=int, default=900,
                             help="full reference-sample budget (the last round's size)")
    topk_parser.add_argument(
        "--sampler", default="batch_bfs",
        choices=["batch_bfs", "exhaustive", "whole_graph", "reject"],
        help="uniform samplers only (importance weights cannot be shared across pairs)",
    )
    topk_parser.add_argument("--alpha", type=float, default=0.05)
    topk_parser.add_argument(
        "--confidence", type=float, default=None, metavar="C",
        help="two-sided confidence level of the pruning bounds (default 0.995)",
    )
    topk_parser.add_argument(
        "--initial-sample", type=int, default=None, metavar="N0",
        help="first-round prefix size (default 256)",
    )
    schedule_group = topk_parser.add_mutually_exclusive_group()
    schedule_group.add_argument(
        "--growth", type=float, default=None, metavar="G",
        help="geometric growth factor between rounds (default 2.0)",
    )
    schedule_group.add_argument(
        "--rounds", type=int, default=None, metavar="R",
        help="alternative to --growth: target number of rounds from the "
             "initial size to the budget (the growth factor is derived)",
    )
    topk_parser.add_argument(
        "--bound", default=None, choices=["asymptotic", "certified"],
        help="pruning-bound variance: asymptotic (tight, default) or the "
             "paper's certified upper bound (conservative, prunes late)",
    )
    topk_parser.add_argument("--markdown", action="store_true",
                             help="render the ranking as markdown")

    stream_parser = subparsers.add_parser(
        "stream", parents=[shared],
        help="replay a delta file, incrementally re-ranking monitored pairs",
    )
    stream_parser.add_argument("--edges", required=True, help="edge-list file (u v per line)")
    stream_parser.add_argument("--events", required=True, help="event file (event<TAB>node)")
    stream_parser.add_argument(
        "--deltas", required=True,
        help="JSONL delta file (edge_add/edge_remove/event_attach/event_detach "
             'records with {"op": "commit"} batch separators)',
    )
    stream_parser.add_argument(
        "--pair", nargs=2, action="append", metavar=("EVENT_A", "EVENT_B"),
        help="one pair to monitor (repeatable); default: all pairs of events in the file",
    )
    stream_parser.add_argument("--level", type=int, default=1, help="vicinity level h")
    stream_parser.add_argument("--sample-size", type=int, default=900)
    stream_parser.add_argument(
        "--sampler", default="batch_bfs",
        choices=["batch_bfs", "exhaustive", "whole_graph", "reject"],
        help="uniform samplers only (importance weights cannot be shared across pairs)",
    )
    stream_parser.add_argument("--alpha", type=float, default=0.05)
    stream_parser.add_argument("--sort-by", default="score", choices=list(SORT_KEYS))
    stream_parser.add_argument("--markdown", action="store_true",
                               help="render tables as markdown")
    stream_parser.add_argument(
        "--concurrent-queries", type=int, default=0, metavar="N",
        help="while the replay commits, run N threads of snapshot-isolated "
             "rank queries against the same graph through the Session API "
             "and report their throughput — an HTAP smoke test: readers "
             "never block commits and each answer carries its epoch",
    )

    serve_parser = subparsers.add_parser(
        "serve", parents=[shared],
        help="start the correlation service over a local socket",
    )
    serve_parser.add_argument("--edges", required=True, help="edge-list file (u v per line)")
    serve_parser.add_argument("--events", required=True, help="event file (event<TAB>node)")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=0,
                              help="TCP port (0 picks a free one, printed at startup)")
    serve_parser.add_argument("--level", type=int, default=1, help="vicinity level h")
    serve_parser.add_argument("--sample-size", type=int, default=900)
    serve_parser.add_argument(
        "--sampler", default="batch_bfs",
        choices=["batch_bfs", "exhaustive", "whole_graph", "reject"],
        help="uniform samplers only (importance weights cannot be shared across pairs)",
    )
    serve_parser.add_argument("--alpha", type=float, default=0.05)
    serve_parser.add_argument(
        "--static", action="store_true",
        help="serve a read-only graph: reject stream commits with 400",
    )
    serve_parser.add_argument(
        "--max-concurrency", type=int, default=4,
        help="requests executing at once before new arrivals queue",
    )
    serve_parser.add_argument(
        "--max-queue", type=int, default=16,
        help="queued requests before new arrivals are rejected with 429",
    )
    serve_parser.add_argument(
        "--queue-timeout", type=float, default=30.0,
        help="seconds a queued request may wait before a 408 timeout",
    )
    serve_parser.add_argument(
        "--metrics-port", type=int, default=None,
        help="also serve Prometheus text metrics over HTTP on this port "
             "(0 picks a free one, printed at startup); the metrics "
             "protocol verb works regardless",
    )
    serve_parser.add_argument(
        "--slow-request-seconds", type=float, default=None,
        help="log requests slower than this as JSON lines (span tree "
             "included) through the repro.obs.slowlog logger",
    )
    serve_parser.add_argument(
        "--wal", metavar="PATH", default=None,
        help="durable write-ahead log for stream commits: batches already "
             "committed to PATH are replayed into the graph on boot, so a "
             "killed server restarts at its last committed epoch "
             "(incompatible with --static)",
    )
    serve_parser.add_argument(
        "--store", metavar="DIR", default=None,
        help="checkpoint store directory: boot restores the newest valid "
             "checkpoint and replays only the WAL tail past it; the "
             "checkpoint protocol verb and --checkpoint-interval cut new "
             "ones.  Defaults --wal to DIR/wal.log when not given "
             "(incompatible with --static)",
    )
    serve_parser.add_argument(
        "--checkpoint-interval", type=float, default=None, metavar="N",
        help="seconds between automatic background checkpoints (needs "
             "--store; omit to checkpoint only on demand)",
    )
    serve_parser.add_argument(
        "--checkpoint-retain", type=int, default=2, metavar="K",
        help="valid checkpoints kept after each new one (default 2)",
    )

    checkpoint_parser = subparsers.add_parser(
        "checkpoint",
        help="force a checkpoint on a running tesc serve --store instance",
    )
    checkpoint_parser.add_argument("--host", default="127.0.0.1")
    checkpoint_parser.add_argument("--port", type=int, required=True,
                                   help="port of the running tesc serve instance")
    checkpoint_parser.add_argument(
        "--force", action="store_true",
        help="checkpoint even if the epoch is unchanged since the last one",
    )

    status_parser = subparsers.add_parser(
        "status",
        help="summarise a running server's status and metrics",
    )
    status_parser.add_argument("--host", default="127.0.0.1")
    status_parser.add_argument("--port", type=int, required=True,
                               help="port of the running tesc serve instance")
    status_parser.add_argument(
        "--watch", action="store_true",
        help="refresh the summary every --interval seconds until Ctrl-C",
    )
    status_parser.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh period for --watch, in seconds",
    )
    status_parser.add_argument(
        "--iterations", type=int, default=None,
        help="stop --watch after this many refreshes (mainly for tests)",
    )

    experiment_parser = subparsers.add_parser(
        "experiment", parents=[shared],
        help="reproduce one or more of the paper's tables/figures",
    )
    experiment_parser.add_argument(
        "experiment_ids", nargs="+", choices=available_experiments(),
        metavar="experiment_id",
        help="one or more of: " + ", ".join(available_experiments()),
    )
    experiment_parser.add_argument("--markdown", action="store_true",
                                   help="render tables as markdown")

    dataset_parser = subparsers.add_parser("dataset", help="generate a synthetic dataset")
    dataset_parser.add_argument("name", choices=available_datasets())
    dataset_parser.add_argument("--scale", default="default")
    dataset_parser.add_argument("--seed", type=int, default=None)

    simulate_parser = subparsers.add_parser("simulate", help="run a small recall study")
    simulate_parser.add_argument("--correlation", choices=["positive", "negative"],
                                 default="positive")
    simulate_parser.add_argument("--level", type=int, default=1)
    simulate_parser.add_argument("--noise", type=float, default=0.0)
    simulate_parser.add_argument("--num-pairs", type=int, default=5)
    simulate_parser.add_argument("--event-size", type=int, default=300)
    simulate_parser.add_argument("--sample-size", type=int, default=200)
    simulate_parser.add_argument("--sampler", default="batch_bfs", choices=available_samplers())
    simulate_parser.add_argument("--seed", type=int, default=7)
    return parser


def _command_test(args: argparse.Namespace) -> int:
    graph, labels = read_edge_list(args.edges)
    label_to_id = {label: index for index, label in enumerate(labels)}
    events = read_event_file(args.events, label_to_id=label_to_id)
    attributed = AttributedGraph(graph, events, labels=labels)
    config = TescConfig(
        vicinity_level=args.level,
        sample_size=args.sample_size,
        sampler=args.sampler,
        alpha=args.alpha,
        alternative=args.alternative,
        kendall_kernel=args.kendall_kernel,
        random_state=args.seed,
    )
    result = TescTester(attributed, config).test(args.event_a, args.event_b)
    print(result)
    print(
        render_mapping(
            {
                "score (t)": f"{result.score:+.4f}",
                "z-score": f"{result.z_score:+.3f}",
                "p-value": f"{result.p_value:.3e}",
                "verdict": result.verdict.value,
                "reference nodes": result.num_reference_nodes,
                "sampler": args.sampler,
            },
            title="TESC test",
        )
    )
    return 0


def _command_rank(args: argparse.Namespace) -> int:
    graph, labels = read_edge_list(args.edges)
    label_to_id = {label: index for index, label in enumerate(labels)}
    events = read_event_file(args.events, label_to_id=label_to_id)
    attributed = AttributedGraph(graph, events, labels=labels)
    config = TescConfig(
        vicinity_level=args.level,
        sample_size=args.sample_size,
        sampler=args.sampler,
        alpha=args.alpha,
        kendall_kernel=args.kendall_kernel,
        random_state=args.seed,
    )
    pairs = [tuple(pair) for pair in args.pair] if args.pair else "all"
    workers = resolve_workers(args.workers)
    if (
        args.top_k is not None
        and args.sort_by == "score"
        and not args.no_progressive
    ):
        # A top-k-by-score request is exactly the progressive engine's
        # workload; results are identical to the batch path, only cheaper.
        from repro.core.topk import ProgressiveTopKEngine

        with ProgressiveTopKEngine(attributed, config, workers=workers) as engine:
            topk_ranking = engine.top_k(args.top_k, pairs)
        _print_topk(topk_ranking, workers, args)
        return 0
    # The parallel engine degrades to the serial BatchTescEngine in-process
    # when workers <= 1, so one code path serves both modes.
    with ParallelBatchTescEngine(attributed, config, workers=workers) as engine:
        ranking = engine.rank_pairs(pairs, top_k=args.top_k, sort_by=args.sort_by)
        stats = engine.stats
    print(ranking.render(markdown=args.markdown))
    print()
    print(
        render_mapping(
            {
                "pairs tested": stats.num_pairs,
                "events involved": stats.num_events,
                "shared reference nodes": ranking.sample.num_distinct,
                "sampling passes": stats.samples_drawn,
                "density BFS calls": stats.density_bfs_calls,
                "workers": workers,
                "sampler": args.sampler,
                "level": args.level,
            },
            title="batch engine",
        )
    )
    return 0


def _print_topk(ranking, workers: int, args: argparse.Namespace) -> int:
    """Render a progressive top-k ranking plus its round/pruning summary."""
    stats = ranking.topk_stats
    print(ranking.render(markdown=args.markdown))
    print()
    rounds = TextTable(
        ["round", "prefix n", "new nodes", "pairs in", "estimated", "pruned",
         "live events", "k-th lower bound"]
    )
    for entry in stats.rounds:
        rounds.add_row(
            [
                entry.index + 1,
                entry.sample_size,
                entry.new_reference_nodes,
                entry.pairs_entering,
                entry.pairs_estimated,
                entry.pairs_pruned,
                entry.live_events,
                "-" if entry.kth_lower_bound is None
                else f"{entry.kth_lower_bound:+.4f}",
            ]
        )
    print(rounds.render(markdown=args.markdown))
    print()
    print(
        render_mapping(
            {
                "k": stats.k,
                "candidate pairs": stats.num_pairs,
                "pairs pruned": stats.pairs_pruned,
                "survivors at full budget": stats.pairs_survived,
                "screening estimates": stats.screen_estimates,
                "full-budget estimates": stats.final_estimates,
                "sample budget": stats.budget,
                "density BFS calls": stats.density_bfs_calls,
                "confidence": ranking.confidence,
                "workers": workers,
                "sampler": args.sampler,
                "level": args.level,
            },
            title="progressive top-k engine",
        )
    )
    return 0


def _command_topk(args: argparse.Namespace) -> int:
    from repro.core.topk import ProgressiveTopKEngine, derive_growth_factor

    k = args.k if args.k is not None else args.top_k
    if k is None:
        print("tesc topk: one of --k / --top-k is required", file=sys.stderr)
        return 2
    graph, labels = read_edge_list(args.edges)
    label_to_id = {label: index for index, label in enumerate(labels)}
    events = read_event_file(args.events, label_to_id=label_to_id)
    attributed = AttributedGraph(graph, events, labels=labels)
    config_kwargs = dict(
        vicinity_level=args.level,
        sample_size=args.sample_size,
        sampler=args.sampler,
        alpha=args.alpha,
        kendall_kernel=args.kendall_kernel,
        random_state=args.seed,
    )
    if args.confidence is not None:
        config_kwargs["topk_confidence"] = args.confidence
    if args.initial_sample is not None:
        config_kwargs["topk_initial_sample_size"] = args.initial_sample
    if args.bound is not None:
        config_kwargs["topk_bound"] = args.bound
    if args.growth is not None:
        config_kwargs["topk_growth_factor"] = args.growth
    elif args.rounds is not None:
        initial = config_kwargs.get(
            "topk_initial_sample_size", DEFAULT_TOPK_INITIAL_SAMPLE_SIZE
        )
        config_kwargs["topk_growth_factor"] = derive_growth_factor(
            initial, args.sample_size, args.rounds
        )
    config = TescConfig(**config_kwargs)
    pairs = [tuple(pair) for pair in args.pair] if args.pair else "all"
    workers = resolve_workers(args.workers)
    with ProgressiveTopKEngine(attributed, config, workers=workers) as engine:
        ranking = engine.top_k(k, pairs)
    return _print_topk(ranking, workers, args)


def _command_stream(args: argparse.Namespace) -> int:
    import threading

    from repro.streaming import ContinuousRanker, DeltaLog, DynamicAttributedGraph

    graph, labels = read_edge_list(args.edges)
    label_to_id = {label: index for index, label in enumerate(labels)}
    events = read_event_file(args.events, label_to_id=label_to_id)
    dynamic = DynamicAttributedGraph(graph, events, labels=labels)
    config = TescConfig(
        vicinity_level=args.level,
        sample_size=args.sample_size,
        sampler=args.sampler,
        alpha=args.alpha,
        kendall_kernel=args.kendall_kernel,
        random_state=args.seed,
    )
    pairs = [tuple(pair) for pair in args.pair] if args.pair else "all"
    log = DeltaLog.load(args.deltas)
    workers = resolve_workers(args.workers)

    # --concurrent-queries: snapshot-isolated readers racing the replay.
    # Each thread loops rank() through a Session over the *same* dynamic
    # graph; every query pins an epoch at admission, so the replay's commits
    # never block it and never tear its view.
    stop = threading.Event()
    counts: List[int] = []
    epochs: set = set()
    epochs_lock = threading.Lock()
    query_threads: List[threading.Thread] = []
    session = None
    if args.concurrent_queries > 0:
        from repro.api import Session

        session = Session(dynamic, config=config)

        def _query_loop(slot: int) -> None:
            done = 0
            while not stop.is_set():
                response = session.rank(pairs, top_k=args.top_k)
                done += 1
                with epochs_lock:
                    epochs.add(response["epoch"])
            counts[slot] = done

        counts.extend(0 for _ in range(args.concurrent_queries))
        for slot in range(args.concurrent_queries):
            thread = threading.Thread(
                target=_query_loop, args=(slot,),
                name=f"tesc-stream-query-{slot}", daemon=True,
            )
            query_threads.append(thread)
            thread.start()
    commits = 0
    hung_readers: List[str] = []
    try:
        with ContinuousRanker(
            dynamic, pairs, config, workers=workers,
            sort_by=args.sort_by, top_k=args.top_k,
        ) as ranker:
            initial = ranker.commit()
            print("initial ranking:")
            print(initial.ranking.render(markdown=args.markdown))
            for number, batch in enumerate(log.replay(), start=1):
                delta = ranker.commit(batch)
                commits = number
                stats = delta.stats
                print()
                print(
                    f"commit {number}: {len(batch)} deltas, "
                    f"{len(delta.changed)} pairs changed "
                    f"({len(delta.verdict_flips)} verdict flips), "
                    f"columns {stats.columns_recomputed} recomputed / "
                    f"{stats.columns_reused} reused / {stats.columns_patched} patched, "
                    f"pairs {stats.pairs_rescored} re-scored / "
                    f"{stats.pairs_reused} reused"
                )
                print(delta.render(markdown=args.markdown))
    finally:
        stop.set()
        for thread in query_threads:
            thread.join(timeout=60.0)
            if thread.is_alive():
                hung_readers.append(thread.name)
        if session is not None and not hung_readers:
            session.close()
    if hung_readers:
        # A reader that outlived its join window is wedged (deadlocked or
        # stuck in a query that should have returned within a minute).
        # Report and fail rather than exiting 0 over a silent hang; the
        # session is deliberately left open — closing it underneath a live
        # thread would only mask the hang with a second failure.
        print(
            "tesc stream: ERROR: "
            f"{len(hung_readers)} concurrent query thread(s) failed to stop "
            f"within 60s: {', '.join(hung_readers)}",
            file=sys.stderr, flush=True,
        )
        return 3
    print()
    print("final ranking:")
    print(ranker.ranking.render(markdown=args.markdown))
    if session is not None:
        total = sum(counts)
        spread = f"{min(epochs)}..{max(epochs)}" if epochs else "-"
        print()
        print(
            f"concurrent queries: {total} snapshot-isolated ranks from "
            f"{args.concurrent_queries} thread(s) across epochs {spread} "
            f"while {commits} commit(s) replayed"
        )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.service import CorrelationServer
    from repro.streaming import DynamicAttributedGraph

    if args.wal and args.static:
        print("tesc serve: --wal needs a dynamic graph; drop --static",
              file=sys.stderr, flush=True)
        return 2
    if args.store and args.static:
        print("tesc serve: --store needs a dynamic graph; drop --static",
              file=sys.stderr, flush=True)
        return 2
    if args.store and not args.wal:
        # The store's WAL lives alongside its checkpoints by default, so
        # one --store flag gives a fully durable server.
        args.wal = os.path.join(args.store, "wal.log")
        os.makedirs(args.store, exist_ok=True)
    graph, labels = read_edge_list(args.edges)
    label_to_id = {label: index for index, label in enumerate(labels)}
    events = read_event_file(args.events, label_to_id=label_to_id)
    graph_cls = AttributedGraph if args.static else DynamicAttributedGraph
    attributed = graph_cls(graph, events, labels=labels)
    config = TescConfig(
        vicinity_level=args.level,
        sample_size=args.sample_size,
        sampler=args.sampler,
        alpha=args.alpha,
        kendall_kernel=args.kendall_kernel,
        random_state=args.seed,
    )
    if args.slow_request_seconds is not None:
        # Route the slow-request JSON lines to stderr so they interleave
        # cleanly with the startup banner on stdout.
        from repro.obs.slowlog import SLOWLOG_LOGGER_NAME
        from repro.utils.logging import configure_json_logging

        configure_json_logging(SLOWLOG_LOGGER_NAME, stream=sys.stderr)
    server = CorrelationServer(
        attributed, config,
        workers=args.workers,
        host=args.host, port=args.port,
        max_concurrency=args.max_concurrency,
        max_queue=args.max_queue,
        queue_timeout=args.queue_timeout,
        default_top_k=args.top_k,
        metrics_port=args.metrics_port,
        slow_request_seconds=args.slow_request_seconds,
        wal=args.wal,
        store=args.store,
        checkpoint_interval=args.checkpoint_interval,
        checkpoint_retain=args.checkpoint_retain,
    )
    server.start()
    host, port = server.address
    mode = "static" if args.static else "dynamic"
    print(f"tesc serve: listening on {host}:{port} "
          f"({mode} graph, {server.engine.workers} worker(s))", flush=True)
    if args.store:
        recovery = server.recovery
        detail = recovery.path if recovery is not None else "fresh"
        if recovery is not None and recovery.checkpoint:
            detail += f" from {recovery.checkpoint}"
        print(f"tesc serve: checkpoint store at {args.store} "
              f"(recovery: {detail})", flush=True)
    if args.wal:
        print(f"tesc serve: write-ahead log at {args.wal} "
              f"({server.replayed_batches} committed batch(es) replayed, "
              f"epoch {server.engine.current_epoch()})", flush=True)
    if args.metrics_port is not None:
        metrics_host, metrics_port = server.metrics_address
        print(f"tesc serve: metrics on http://{metrics_host}:{metrics_port}/metrics",
              flush=True)
    try:
        # The accept loop runs on a daemon thread; park the main thread
        # until the client-issued shutdown (or Ctrl-C) stops the server.
        while not server._stopping.wait(timeout=0.5):
            pass
    except KeyboardInterrupt:
        print("tesc serve: interrupted, shutting down", flush=True)
    finally:
        server.close()
    return 0


def _render_status(status: Dict[str, Any]) -> str:
    """One terminal-friendly summary of a server's status payload."""
    overview = {
        key: status.get(key)
        for key in (
            "epoch", "dynamic", "workers", "num_events", "num_nodes",
            "num_edges", "cached_pair_results", "cached_matrices",
            "cached_topk",
        )
    }
    if "retained_epochs" in status:
        overview["retained_epochs"] = len(status["retained_epochs"])
        overview["retained_bytes"] = status.get("retained_bytes")
    admission = status.get("admission", {})
    sections = [
        render_mapping(overview, title="server"),
        render_mapping(admission, title="admission"),
    ]
    storage = status.get("storage")
    if storage:
        checkpoints = storage.get("checkpoints") or []
        recovery = storage.get("recovery") or {}
        wal = status.get("wal") or {}
        sections.append(render_mapping(
            {
                "root": storage.get("root"),
                "checkpoints": len(checkpoints),
                "newest": checkpoints[0] if checkpoints else None,
                "retain": storage.get("retain"),
                "interval_seconds": storage.get("checkpoint_interval"),
                "last_checkpoint_epoch": storage.get("last_checkpoint_epoch"),
                "recovery_path": recovery.get("path"),
                "recovery_replayed": recovery.get("replayed_batches"),
                "wal_total_batches": wal.get("total_batches"),
                "wal_compacted_batches": wal.get("compacted_batches"),
                "wal_compacted_bytes": wal.get("compacted_bytes"),
            },
            title="storage",
        ))
    metrics = status.get("metrics") or {}
    if metrics:
        table = TextTable(["metric", "value"])
        for name, family in sorted(metrics.items()):
            for entry in family.get("values", []):
                labels = entry.get("labels") or {}
                suffix = (
                    "{" + ",".join(
                        f"{k}={v}" for k, v in sorted(labels.items())
                    ) + "}"
                    if labels else ""
                )
                if family.get("type") == "histogram":
                    count, total = entry.get("count", 0), entry.get("sum", 0.0)
                    mean = total / count if count else 0.0
                    value = f"n={count} mean={mean:.4f}s"
                else:
                    value = entry.get("value")
                table.add_row([name + suffix, value])
        sections.append("metrics\n" + table.render())
    return "\n\n".join(sections)


def _command_status(args: argparse.Namespace) -> int:
    from repro.service import CorrelationClient

    refreshes = 0
    try:
        while True:
            with CorrelationClient(args.host, args.port) as client:
                status = client.status()
            if args.watch:
                # Clear and re-home the terminal for a live dashboard feel.
                print("\x1b[2J\x1b[H", end="")
            print(_render_status(status), flush=True)
            refreshes += 1
            if not args.watch:
                return 0
            if args.iterations is not None and refreshes >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _command_checkpoint(args: argparse.Namespace) -> int:
    from repro.service import CorrelationClient

    with CorrelationClient(args.host, args.port) as client:
        result = client.checkpoint(force=args.force)
    if result.get("skipped"):
        print(f"tesc checkpoint: skipped ({result.get('reason')})", flush=True)
        return 0
    print(
        render_mapping(
            {
                "checkpoint": result.get("checkpoint"),
                "epoch": result.get("epoch"),
                "wal batches covered": result.get("wal_batches"),
                "bytes": result.get("nbytes"),
                "wal bytes reclaimed": result.get("reclaimed_bytes"),
                "pruned": ", ".join(result.get("pruned") or []) or "none",
                "duration": f"{result.get('duration_seconds', 0.0):.3f}s",
            },
            title="checkpoint",
        ),
        flush=True,
    )
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    # The shared flags map onto per-experiment config fields; run_all
    # filters each override to the experiments whose config defines it
    # (every experiment has random_state; kernel/top_k apply where present).
    overrides = {}
    if args.seed is not None:
        overrides["random_state"] = args.seed
    if args.kendall_kernel != "auto":
        overrides["kendall_kernel"] = args.kendall_kernel
    if args.top_k is not None:
        overrides["top_k"] = args.top_k
    results = run_all(
        args.experiment_ids, workers=args.workers,
        config_overrides=overrides or None,
    )
    for index, result in enumerate(results):
        if index:
            print()
        print(result.render(markdown=args.markdown))
    return 0


def _command_dataset(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.name, scale=args.scale, random_state=args.seed)
    attributed = dataset if isinstance(dataset, AttributedGraph) else getattr(
        dataset, "attributed", None
    )
    if attributed is None:
        # twitter-like returns a bare CSRGraph
        summary = summarize_graph(dataset, random_state=args.seed)
        print(render_mapping(summary.as_dict(), title=f"{args.name} ({args.scale})"))
        return 0
    summary = summarize_graph(attributed.csr, random_state=args.seed)
    print(render_mapping(summary.as_dict(), title=f"{args.name} ({args.scale})"))
    sizes = attributed.event_summary()
    table = TextTable(["event", "occurrences"])
    for event in sorted(sizes)[:20]:
        table.add_row([event, sizes[event]])
    print()
    print(table.render())
    if len(sizes) > 20:
        print(f"... and {len(sizes) - 20} more events")
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    from repro.datasets.synthetic_dblp import make_dblp_like

    dataset = make_dblp_like(
        num_communities=12, community_size=100, num_positive_pairs=1,
        num_negative_pairs=1, num_background_keywords=0, random_state=args.seed,
    )
    study = SimulationStudy(
        dataset.attributed.csr,
        event_size=args.event_size,
        num_pairs=args.num_pairs,
        random_state=args.seed,
    )
    config = TescConfig(
        vicinity_level=args.level,
        sample_size=args.sample_size,
        sampler=args.sampler,
        random_state=args.seed,
    )
    evaluation = study.recall_for(args.correlation, args.level, args.noise, config)
    print(
        render_mapping(
            {
                "correlation": args.correlation,
                "h": args.level,
                "noise": args.noise,
                "pairs": evaluation.total,
                "detected": evaluation.detected,
                "recall": f"{evaluation.recall:.3f}",
                "mean z": f"{evaluation.mean_z:+.2f}",
            },
            title="simulation study",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        configure_logging()
    if args.command == "test":
        return _command_test(args)
    if args.command == "rank":
        return _command_rank(args)
    if args.command == "topk":
        return _command_topk(args)
    if args.command == "stream":
        return _command_stream(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "status":
        return _command_status(args)
    if args.command == "checkpoint":
        return _command_checkpoint(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "dataset":
        return _command_dataset(args)
    if args.command == "simulate":
        return _command_simulate(args)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
