"""The unified public façade: ``open_session`` / :class:`Session`.

One entry point fronts every engine in the package.  A session wraps a
snapshot-isolated :class:`~repro.service.engine.ServiceEngine` over one
attributed graph and exposes the whole HTAP surface:

* :meth:`Session.rank` / :meth:`Session.topk` — analytical reads, each
  pinned at admission to one epoch's copy-on-write snapshot and answered
  with the epoch it was computed at;
* :meth:`Session.commit` — transactional delta batches (edges and event
  occurrences); commits never block readers and readers never block
  commits;
* :meth:`Session.snapshot` / :meth:`Session.at_epoch` — frozen state
  handles: ``snapshot()`` returns the current epoch's graph, ``at_epoch(e)``
  returns a leased view that keeps epoch ``e`` readable (and its retired
  CSR rows alive) until the view is closed;
* :meth:`Session.reference_ranking` — the from-scratch serial oracle every
  session answer is bit-identical to at the same epoch and seed.

Example
-------
>>> from repro import open_session, TescConfig
>>> from repro.graph.generators import community_ring_graph
>>> graph = community_ring_graph(8, 40, 5.0, 10, random_state=3)
>>> events = {"a": range(0, 30), "b": range(10, 40), "c": range(160, 200)}
>>> with open_session(graph, TescConfig(sample_size=120, random_state=3),
...                   events=events) as session:
...     before = session.rank()
...     receipt = session.commit([("edge_add", 0, 200)])
...     after = session.rank()
>>> after["epoch"] == before["epoch"] + 1
True
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Union

from repro.core.config import TescConfig
from repro.events.attributed_graph import AttributedGraph
from repro.events.event_set import EventLayer
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.service.engine import ServiceEngine
from repro.streaming.delta import Delta, DeltaBatch
from repro.streaming.dynamic_graph import DynamicAttributedGraph

GraphLike = Union[AttributedGraph, Graph, CSRGraph]

#: Delta shapes commit() accepts per entry: a Delta, a protocol record dict,
#: or a compact tuple ("edge_add", u, v) / ("event_attach", event, node).
DeltaLike = Union[Delta, Mapping[str, Any], Sequence[Any]]


_TUPLE_OPS = {
    "edge_add": Delta.edge_add,
    "edge_remove": Delta.edge_remove,
    "event_attach": Delta.event_attach,
    "event_detach": Delta.event_detach,
}


def _as_records(deltas: Union[DeltaBatch, Iterable[DeltaLike]]) -> list:
    """Normalise every accepted delta shape to protocol records."""
    if isinstance(deltas, DeltaBatch):
        deltas = deltas.deltas
    records = []
    for delta in deltas:
        if isinstance(delta, Delta):
            records.append(delta.to_record())
        elif isinstance(delta, Mapping):
            records.append(dict(delta))
        else:
            op, *rest = delta
            build = _TUPLE_OPS.get(str(op))
            if build is None:
                raise ValueError(
                    f"unknown delta op {op!r}; expected one of "
                    f"{sorted(_TUPLE_OPS)}"
                )
            records.append(build(*rest).to_record())
    return records


class EpochView:
    """A leased, read-only view of one epoch.

    Obtained from :meth:`Session.at_epoch`.  While the view is open, the
    epoch's snapshot stays retained — :attr:`graph`, :meth:`rank`,
    :meth:`topk` and :meth:`reference_ranking` all read exactly that frozen
    state no matter how many commits land meanwhile.  Close the view (or use
    it as a context manager) to drop the lease.
    """

    def __init__(self, session: "Session", epoch: Optional[int]) -> None:
        self._session = session
        self._lease = None
        if isinstance(session.graph, DynamicAttributedGraph):
            self._lease = session.graph.pin(epoch)
            self.epoch = self._lease.epoch
        else:
            # Static graphs cannot travel; the engine validates the epoch.
            self.epoch = session.engine._pin(epoch)[0]

    @property
    def graph(self) -> AttributedGraph:
        """The frozen graph state this view reads."""
        return self._lease.graph if self._lease is not None else self._session.graph

    def rank(self, pairs="all", **kwargs) -> Dict[str, Any]:
        """:meth:`Session.rank` pinned at this view's epoch."""
        return self._session.rank(pairs, at_epoch=self.epoch, **kwargs)

    def topk(self, k: int, pairs="all", **kwargs) -> Dict[str, Any]:
        """:meth:`Session.topk` pinned at this view's epoch."""
        return self._session.topk(k, pairs, at_epoch=self.epoch, **kwargs)

    def reference_ranking(self, pairs="all", **kwargs):
        """The serial from-scratch oracle at this view's epoch."""
        return self._session.reference_ranking(
            pairs, at_epoch=self.epoch, **kwargs
        )

    def close(self) -> None:
        """Drop the lease (idempotent)."""
        if self._lease is not None:
            self._lease.release()

    def __enter__(self) -> "EpochView":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"EpochView(epoch={self.epoch})"


class Session:
    """A live HTAP session over one attributed graph.

    Construct through :func:`open_session`.  All reads are snapshot-
    isolated: each call pins the requested epoch on entry, computes against
    that frozen state, and reports the epoch in its response — concurrent
    commits are never observed mid-read and never wait for readers.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        config: Optional[TescConfig] = None,
        workers: Optional[int] = None,
        **engine_options: Any,
    ) -> None:
        self.engine = ServiceEngine(
            graph, config=config, workers=workers, **engine_options
        )

    # -- state ----------------------------------------------------------------

    @property
    def graph(self) -> AttributedGraph:
        """The live graph this session serves."""
        return self.engine.graph

    @property
    def config(self) -> TescConfig:
        """The session's default configuration."""
        return self.engine.config

    @property
    def epoch(self) -> int:
        """The current commit epoch."""
        return self.engine.current_epoch()

    @property
    def dynamic(self) -> bool:
        """Whether the session accepts commits (dynamic graph underneath)."""
        return isinstance(self.engine.graph, DynamicAttributedGraph)

    # -- reads ----------------------------------------------------------------

    def rank(
        self,
        pairs="all",
        top_k: Optional[int] = None,
        sort_by: str = "score",
        on_insufficient: str = "keep",
        at_epoch: Optional[int] = None,
        **config_overrides: Any,
    ) -> Dict[str, Any]:
        """Rank event pairs at a pinned snapshot.

        Returns the service response dict: ``pairs`` (full-precision
        records), the ``epoch`` the answer was computed at, and cache
        counters.  Keyword overrides (``sample_size=...``,
        ``random_state=...``, ``kendall_kernel=...``) apply for this call
        only.
        """
        return self.engine.rank(
            pairs, top_k=top_k, sort_by=sort_by,
            config_overrides=config_overrides or None,
            on_insufficient=on_insufficient, at_epoch=at_epoch,
        )

    def topk(
        self,
        k: int,
        pairs="all",
        sort_by: str = "score",
        on_insufficient: str = "keep",
        at_epoch: Optional[int] = None,
        **config_overrides: Any,
    ) -> Dict[str, Any]:
        """Progressive top-k at a pinned snapshot (confidence-bound pruned)."""
        return self.engine.topk(
            k, pairs, sort_by=sort_by,
            config_overrides=config_overrides or None,
            on_insufficient=on_insufficient, at_epoch=at_epoch,
        )

    def reference_ranking(self, pairs="all", top_k=None, sort_by="score",
                          at_epoch: Optional[int] = None, **config_overrides):
        """From-scratch serial ranking at the pinned epoch (the oracle).

        What a fresh batch engine over the epoch's snapshot computes —
        every :meth:`rank` answer at the same epoch/config is bit-identical
        to it.
        """
        return self.engine.reference_ranking(
            pairs, top_k=top_k, sort_by=sort_by,
            config_overrides=config_overrides or None, at_epoch=at_epoch,
        )

    # -- writes ---------------------------------------------------------------

    def commit(self, deltas: Union[DeltaBatch, Iterable[DeltaLike]] = ()
               ) -> Dict[str, Any]:
        """Apply one delta batch; returns the commit receipt.

        Accepts :class:`~repro.streaming.delta.Delta` objects, protocol
        record dicts, compact ``(op, ...)`` tuples, or a whole
        :class:`~repro.streaming.delta.DeltaBatch`.  The receipt carries the
        post-commit ``epoch`` plus net effect counts; pass that epoch to
        :meth:`at_epoch` / ``rank(at_epoch=...)`` to read exactly the state
        this commit produced.  Never blocks readers.
        """
        return self.engine.commit(_as_records(deltas))

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> AttributedGraph:
        """The current epoch's frozen graph state.

        For dynamic graphs this is the epoch-memoised copy-on-write
        snapshot; the object stays valid as long as you hold it, regardless
        of later commits.  Static graphs return the live object.
        """
        graph = self.engine.graph
        if isinstance(graph, DynamicAttributedGraph):
            return graph.snapshot()
        return graph

    def at_epoch(self, epoch: Optional[int] = None) -> EpochView:
        """A leased read view of ``epoch`` (default: the current one).

        The view keeps the epoch's snapshot retained until closed; reading
        an epoch no lease retains raises
        :class:`~repro.exceptions.SnapshotExpiredError`.
        """
        return EpochView(self, epoch)

    # -- introspection / lifecycle --------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """Engine status: epoch, versions, cache occupancy, MVCC counters."""
        return self.engine.describe()

    @property
    def metrics(self):
        """The session engine's :class:`~repro.obs.MetricsRegistry`.

        Lifetime counters (requests, cache hits/misses, snapshot pins) live
        here; ``session.metrics.snapshot()`` returns them as a plain dict
        and ``session.metrics.value(name)`` reads one.
        """
        return self.engine.metrics

    def close(self) -> None:
        """Release engine caches and shared-memory publications."""
        self.engine.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Session(epoch={self.epoch}, dynamic={self.dynamic}, "
            f"num_events={len(self.graph.event_names())})"
        )


def open_session(
    graph: GraphLike,
    config: Optional[TescConfig] = None,
    *,
    events: Union[EventLayer, Mapping[str, Iterable[int]], None] = None,
    labels: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    dynamic: Optional[bool] = None,
    **engine_options: Any,
) -> Session:
    """Open a :class:`Session` over ``graph`` — the package's front door.

    Parameters
    ----------
    graph:
        An :class:`~repro.events.attributed_graph.AttributedGraph` (static
        or dynamic), or a bare :class:`~repro.graph.adjacency.Graph` /
        :class:`~repro.graph.csr.CSRGraph` combined with ``events``.
    config:
        Default :class:`~repro.core.config.TescConfig` for the session.
    events / labels:
        Event occurrences and node labels when ``graph`` is a bare graph
        (ignored when an attributed graph is passed).
    workers:
        Worker processes for density/estimate fan-out (1 = serial,
        bit-identical either way).
    dynamic:
        ``True``/``None`` (default) makes the session committable: a bare or
        static graph is wrapped in a
        :class:`~repro.streaming.dynamic_graph.DynamicAttributedGraph`
        *sharing* its CSR and event layer.  ``False`` serves a static graph
        read-only (commits are rejected).
    """
    if isinstance(graph, (Graph, CSRGraph)):
        attributed: AttributedGraph = AttributedGraph(graph, events, labels=labels)
    elif isinstance(graph, AttributedGraph):
        attributed = graph
    else:
        raise TypeError(
            "open_session needs an AttributedGraph, Graph or CSRGraph, "
            f"got {type(graph).__name__}"
        )
    wrap = dynamic if dynamic is not None else True
    if wrap and not isinstance(attributed, DynamicAttributedGraph):
        attributed = DynamicAttributedGraph(
            attributed.csr, attributed.events, labels=attributed.labels
        )
    return Session(attributed, config=config, workers=workers, **engine_options)
