"""Sample-once/reuse plumbing for batch workloads.

Testing many event pairs on one graph re-draws a reference sample per pair
even when consecutive pairs share the same reference population (the same
``V^h_{a∪b}``, or the whole-universe population the batch engine uses).
:class:`CachingSampler` wraps any :class:`~repro.sampling.base.ReferenceSampler`
and memoises its samples keyed by ``(event-node fingerprint, level,
sample_size)``, so shared populations pay the sampling cost once.

The cache is *content-addressed*: two different callers asking for the same
node set at the same level get the same :class:`ReferenceSample` object back
(treat it as read-only).
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Tuple

import numpy as np

from repro.sampling.base import ReferenceSample, ReferenceSampler


def event_nodes_fingerprint(event_nodes: np.ndarray) -> str:
    """Stable content hash of a node set (order-insensitive).

    Used as the cache key component identifying a reference population
    ``V^h_S`` by its source set ``S``.
    """
    canonical = np.unique(np.asarray(event_nodes, dtype=np.int64))
    return hashlib.sha1(canonical.tobytes()).hexdigest()


class CachingSampler(ReferenceSampler):
    """Memoising wrapper around another reference sampler.

    Parameters
    ----------
    inner:
        The sampler that actually draws samples on a cache miss.

    Notes
    -----
    Reuse changes the statistics only in the sense that repeated queries see
    the *same* draw instead of independent draws — exactly the amortisation
    the batch engine wants (and what a fixed ``random_state`` already gives
    per call).  Call :meth:`clear` to force fresh draws.
    """

    name = "caching"

    def __init__(self, inner: ReferenceSampler) -> None:
        super().__init__(inner.graph, random_state=inner.rng)
        self.inner = inner
        self._cache: Dict[Tuple[str, int, int], ReferenceSample] = {}
        self.hits = 0
        self.misses = 0

    def sample(self, event_nodes: np.ndarray, level: int,
               sample_size: int) -> ReferenceSample:
        key = (event_nodes_fingerprint(event_nodes), int(level), int(sample_size))
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        sample = self.inner.sample(event_nodes, level, sample_size)
        self._cache[key] = sample
        return sample

    def clear(self) -> None:
        """Drop all memoised samples (e.g. after a graph mutation)."""
        self._cache.clear()

    @property
    def num_cached(self) -> int:
        """Number of distinct samples currently memoised."""
        return len(self._cache)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"CachingSampler({self.inner!r}, cached={self.num_cached})"


class SampleMemo:
    """Epoch-aware sample memo drawing through *fresh* samplers.

    The streaming subsystem must reproduce, after every committed delta
    batch, exactly the sample a freshly constructed engine would draw: a new
    sampler seeded from the configured ``random_state``, applied to the
    current graph.  Unlike :class:`CachingSampler` — which wraps one
    long-lived sampler whose RNG stream advances across draws — this memo
    calls ``factory()`` on every miss, so each drawn sample is bit-identical
    to a from-scratch engine's.

    Keys combine the population identity (universe fingerprint, level,
    sample size) with the caller-supplied ``epoch``: bump the epoch whenever
    the graph structure changes and stale draws can never be returned, while
    commits that leave both the structure and the monitored universe
    untouched reuse the previous draw for free.

    Parameters
    ----------
    factory:
        Zero-argument callable returning a ready-to-use
        :class:`~repro.sampling.base.ReferenceSampler` over the *current*
        graph with a freshly seeded RNG.
    max_entries:
        Older entries are evicted beyond this count (the streaming ranker
        normally needs exactly one live entry per monitored universe).
    """

    def __init__(self, factory: Callable[[], ReferenceSampler],
                 max_entries: int = 8) -> None:
        self.factory = factory
        self.max_entries = max(1, int(max_entries))
        self._cache: Dict[Tuple[str, int, int, int], ReferenceSample] = {}
        self.hits = 0
        self.misses = 0

    def sample(self, event_nodes: np.ndarray, level: int, sample_size: int,
               epoch: int = 0) -> ReferenceSample:
        """The memoised sample for ``(population, epoch)``, drawing on miss."""
        key = (
            event_nodes_fingerprint(event_nodes), int(level), int(sample_size),
            int(epoch),
        )
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        sample = self.factory().sample(event_nodes, level, sample_size)
        while len(self._cache) >= self.max_entries:
            del self._cache[next(iter(self._cache))]
        self._cache[key] = sample
        return sample

    def clear(self) -> None:
        """Drop every memoised draw."""
        self._cache.clear()

    @property
    def num_cached(self) -> int:
        """Number of distinct samples currently memoised."""
        return len(self._cache)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SampleMemo(cached={self.num_cached})"
