"""Sample-once/reuse plumbing for batch workloads.

Testing many event pairs on one graph re-draws a reference sample per pair
even when consecutive pairs share the same reference population (the same
``V^h_{a∪b}``, or the whole-universe population the batch engine uses).
:class:`CachingSampler` wraps any :class:`~repro.sampling.base.ReferenceSampler`
and memoises its samples keyed by ``(event-node fingerprint, level,
sample_size)``, so shared populations pay the sampling cost once.

The cache is *content-addressed*: two different callers asking for the same
node set at the same level get the same :class:`ReferenceSample` object back
(treat it as read-only).
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Tuple

import numpy as np

from repro.obs.registry import NULL_REGISTRY
from repro.sampling.base import (
    EagerSampleGrowth,
    ReferenceSample,
    ReferenceSampler,
    SampleGrowth,
)


def event_nodes_fingerprint(event_nodes: np.ndarray) -> str:
    """Stable content hash of a node set (order-insensitive).

    Used as the cache key component identifying a reference population
    ``V^h_S`` by its source set ``S``.
    """
    canonical = np.unique(np.asarray(event_nodes, dtype=np.int64))
    return hashlib.sha1(canonical.tobytes()).hexdigest()


class CachingSampler(ReferenceSampler):
    """Memoising wrapper around another reference sampler.

    Parameters
    ----------
    inner:
        The sampler that actually draws samples on a cache miss.

    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; when given, hit/miss
        totals are mirrored into ``tesc_sampler_cache_{hits,misses}_total``
        so the service's hit ratios are scrapeable.

    Notes
    -----
    Reuse changes the statistics only in the sense that repeated queries see
    the *same* draw instead of independent draws — exactly the amortisation
    the batch engine wants (and what a fixed ``random_state`` already gives
    per call).  Call :meth:`clear` to force fresh draws.
    """

    name = "caching"

    def __init__(self, inner: ReferenceSampler, metrics=None) -> None:
        super().__init__(inner.graph, random_state=inner.rng)
        self.inner = inner
        self._cache: Dict[Tuple[str, int, int], ReferenceSample] = {}
        self.hits = 0
        self.misses = 0
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_hits = registry.counter(
            "tesc_sampler_cache_hits_total",
            "Reference samples served from the sampler memo.",
        )
        self._m_misses = registry.counter(
            "tesc_sampler_cache_misses_total",
            "Reference samples drawn fresh on sampler-memo misses.",
        )

    def sample(self, event_nodes: np.ndarray, level: int,
               sample_size: int) -> ReferenceSample:
        key = (event_nodes_fingerprint(event_nodes), int(level), int(sample_size))
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._m_hits.inc()
            return cached
        self.misses += 1
        self._m_misses.inc()
        sample = self.inner.sample(event_nodes, level, sample_size)
        self._cache[key] = sample
        return sample

    def growable(self, event_nodes: np.ndarray, level: int,
                 budget: int) -> SampleGrowth:
        """A prefix-extendable sample that shares this sampler's memo.

        A memoised full-budget sample is reused as an eager (already drawn)
        growth; otherwise the inner sampler's growth is wrapped so that the
        moment it reaches the full budget, the resulting sample is registered
        under the same ``(fingerprint, level, budget)`` key a one-shot
        :meth:`sample` call would use.  A progressive run therefore leaves
        behind exactly the cache entry a batch run needs — and vice versa —
        keeping the two engines' shared samples identical within one engine
        as well as across engines.
        """
        key = (event_nodes_fingerprint(event_nodes), int(level), int(budget))
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._m_hits.inc()
            return EagerSampleGrowth(cached)
        if not self.inner.incremental_growth:
            # One eager draw through sample() (memoising it as usual).
            return EagerSampleGrowth(self.sample(event_nodes, level, budget))
        self.misses += 1
        self._m_misses.inc()
        return _RegisteringGrowth(
            self.inner.growable(event_nodes, level, budget), self._cache, key
        )

    def clear(self) -> None:
        """Drop all memoised samples (e.g. after a graph mutation)."""
        self._cache.clear()

    @property
    def num_cached(self) -> int:
        """Number of distinct samples currently memoised."""
        return len(self._cache)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"CachingSampler({self.inner!r}, cached={self.num_cached})"


class _RegisteringGrowth(SampleGrowth):
    """Delegating growth that memoises the full-budget sample on completion."""

    def __init__(self, inner: SampleGrowth,
                 cache: Dict[Tuple[str, int, int], ReferenceSample],
                 key: Tuple[str, int, int]) -> None:
        super().__init__(inner.budget)
        self._inner = inner
        self._cache = cache
        self._key = key

    def grow_to(self, size: int) -> np.ndarray:
        order = self._inner.grow_to(size)
        self.grown_size = self._inner.grown_size
        return order

    def full_sample(self) -> ReferenceSample:
        sample = self._inner.full_sample()
        self.grown_size = self._inner.grown_size
        self._cache.setdefault(self._key, sample)
        return sample


class SampleMemo:
    """Epoch-aware sample memo drawing through *fresh* samplers.

    The streaming subsystem must reproduce, after every committed delta
    batch, exactly the sample a freshly constructed engine would draw: a new
    sampler seeded from the configured ``random_state``, applied to the
    current graph.  Unlike :class:`CachingSampler` — which wraps one
    long-lived sampler whose RNG stream advances across draws — this memo
    calls ``factory()`` on every miss, so each drawn sample is bit-identical
    to a from-scratch engine's.

    Keys combine the population identity (universe fingerprint, level,
    sample size) with the caller-supplied ``epoch``: bump the epoch whenever
    the graph structure changes and stale draws can never be returned, while
    commits that leave both the structure and the monitored universe
    untouched reuse the previous draw for free.

    Parameters
    ----------
    factory:
        Callable returning a ready-to-use
        :class:`~repro.sampling.base.ReferenceSampler` with a freshly seeded
        RNG.  Called with no arguments for live-graph draws; when a draw is
        requested at a pinned snapshot (``sample(..., graph=snapshot)``) the
        snapshot is passed as the single positional argument, so factories
        serving MVCC readers should accept an optional graph and default to
        the live one.
    max_entries:
        Older entries are evicted beyond this count (the streaming ranker
        normally needs exactly one live entry per monitored universe).
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; hit/miss totals are
        mirrored into ``tesc_sample_memo_{hits,misses}_total``.
    """

    def __init__(self, factory: Callable[..., ReferenceSampler],
                 max_entries: int = 8, metrics=None) -> None:
        self.factory = factory
        self.max_entries = max(1, int(max_entries))
        self._cache: Dict[Tuple[str, int, int, int], ReferenceSample] = {}
        self.hits = 0
        self.misses = 0
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_hits = registry.counter(
            "tesc_sample_memo_hits_total",
            "Epoch-keyed sample draws served from the memo.",
        )
        self._m_misses = registry.counter(
            "tesc_sample_memo_misses_total",
            "Epoch-keyed sample draws taken fresh through the factory.",
        )

    def sample(self, event_nodes: np.ndarray, level: int, sample_size: int,
               epoch: int = 0, graph=None) -> ReferenceSample:
        """The memoised sample for ``(population, epoch)``, drawing on miss.

        ``graph`` routes the miss-path draw to a pinned snapshot instead of
        whatever graph the factory would default to; the epoch in the key
        must identify that snapshot's state for the memo to be coherent.
        """
        key = (
            event_nodes_fingerprint(event_nodes), int(level), int(sample_size),
            int(epoch),
        )
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._m_hits.inc()
            return cached
        self.misses += 1
        self._m_misses.inc()
        sampler = self.factory() if graph is None else self.factory(graph)
        sample = sampler.sample(event_nodes, level, sample_size)
        while len(self._cache) >= self.max_entries:
            del self._cache[next(iter(self._cache))]
        self._cache[key] = sample
        return sample

    def growable(self, event_nodes: np.ndarray, level: int, sample_size: int,
                 epoch: int = 0) -> SampleGrowth:
        """A prefix-extendable view of the memoised sample for the epoch.

        Draws through :meth:`sample` (fresh-sampler semantics preserved:
        the memoised draw is bit-identical to a from-scratch engine's), so
        growth here is always eager — the memo's job is reproducibility
        across commits, not lazy suffix draws.
        """
        return EagerSampleGrowth(
            self.sample(event_nodes, level, sample_size, epoch=epoch)
        )

    def clear(self) -> None:
        """Drop every memoised draw."""
        self._cache.clear()

    @property
    def num_cached(self) -> int:
        """Number of distinct samples currently memoised."""
        return len(self._cache)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SampleMemo(cached={self.num_cached})"
