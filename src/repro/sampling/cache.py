"""Sample-once/reuse plumbing for batch workloads.

Testing many event pairs on one graph re-draws a reference sample per pair
even when consecutive pairs share the same reference population (the same
``V^h_{a∪b}``, or the whole-universe population the batch engine uses).
:class:`CachingSampler` wraps any :class:`~repro.sampling.base.ReferenceSampler`
and memoises its samples keyed by ``(event-node fingerprint, level,
sample_size)``, so shared populations pay the sampling cost once.

The cache is *content-addressed*: two different callers asking for the same
node set at the same level get the same :class:`ReferenceSample` object back
(treat it as read-only).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Tuple

import numpy as np

from repro.sampling.base import ReferenceSample, ReferenceSampler


def event_nodes_fingerprint(event_nodes: np.ndarray) -> str:
    """Stable content hash of a node set (order-insensitive).

    Used as the cache key component identifying a reference population
    ``V^h_S`` by its source set ``S``.
    """
    canonical = np.unique(np.asarray(event_nodes, dtype=np.int64))
    return hashlib.sha1(canonical.tobytes()).hexdigest()


class CachingSampler(ReferenceSampler):
    """Memoising wrapper around another reference sampler.

    Parameters
    ----------
    inner:
        The sampler that actually draws samples on a cache miss.

    Notes
    -----
    Reuse changes the statistics only in the sense that repeated queries see
    the *same* draw instead of independent draws — exactly the amortisation
    the batch engine wants (and what a fixed ``random_state`` already gives
    per call).  Call :meth:`clear` to force fresh draws.
    """

    name = "caching"

    def __init__(self, inner: ReferenceSampler) -> None:
        super().__init__(inner.graph, random_state=inner.rng)
        self.inner = inner
        self._cache: Dict[Tuple[str, int, int], ReferenceSample] = {}
        self.hits = 0
        self.misses = 0

    def sample(self, event_nodes: np.ndarray, level: int,
               sample_size: int) -> ReferenceSample:
        key = (event_nodes_fingerprint(event_nodes), int(level), int(sample_size))
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        sample = self.inner.sample(event_nodes, level, sample_size)
        self._cache[key] = sample
        return sample

    def clear(self) -> None:
        """Drop all memoised samples (e.g. after a graph mutation)."""
        self._cache.clear()

    @property
    def num_cached(self) -> int:
        """Number of distinct samples currently memoised."""
        return len(self._cache)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"CachingSampler({self.inner!r}, cached={self.num_cached})"
