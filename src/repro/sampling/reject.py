"""Rejection sampling of reference nodes (Procedure RejectSamp).

RejectSamp draws an event node ``v`` with probability proportional to
``|V^h_v|``, draws a node ``u`` uniformly from ``V^h_v``, then accepts ``u``
with probability ``1 / |V^h_u ∩ V_{a∪b}|``.  Proposition 1 shows the accepted
nodes are uniform over ``V^h_{a∪b}``.

The paper's preliminary experiments found the procedure inefficient — the
acceptance probability is ``N / N_sum`` and vicinity overlap makes ``N_sum``
much larger than ``N`` on real graphs — which is what motivates the
importance-sampling estimator.  We implement it both as the historical
baseline and because it remains the only *exactly uniform* sampler that does
not enumerate the population.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.csr import CSRGraph
from repro.graph.traversal import BFSEngine
from repro.graph.vicinity import VicinityIndex
from repro.sampling.base import ReferenceSample, ReferenceSampler, SamplingCost
from repro.utils.rng import RandomState


class RejectionSampler(ReferenceSampler):
    """Exactly-uniform reference sampling via rejection (RejectSamp).

    Parameters
    ----------
    graph:
        The CSR graph.
    vicinity_index:
        Pre-computed ``|V^h_v|`` index; created lazily when not supplied.
    max_attempts_per_node:
        Safety valve: the expected number of attempts per accepted node is
        ``N_sum / N``; if the sampler exceeds this many attempts per
        requested node it raises :class:`SamplingError` instead of looping
        forever on pathological inputs.
    """

    name = "reject"

    def __init__(
        self,
        graph: CSRGraph,
        vicinity_index: Optional[VicinityIndex] = None,
        random_state: RandomState = None,
        max_attempts_per_node: int = 1000,
    ) -> None:
        super().__init__(graph, random_state)
        self._engine = BFSEngine(graph)
        self._index = vicinity_index
        if max_attempts_per_node < 1:
            raise SamplingError("max_attempts_per_node must be positive")
        self._max_attempts_per_node = max_attempts_per_node

    def _vicinity_index(self, level: int) -> VicinityIndex:
        if self._index is None or level not in self._index.levels:
            levels = {level}
            if self._index is not None:
                levels |= set(self._index.levels)
            self._index = VicinityIndex(self.graph, levels=sorted(levels), lazy=True)
        return self._index

    def sample(self, event_nodes: np.ndarray, level: int,
               sample_size: int) -> ReferenceSample:
        event_nodes = self._validate(event_nodes, level, sample_size)
        started = time.perf_counter()
        self._engine.reset_counters()
        index = self._vicinity_index(level)

        sizes = index.sizes(event_nodes, level).astype(float)
        total = sizes.sum()
        if total <= 0:
            raise SamplingError("event nodes have empty vicinities")
        # Cumulative distribution over event nodes: O(log |Va∪b|) per draw.
        cumulative = np.cumsum(sizes / total)

        event_marker = np.zeros(self.graph.num_nodes, dtype=bool)
        event_marker[event_nodes] = True

        accepted: dict = {}
        rejections = 0
        attempts = 0
        max_attempts = self._max_attempts_per_node * sample_size
        while len(accepted) < sample_size and attempts < max_attempts:
            attempts += 1
            # Step 1: pick an event node proportionally to its vicinity size.
            pick = int(np.searchsorted(cumulative, self.rng.random(), side="right"))
            pick = min(pick, event_nodes.size - 1)
            source = int(event_nodes[pick])
            # Step 2: uniform node from the event node's vicinity.
            vicinity = self._engine.vicinity(source, level)
            candidate = int(vicinity[int(self.rng.integers(0, vicinity.size))])
            # Step 3: count event nodes seen from the candidate.
            overlap, _size = self._engine.count_marked_in_vicinity(
                candidate, level, event_marker
            )
            if overlap <= 0:
                raise SamplingError(
                    "candidate drawn from an event vicinity sees no event nodes; "
                    "the graph or vicinity index is inconsistent"
                )
            # Step 4: accept with probability 1 / overlap.
            if self.rng.random() < 1.0 / overlap:
                if candidate not in accepted:
                    accepted[candidate] = 1
            else:
                rejections += 1

        if len(accepted) < sample_size and attempts >= max_attempts:
            raise SamplingError(
                f"rejection sampling exceeded {max_attempts} attempts while "
                f"collecting {sample_size} reference nodes (got {len(accepted)}); "
                "use importance or batch_bfs sampling for this input"
            )

        # ``accepted`` is insertion-ordered, i.e. the acceptance sequence of
        # the rejection loop — an exchangeable order whose prefixes are
        # themselves uniform samples (used by prefix-extendable growth).
        draw_order = np.fromiter(accepted, count=len(accepted), dtype=np.int64)
        cost = SamplingCost(
            rejections=rejections, wall_seconds=time.perf_counter() - started
        )
        cost.merge_engine(self._engine)
        return ReferenceSample(
            nodes=np.sort(draw_order),
            frequencies=np.ones(draw_order.size, dtype=np.int64),
            probabilities=None,
            weighted=False,
            population_size=None,
            cost=cost,
            draw_order=draw_order,
        )
