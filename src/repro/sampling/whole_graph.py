"""Whole-graph reference sampling (Algorithm 3).

When ``|V_{a∪b}|`` and ``h`` are large, a random node of the whole graph is
likely to lie inside ``V^h_{a∪b}``, so one can simply draw nodes uniformly
from ``V`` and keep those whose h-vicinity contains an event node.  Each
tested candidate costs one h-hop BFS; the expected number of wasted tests is
``n·|V|/N − n``, so the strategy is only recommended for large event sets and
high vicinity levels (the paper suggests h = 3 and ``|V_{a∪b}|`` above ~200k
on the Twitter graph).
"""

from __future__ import annotations

import time

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.csr import CSRGraph
from repro.graph.traversal import BFSEngine
from repro.sampling.base import ReferenceSample, ReferenceSampler, SamplingCost
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive_int


class WholeGraphSampler(ReferenceSampler):
    """Uniform sampling over ``V`` with an in-vicinity eligibility test.

    Parameters
    ----------
    max_draw_factor:
        Safety valve: the sampler gives up (raising :class:`SamplingError`)
        after ``max_draw_factor * sample_size`` candidate draws, which only
        triggers when the event set is so small that Whole-graph sampling is
        the wrong tool (the paper applies it "in limited scenarios").
    """

    name = "whole_graph"

    def __init__(self, graph: CSRGraph, random_state: RandomState = None,
                 max_draw_factor: int = 200) -> None:
        super().__init__(graph, random_state)
        self._engine = BFSEngine(graph)
        self._max_draw_factor = check_positive_int(max_draw_factor, "max_draw_factor")

    def sample(self, event_nodes: np.ndarray, level: int,
               sample_size: int) -> ReferenceSample:
        event_nodes = self._validate(event_nodes, level, sample_size)
        started = time.perf_counter()
        self._engine.reset_counters()

        event_marker = np.zeros(self.graph.num_nodes, dtype=bool)
        event_marker[event_nodes] = True

        accepted = set()
        out_of_sight = 0
        draws = 0
        max_draws = self._max_draw_factor * sample_size
        num_nodes = self.graph.num_nodes
        # Sampling without replacement from V, implemented by drawing with
        # replacement and skipping repeats: repeats are vanishingly rare for
        # the graph sizes this sampler targets, and the eligible subset stays
        # uniformly distributed either way.
        while len(accepted) < sample_size and draws < max_draws:
            draws += 1
            candidate = int(self.rng.integers(0, num_nodes))
            if candidate in accepted:
                continue
            overlap, _ = self._engine.count_marked_in_vicinity(
                candidate, level, event_marker
            )
            if overlap > 0:
                accepted.add(candidate)
            else:
                out_of_sight += 1

        if len(accepted) < min(sample_size, 2):
            raise SamplingError(
                f"whole-graph sampling found only {len(accepted)} eligible reference "
                f"nodes in {draws} draws; the event set is too small for this sampler"
            )

        nodes = np.array(sorted(accepted), dtype=np.int64)
        cost = SamplingCost(
            out_of_sight_draws=out_of_sight, wall_seconds=time.perf_counter() - started
        )
        cost.merge_engine(self._engine)
        return ReferenceSample(
            nodes=nodes,
            frequencies=np.ones(nodes.size, dtype=np.int64),
            probabilities=None,
            weighted=False,
            population_size=None,
            cost=cost,
        )
