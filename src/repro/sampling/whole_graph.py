"""Whole-graph reference sampling (Algorithm 3).

When ``|V_{a∪b}|`` and ``h`` are large, a random node of the whole graph is
likely to lie inside ``V^h_{a∪b}``, so one can simply draw nodes uniformly
from ``V`` and keep those whose h-vicinity contains an event node.  Each
tested candidate costs one h-hop BFS; the expected number of wasted tests is
``n·|V|/N − n``, so the strategy is only recommended for large event sets and
high vicinity levels (the paper suggests h = 3 and ``|V_{a∪b}|`` above ~200k
on the Twitter graph).

Because the sampler is a plain acceptance loop, it extends naturally to
*incremental* prefix growth: stopping the loop at ``n₁`` accepted nodes and
later resuming it to ``n₂`` consumes the RNG stream exactly as a one-shot
draw of ``n₂`` would, so the progressive top-k engine's early rounds pay
only for the eligibility BFS of the nodes they actually reveal.
"""

from __future__ import annotations

import time

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.csr import CSRGraph
from repro.graph.traversal import BFSEngine
from repro.sampling.base import (
    ReferenceSample,
    ReferenceSampler,
    SampleGrowth,
    SamplingCost,
)
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive_int


class WholeGraphSampler(ReferenceSampler):
    """Uniform sampling over ``V`` with an in-vicinity eligibility test.

    Parameters
    ----------
    max_draw_factor:
        Safety valve: the sampler gives up (raising :class:`SamplingError`)
        after ``max_draw_factor * sample_size`` candidate draws, which only
        triggers when the event set is so small that Whole-graph sampling is
        the wrong tool (the paper applies it "in limited scenarios").
    """

    name = "whole_graph"
    incremental_growth = True

    def __init__(self, graph: CSRGraph, random_state: RandomState = None,
                 max_draw_factor: int = 200) -> None:
        super().__init__(graph, random_state)
        self._engine = BFSEngine(graph)
        self._max_draw_factor = check_positive_int(max_draw_factor, "max_draw_factor")

    def _advance(self, accepted: dict, counters: dict,
                 event_marker: np.ndarray, level: int, target: int) -> None:
        """Run the acceptance loop until ``target`` accepted nodes (or give up).

        ``accepted`` is insertion-ordered (the draw order) and ``counters``
        carries ``draws``/``out_of_sight`` across calls, so resuming with a
        larger target consumes the RNG stream exactly as a single run to that
        target would — the property the incremental growth path relies on.
        """
        max_draws = self._max_draw_factor * target
        num_nodes = self.graph.num_nodes
        # Sampling without replacement from V, implemented by drawing with
        # replacement and skipping repeats: repeats are vanishingly rare for
        # the graph sizes this sampler targets, and the eligible subset stays
        # uniformly distributed either way.
        while len(accepted) < target and counters["draws"] < max_draws:
            counters["draws"] += 1
            candidate = int(self.rng.integers(0, num_nodes))
            if candidate in accepted:
                continue
            overlap, _ = self._engine.count_marked_in_vicinity(
                candidate, level, event_marker
            )
            if overlap > 0:
                accepted[candidate] = True
            else:
                counters["out_of_sight"] += 1

        if len(accepted) < min(target, 2):
            raise SamplingError(
                f"whole-graph sampling found only {len(accepted)} eligible "
                f"reference nodes in {counters['draws']} draws; the event set "
                "is too small for this sampler"
            )

    def _event_marker(self, event_nodes: np.ndarray) -> np.ndarray:
        event_marker = np.zeros(self.graph.num_nodes, dtype=bool)
        event_marker[event_nodes] = True
        return event_marker

    @staticmethod
    def _build_sample(accepted: dict, counters: dict,
                      wall_seconds: float, engine: BFSEngine) -> ReferenceSample:
        draw_order = np.fromiter(accepted, count=len(accepted), dtype=np.int64)
        cost = SamplingCost(
            out_of_sight_draws=counters["out_of_sight"], wall_seconds=wall_seconds
        )
        cost.merge_engine(engine)
        return ReferenceSample(
            nodes=np.sort(draw_order),
            frequencies=np.ones(draw_order.size, dtype=np.int64),
            probabilities=None,
            weighted=False,
            population_size=None,
            cost=cost,
            draw_order=draw_order,
        )

    def sample(self, event_nodes: np.ndarray, level: int,
               sample_size: int) -> ReferenceSample:
        event_nodes = self._validate(event_nodes, level, sample_size)
        started = time.perf_counter()
        self._engine.reset_counters()
        accepted: dict = {}
        counters = {"draws": 0, "out_of_sight": 0}
        self._advance(
            accepted, counters, self._event_marker(event_nodes), level, sample_size
        )
        return self._build_sample(
            accepted, counters, time.perf_counter() - started, self._engine
        )

    def growable(self, event_nodes: np.ndarray, level: int,
                 budget: int) -> "_WholeGraphGrowth":
        """Lazy prefix growth: each round draws only its suffix.

        Unlike the default eager path, nothing is drawn until the first
        :meth:`~repro.sampling.base.SampleGrowth.grow_to`; growing to the
        full budget leaves the RNG stream (and the accepted node set) exactly
        where a one-shot :meth:`sample` of the budget would.
        """
        event_nodes = self._validate(event_nodes, level, budget)
        return _WholeGraphGrowth(self, event_nodes, level, budget)


class _WholeGraphGrowth(SampleGrowth):
    """Resumable acceptance-loop state for :class:`WholeGraphSampler`."""

    def __init__(self, sampler: WholeGraphSampler, event_nodes: np.ndarray,
                 level: int, budget: int) -> None:
        super().__init__(budget)
        self._sampler = sampler
        self._event_marker = sampler._event_marker(event_nodes)
        self._level = int(level)
        self._accepted: dict = {}
        self._counters = {"draws": 0, "out_of_sight": 0}
        self._wall_seconds = 0.0
        sampler._engine.reset_counters()

    def grow_to(self, size: int) -> np.ndarray:
        target = min(int(size), self.budget)
        if target > len(self._accepted):
            started = time.perf_counter()
            self._sampler._advance(
                self._accepted, self._counters, self._event_marker,
                self._level, target,
            )
            self._wall_seconds += time.perf_counter() - started
        self.grown_size = len(self._accepted)
        return np.fromiter(
            self._accepted, count=len(self._accepted), dtype=np.int64
        )

    def full_sample(self) -> ReferenceSample:
        self.grow_to(self.budget)
        return WholeGraphSampler._build_sample(
            self._accepted, self._counters, self._wall_seconds,
            self._sampler._engine,
        )
