"""Sampler interface and common result types."""

from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import EmptyReferenceSetError, SamplingError
from repro.graph.csr import CSRGraph
from repro.graph.traversal import BFSEngine
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_positive_int, check_vicinity_level


@dataclass
class SamplingCost:
    """Cost counters accumulated while drawing one reference sample.

    The complexity analysis of Section 4.4 compares samplers by the number of
    h-hop BFS searches they issue and the amount of adjacency data scanned;
    these counters make that comparison measurable.
    """

    bfs_calls: int = 0
    nodes_scanned: int = 0
    edges_scanned: int = 0
    rejections: int = 0
    out_of_sight_draws: int = 0
    wall_seconds: float = 0.0

    def merge_engine(self, engine: BFSEngine) -> None:
        """Fold a BFS engine's counters into this cost record."""
        self.bfs_calls += engine.bfs_calls
        self.nodes_scanned += engine.nodes_scanned
        self.edges_scanned += engine.edges_scanned


@dataclass
class ReferenceSample:
    """A sample of reference nodes plus the metadata estimators need.

    Attributes
    ----------
    nodes:
        Distinct reference node ids.
    frequencies:
        How many times each node was drawn (all ones for uniform samplers;
        the ``W`` multiset of Algorithm 2 for importance sampling).
    probabilities:
        Per-draw selection probability ``p(r_i)`` for non-uniform samplers,
        ``None`` for uniform ones.
    weighted:
        Whether the estimator must apply importance weights (Eq. 8).
    population_size:
        ``N = |V^h_{a∪b}|`` when the sampler enumerated it (Batch BFS),
        otherwise ``None``.
    cost:
        The :class:`SamplingCost` accumulated while sampling.
    draw_order:
        The same node ids in the order the sampler drew them, when the
        sampler records one (``None`` otherwise).  For uniform samplers the
        draw sequence is exchangeable, so every prefix of ``draw_order`` is
        itself a uniform sample of the population — the invariant the
        progressive top-k engine's round schedule rests on (see
        :class:`SampleGrowth`).
    """

    nodes: np.ndarray
    frequencies: np.ndarray
    probabilities: Optional[np.ndarray] = None
    weighted: bool = False
    population_size: Optional[int] = None
    cost: SamplingCost = field(default_factory=SamplingCost)
    draw_order: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.nodes = np.asarray(self.nodes, dtype=np.int64)
        self.frequencies = np.asarray(self.frequencies, dtype=np.int64)
        if self.nodes.ndim != 1:
            raise SamplingError("nodes must be a 1-D array")
        if self.frequencies.shape != self.nodes.shape:
            raise SamplingError("frequencies must have the same shape as nodes")
        if np.unique(self.nodes).size != self.nodes.size:
            raise SamplingError("reference nodes must be distinct")
        if self.probabilities is not None:
            self.probabilities = np.asarray(self.probabilities, dtype=float)
            if self.probabilities.shape != self.nodes.shape:
                raise SamplingError("probabilities must have the same shape as nodes")
        if self.draw_order is not None:
            self.draw_order = np.asarray(self.draw_order, dtype=np.int64)
            if (
                self.draw_order.shape != self.nodes.shape
                or not np.array_equal(np.sort(self.draw_order), np.sort(self.nodes))
            ):
                raise SamplingError(
                    "draw_order must be a permutation of the sampled nodes"
                )

    @property
    def num_distinct(self) -> int:
        """Number of distinct reference nodes in the sample."""
        return int(self.nodes.size)

    @property
    def num_draws(self) -> int:
        """Total number of draws (``n'`` in Algorithm 2)."""
        return int(self.frequencies.sum())


def deterministic_draw_order(nodes: np.ndarray) -> np.ndarray:
    """A content-keyed pseudo-random permutation of ``nodes``.

    Fallback draw order for samples whose sampler did not record one (e.g.
    the exhaustive sampler, whose "sample" is the enumerated population).
    The permutation is keyed purely by the node-set content, so any process
    — parent or worker, fresh engine or cached — derives the identical
    order for the same sample without consuming anyone's RNG stream.
    """
    canonical = np.sort(np.asarray(nodes, dtype=np.int64))
    digest = hashlib.sha1(canonical.tobytes()).digest()
    seed = int.from_bytes(digest[:8], "little")
    order_rng = np.random.Generator(np.random.PCG64(seed))
    return canonical[order_rng.permutation(canonical.size)]


class SampleGrowth(abc.ABC):
    """A reference sample that grows toward a budget in prefix rounds.

    The progressive top-k engine consumes samples through this seam: each
    round asks for a larger prefix via :meth:`grow_to`, and the contract is
    the *prefix invariant* — the draw-order node sequence returned for size
    ``m`` is a strict prefix of the sequence returned for any ``m' > m``,
    and growing all the way to ``budget`` yields exactly the sample (same
    node set) the sampler's one-shot :meth:`ReferenceSampler.sample` would
    draw for the same arguments from the same RNG state.
    """

    def __init__(self, budget: int) -> None:
        self.budget = int(budget)

    @abc.abstractmethod
    def grow_to(self, size: int) -> np.ndarray:
        """Grow to ``min(size, budget)`` drawn nodes; return them in draw order.

        The returned array is a read-only view of the growth's internal
        draw-order sequence — round ``r``'s array is literally a prefix of
        round ``r + 1``'s.
        """

    @abc.abstractmethod
    def full_sample(self) -> ReferenceSample:
        """The canonical full-budget :class:`ReferenceSample` (sorted nodes).

        Implies :meth:`grow_to` ``(budget)``.  Bit-identical to the one-shot
        draw of the same sampler, which is what makes a progressive run's
        surviving pairs match a full-budget batch run exactly.
        """

    @property
    def size(self) -> int:
        """Number of nodes drawn so far."""
        return int(self.grown_size)

    grown_size: int = 0


class EagerSampleGrowth(SampleGrowth):
    """Prefix growth over a sample that was drawn in full up front.

    Wraps any already-drawn :class:`ReferenceSample`: the draw order is the
    sampler-recorded one when available (``sample.draw_order``), else the
    content-keyed :func:`deterministic_draw_order`.  ``grow_to`` merely
    reveals a longer prefix — no new randomness is consumed, so the final
    sample is trivially the one-shot draw.
    """

    def __init__(self, sample: ReferenceSample) -> None:
        super().__init__(sample.nodes.size)
        self._sample = sample
        # Private copy: freezing the caller's (possibly cached and shared)
        # draw_order array in place would leak read-only state to every
        # other holder of the sample.
        order = (
            sample.draw_order.copy()
            if sample.draw_order is not None
            else deterministic_draw_order(sample.nodes)
        )
        order.setflags(write=False)
        self._order = order
        self.grown_size = 0

    def grow_to(self, size: int) -> np.ndarray:
        self.grown_size = max(self.grown_size, min(int(size), self.budget))
        return self._order[: self.grown_size]

    def full_sample(self) -> ReferenceSample:
        self.grow_to(self.budget)
        return self._sample


class ReferenceSampler(abc.ABC):
    """Strategy interface for reference-node sampling.

    Concrete samplers are constructed with everything that does not depend on
    the event pair (the graph, vicinity index, RNG) and are then asked for
    samples via :meth:`sample`, which receives the union event-node set
    ``V_{a∪b}`` and the vicinity level.
    """

    #: Registry name; subclasses override.
    name = "abstract"

    #: Whether :meth:`growable` draws lazily round by round from the RNG
    #: stream (True for acceptance-loop samplers such as whole-graph) rather
    #: than eagerly revealing prefixes of a one-shot draw.
    incremental_growth = False

    def __init__(self, graph: CSRGraph, random_state: RandomState = None) -> None:
        self.graph = graph
        self.rng = ensure_rng(random_state)

    @abc.abstractmethod
    def sample(self, event_nodes: np.ndarray, level: int,
               sample_size: int) -> ReferenceSample:
        """Draw a reference sample for the given event-node union."""

    def growable(self, event_nodes: np.ndarray, level: int,
                 budget: int) -> SampleGrowth:
        """A prefix-extendable sample targeting ``budget`` reference nodes.

        The default draws the full budget once through :meth:`sample` (so
        the RNG stream advances exactly as a one-shot draw would) and grows
        by revealing prefixes of the recorded draw order.  Samplers whose
        per-draw cost is significant override this to draw each round's
        suffix lazily from the same stream (``incremental_growth = True``).
        """
        return EagerSampleGrowth(self.sample(event_nodes, level, budget))

    def _validate(self, event_nodes: np.ndarray, level: int, sample_size: int) -> np.ndarray:
        check_vicinity_level(level)
        check_positive_int(sample_size, "sample_size")
        nodes = np.unique(np.asarray(event_nodes, dtype=np.int64))
        if nodes.size == 0:
            raise EmptyReferenceSetError("the two events have no occurrences")
        if nodes.min() < 0 or nodes.max() >= self.graph.num_nodes:
            raise SamplingError("event nodes fall outside the graph")
        return nodes

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"
