"""Sampler interface and common result types."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import EmptyReferenceSetError, SamplingError
from repro.graph.csr import CSRGraph
from repro.graph.traversal import BFSEngine
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_positive_int, check_vicinity_level


@dataclass
class SamplingCost:
    """Cost counters accumulated while drawing one reference sample.

    The complexity analysis of Section 4.4 compares samplers by the number of
    h-hop BFS searches they issue and the amount of adjacency data scanned;
    these counters make that comparison measurable.
    """

    bfs_calls: int = 0
    nodes_scanned: int = 0
    edges_scanned: int = 0
    rejections: int = 0
    out_of_sight_draws: int = 0
    wall_seconds: float = 0.0

    def merge_engine(self, engine: BFSEngine) -> None:
        """Fold a BFS engine's counters into this cost record."""
        self.bfs_calls += engine.bfs_calls
        self.nodes_scanned += engine.nodes_scanned
        self.edges_scanned += engine.edges_scanned


@dataclass
class ReferenceSample:
    """A sample of reference nodes plus the metadata estimators need.

    Attributes
    ----------
    nodes:
        Distinct reference node ids.
    frequencies:
        How many times each node was drawn (all ones for uniform samplers;
        the ``W`` multiset of Algorithm 2 for importance sampling).
    probabilities:
        Per-draw selection probability ``p(r_i)`` for non-uniform samplers,
        ``None`` for uniform ones.
    weighted:
        Whether the estimator must apply importance weights (Eq. 8).
    population_size:
        ``N = |V^h_{a∪b}|`` when the sampler enumerated it (Batch BFS),
        otherwise ``None``.
    cost:
        The :class:`SamplingCost` accumulated while sampling.
    """

    nodes: np.ndarray
    frequencies: np.ndarray
    probabilities: Optional[np.ndarray] = None
    weighted: bool = False
    population_size: Optional[int] = None
    cost: SamplingCost = field(default_factory=SamplingCost)

    def __post_init__(self) -> None:
        self.nodes = np.asarray(self.nodes, dtype=np.int64)
        self.frequencies = np.asarray(self.frequencies, dtype=np.int64)
        if self.nodes.ndim != 1:
            raise SamplingError("nodes must be a 1-D array")
        if self.frequencies.shape != self.nodes.shape:
            raise SamplingError("frequencies must have the same shape as nodes")
        if np.unique(self.nodes).size != self.nodes.size:
            raise SamplingError("reference nodes must be distinct")
        if self.probabilities is not None:
            self.probabilities = np.asarray(self.probabilities, dtype=float)
            if self.probabilities.shape != self.nodes.shape:
                raise SamplingError("probabilities must have the same shape as nodes")

    @property
    def num_distinct(self) -> int:
        """Number of distinct reference nodes in the sample."""
        return int(self.nodes.size)

    @property
    def num_draws(self) -> int:
        """Total number of draws (``n'`` in Algorithm 2)."""
        return int(self.frequencies.sum())


class ReferenceSampler(abc.ABC):
    """Strategy interface for reference-node sampling.

    Concrete samplers are constructed with everything that does not depend on
    the event pair (the graph, vicinity index, RNG) and are then asked for
    samples via :meth:`sample`, which receives the union event-node set
    ``V_{a∪b}`` and the vicinity level.
    """

    #: Registry name; subclasses override.
    name = "abstract"

    def __init__(self, graph: CSRGraph, random_state: RandomState = None) -> None:
        self.graph = graph
        self.rng = ensure_rng(random_state)

    @abc.abstractmethod
    def sample(self, event_nodes: np.ndarray, level: int,
               sample_size: int) -> ReferenceSample:
        """Draw a reference sample for the given event-node union."""

    def _validate(self, event_nodes: np.ndarray, level: int, sample_size: int) -> np.ndarray:
        check_vicinity_level(level)
        check_positive_int(sample_size, "sample_size")
        nodes = np.unique(np.asarray(event_nodes, dtype=np.int64))
        if nodes.size == 0:
            raise EmptyReferenceSetError("the two events have no occurrences")
        if nodes.min() < 0 or nodes.max() >= self.graph.num_nodes:
            raise SamplingError("event nodes fall outside the graph")
        return nodes

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"
