"""Importance sampling of reference nodes (Algorithm 2).

Instead of rejecting draws to force uniformity, importance sampling keeps
every draw and corrects for the non-uniform selection distribution
``p(u) = |V^h_u ∩ V_{a∪b}| / N_sum`` inside the estimator ``t̃`` (Eq. 8).
Each iteration costs one h-hop BFS, so the total sampling cost depends on the
requested sample size ``n`` rather than on the population size ``N``.

The batched variant (Section 5.2.2, Figure 7) draws ``batch_per_vicinity``
reference nodes from each visited event vicinity, trading a small amount of
estimator quality (local-correlation trapping) for fewer BFS calls.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.csr import CSRGraph
from repro.graph.traversal import BFSEngine
from repro.graph.vicinity import VicinityIndex
from repro.sampling.base import ReferenceSample, ReferenceSampler, SamplingCost
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive_int


class ImportanceSampler(ReferenceSampler):
    """Non-uniform sampling with importance-weight correction (Algorithm 2).

    Parameters
    ----------
    graph:
        The CSR graph.
    vicinity_index:
        Pre-computed ``|V^h_v|`` index (built lazily when omitted).
    batch_per_vicinity:
        How many reference nodes to draw from each sampled event node's
        vicinity.  1 reproduces Algorithm 2 exactly; larger values give the
        batched variant evaluated in Figure 7.
    max_iterations_factor:
        Safety valve on the sampling loop (the loop normally runs ~``n``
        iterations since repeat draws are rare when ``N`` is large).
    """

    name = "importance"

    def __init__(
        self,
        graph: CSRGraph,
        vicinity_index: Optional[VicinityIndex] = None,
        batch_per_vicinity: int = 1,
        random_state: RandomState = None,
        max_iterations_factor: int = 50,
    ) -> None:
        super().__init__(graph, random_state)
        self._engine = BFSEngine(graph)
        self._index = vicinity_index
        self.batch_per_vicinity = check_positive_int(batch_per_vicinity, "batch_per_vicinity")
        self._max_iterations_factor = check_positive_int(
            max_iterations_factor, "max_iterations_factor"
        )

    def _vicinity_index(self, level: int) -> VicinityIndex:
        if self._index is None or level not in self._index.levels:
            levels = {level}
            if self._index is not None:
                levels |= set(self._index.levels)
            self._index = VicinityIndex(self.graph, levels=sorted(levels), lazy=True)
        return self._index

    def sample(self, event_nodes: np.ndarray, level: int,
               sample_size: int) -> ReferenceSample:
        event_nodes = self._validate(event_nodes, level, sample_size)
        started = time.perf_counter()
        self._engine.reset_counters()
        index = self._vicinity_index(level)

        sizes = index.sizes(event_nodes, level).astype(float)
        total_size = sizes.sum()
        if total_size <= 0:
            raise SamplingError("event nodes have empty vicinities")
        # Cumulative distribution over event nodes: one O(log |Va∪b|)
        # searchsorted per draw instead of an O(|Va∪b|) categorical draw.
        cumulative = np.cumsum(sizes / total_size)

        event_marker = np.zeros(self.graph.num_nodes, dtype=bool)
        event_marker[event_nodes] = True

        frequencies: Dict[int, int] = {}
        iterations = 0
        max_iterations = self._max_iterations_factor * sample_size + 10
        while len(frequencies) < sample_size and iterations < max_iterations:
            iterations += 1
            # Line 4: pick an event node with probability |V^h_v| / N_sum.
            pick = int(np.searchsorted(cumulative, self.rng.random(), side="right"))
            pick = min(pick, event_nodes.size - 1)
            source = int(event_nodes[pick])
            # Line 5: one h-hop BFS, then draw reference node(s) uniformly.
            vicinity = self._engine.vicinity(source, level)
            draws = min(self.batch_per_vicinity, int(vicinity.size))
            chosen = self.rng.choice(vicinity, size=draws, replace=False)
            for reference in np.atleast_1d(chosen):
                reference = int(reference)
                frequencies[reference] = frequencies.get(reference, 0) + 1
                if len(frequencies) >= sample_size:
                    break

        if len(frequencies) < 2:
            raise SamplingError(
                "importance sampling could not collect at least two distinct "
                f"reference nodes after {iterations} iterations"
            )

        nodes = np.array(sorted(frequencies), dtype=np.int64)
        weights = np.array([frequencies[int(node)] for node in nodes], dtype=np.int64)

        # p(r) = |V^h_r ∩ V_{a∪b}| / N_sum for each distinct reference node,
        # computed with one grouped BFS over all sampled nodes rather than a
        # per-node Python loop (no RNG is consumed here, so the sample itself
        # is unchanged).
        overlaps, _sizes = self._engine.grouped_marked_counts(
            nodes, level, event_marker[np.newaxis, :]
        )
        probabilities = overlaps[0].astype(float) / total_size
        if np.any(probabilities <= 0):
            raise SamplingError("a sampled reference node has zero selection probability")

        cost = SamplingCost(wall_seconds=time.perf_counter() - started)
        cost.merge_engine(self._engine)
        return ReferenceSample(
            nodes=nodes,
            frequencies=weights,
            probabilities=probabilities,
            weighted=True,
            population_size=None,
            cost=cost,
        )
