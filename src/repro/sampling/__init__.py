"""Reference-node sampling algorithms (Section 4 of the paper).

All samplers implement :class:`~repro.sampling.base.ReferenceSampler` and
return a :class:`~repro.sampling.base.ReferenceSample`.  The registry maps
string names (as used in :class:`repro.core.config.TescConfig`) to sampler
factories.
"""

from repro.sampling.base import ReferenceSample, ReferenceSampler, SamplingCost
from repro.sampling.batch_bfs import BatchBFSSampler, ExhaustiveSampler
from repro.sampling.cache import CachingSampler, event_nodes_fingerprint
from repro.sampling.reject import RejectionSampler
from repro.sampling.importance import ImportanceSampler
from repro.sampling.whole_graph import WholeGraphSampler
from repro.sampling.registry import available_samplers, create_sampler

__all__ = [
    "ReferenceSample",
    "ReferenceSampler",
    "SamplingCost",
    "BatchBFSSampler",
    "CachingSampler",
    "ExhaustiveSampler",
    "RejectionSampler",
    "ImportanceSampler",
    "WholeGraphSampler",
    "available_samplers",
    "create_sampler",
    "event_nodes_fingerprint",
]
