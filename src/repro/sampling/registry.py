"""Sampler registry: map configuration names to sampler instances."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.exceptions import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.graph.vicinity import VicinityIndex
from repro.sampling.base import ReferenceSampler
from repro.sampling.batch_bfs import BatchBFSSampler, ExhaustiveSampler
from repro.sampling.importance import ImportanceSampler
from repro.sampling.reject import RejectionSampler
from repro.sampling.whole_graph import WholeGraphSampler
from repro.utils.rng import RandomState

_FactoryType = Callable[..., ReferenceSampler]


#: Default nodes-per-vicinity of the "batch_importance" sampler, following the
#: Section 5.2.2 recommendation of a small batch (3 for h=2).
DEFAULT_BATCH_PER_VICINITY = 3


def _batch_importance_factory(graph: CSRGraph, *, vicinity_index=None,
                              random_state=None, batch_per_vicinity=None,
                              **_ignored) -> ReferenceSampler:
    return ImportanceSampler(
        graph,
        vicinity_index=vicinity_index,
        batch_per_vicinity=batch_per_vicinity or DEFAULT_BATCH_PER_VICINITY,
        random_state=random_state,
    )


_REGISTRY: Dict[str, _FactoryType] = {
    "batch_bfs": lambda graph, *, random_state=None, **_ignored: BatchBFSSampler(
        graph, random_state=random_state
    ),
    "exhaustive": lambda graph, *, random_state=None, **_ignored: ExhaustiveSampler(
        graph, random_state=random_state
    ),
    "reject": lambda graph, *, vicinity_index=None, random_state=None, **_ignored: RejectionSampler(
        graph, vicinity_index=vicinity_index, random_state=random_state
    ),
    "importance": lambda graph, *, vicinity_index=None, random_state=None,
    batch_per_vicinity=None, **_ignored: ImportanceSampler(
        graph,
        vicinity_index=vicinity_index,
        batch_per_vicinity=batch_per_vicinity or 1,
        random_state=random_state,
    ),
    "batch_importance": _batch_importance_factory,
    "whole_graph": lambda graph, *, random_state=None, **_ignored: WholeGraphSampler(
        graph, random_state=random_state
    ),
}


def available_samplers() -> List[str]:
    """Names of all registered samplers."""
    return sorted(_REGISTRY)


def register_sampler(name: str, factory: _FactoryType, overwrite: bool = False) -> None:
    """Register a custom sampler factory under ``name``."""
    if not overwrite and name in _REGISTRY:
        raise ConfigurationError(f"sampler {name!r} is already registered")
    _REGISTRY[name] = factory


def create_sampler(
    name: str,
    graph: CSRGraph,
    *,
    vicinity_index: Optional[VicinityIndex] = None,
    random_state: RandomState = None,
    batch_per_vicinity: Optional[int] = None,
) -> ReferenceSampler:
    """Instantiate the sampler registered under ``name``.

    ``batch_per_vicinity=None`` keeps each sampler's own default (1 for
    "importance", :data:`DEFAULT_BATCH_PER_VICINITY` for "batch_importance").
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown sampler {name!r}; available: {', '.join(available_samplers())}"
        )
    return factory(
        graph,
        vicinity_index=vicinity_index,
        random_state=random_state,
        batch_per_vicinity=batch_per_vicinity,
    )
