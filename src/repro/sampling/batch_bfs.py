"""Batch BFS reference-node sampling (Algorithm 1).

Batch BFS enumerates the whole reference population ``V^h_{a∪b}`` with a
single multi-source h-hop BFS (worst case ``O(|V| + |E|)``), then draws a
uniform sample of ``n`` nodes from it.  It is the most accurate strategy and
the paper's recommendation when ``|V_{a∪b}|`` is small.
"""

from __future__ import annotations

import time

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.traversal import BFSEngine
from repro.sampling.base import ReferenceSample, ReferenceSampler, SamplingCost
from repro.utils.rng import RandomState


class BatchBFSSampler(ReferenceSampler):
    """Uniform sampling after enumerating ``V^h_{a∪b}`` with Batch BFS."""

    name = "batch_bfs"

    def __init__(self, graph: CSRGraph, random_state: RandomState = None) -> None:
        super().__init__(graph, random_state)
        self._engine = BFSEngine(graph)

    def population(self, event_nodes: np.ndarray, level: int) -> np.ndarray:
        """The full reference population ``V^h_{a∪b}`` (Algorithm 1)."""
        return self._engine.multi_source_vicinity(event_nodes, level)

    def sample(self, event_nodes: np.ndarray, level: int,
               sample_size: int) -> ReferenceSample:
        event_nodes = self._validate(event_nodes, level, sample_size)
        started = time.perf_counter()
        self._engine.reset_counters()
        population = self.population(event_nodes, level)
        population_size = int(population.size)
        if sample_size >= population_size:
            chosen = population.copy()
            draw_order = None
        else:
            # Generator.choice without replacement shuffles its output, so
            # ``chosen`` is in exchangeable random order: every prefix is a
            # uniform without-replacement sample of the population.  Recording
            # it (pre-sort) is what makes this sample prefix-extendable.
            chosen = self.rng.choice(population, size=sample_size, replace=False)
            draw_order = chosen.copy()
        cost = SamplingCost(wall_seconds=time.perf_counter() - started)
        cost.merge_engine(self._engine)
        return ReferenceSample(
            nodes=np.sort(chosen),
            frequencies=np.ones(chosen.size, dtype=np.int64),
            probabilities=None,
            weighted=False,
            population_size=population_size,
            cost=cost,
            draw_order=draw_order,
        )


class ExhaustiveSampler(BatchBFSSampler):
    """Use *every* reference node (no sampling).

    This computes the population statistic ``τ(a, b)`` of Eq. 3 exactly; it
    is practical only when ``N`` is small and serves as the ground truth for
    tests and for calibrating the sampling estimators.
    """

    name = "exhaustive"

    def sample(self, event_nodes: np.ndarray, level: int,
               sample_size: int = 1) -> ReferenceSample:
        event_nodes = self._validate(event_nodes, level, max(sample_size, 1))
        started = time.perf_counter()
        self._engine.reset_counters()
        population = self.population(event_nodes, level)
        cost = SamplingCost(wall_seconds=time.perf_counter() - started)
        cost.merge_engine(self._engine)
        return ReferenceSample(
            nodes=np.sort(population),
            frequencies=np.ones(population.size, dtype=np.int64),
            probabilities=None,
            weighted=False,
            population_size=int(population.size),
            cost=cost,
        )
