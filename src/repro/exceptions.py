"""Exception hierarchy for the TESC reproduction library.

Every error raised intentionally by :mod:`repro` derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Base class for errors related to graph construction or traversal."""


class NodeNotFoundError(GraphError):
    """A node id referenced by the caller does not exist in the graph."""

    def __init__(self, node: int) -> None:
        super().__init__(f"node {node!r} does not exist in the graph")
        self.node = node


class EdgeError(GraphError):
    """An edge operation was invalid (self-loop, duplicate, missing...)."""


class GraphFormatError(GraphError):
    """A graph or event file could not be parsed."""


class EventError(ReproError):
    """Base class for errors in the event layer."""


class UnknownEventError(EventError):
    """The requested event name is not present in the event layer."""

    def __init__(self, event: str) -> None:
        super().__init__(f"unknown event {event!r}")
        self.event = event


class SamplingError(ReproError):
    """A reference-node sampler could not produce a valid sample."""


class EmptyReferenceSetError(SamplingError):
    """``V^h_{a|b}`` is empty: neither event has any occurrence."""


class EstimationError(ReproError):
    """The TESC estimator could not be computed from the given sample."""


class InsufficientSampleError(EstimationError):
    """Fewer than two reference nodes are available, no pairs exist."""


class ConfigurationError(ReproError):
    """An invalid parameter combination was supplied."""


class SnapshotExpiredError(ReproError):
    """The requested epoch's snapshot has been retired (no lease kept it)."""


class DeadlineExceededError(ReproError):
    """A cooperative cancellation checkpoint found the deadline expired.

    Raised by :func:`repro.utils.deadlines.checkpoint` inside the density
    pass and the progressive top-k round loop when the caller-supplied
    deadline (propagated by the service layer) has passed.  The server maps
    it to a retryable 408.
    """


class ExperimentError(ReproError):
    """An experiment harness failed to run or render its results."""
