"""repro — reproduction of "Measuring Two-Event Structural Correlations on
Graphs" (Guan, Yan, Kaplan; VLDB 2012).

The package implements the TESC measure and its complete testing framework:
the graph substrate, the event layer, the Kendall-τ statistics with
tie-corrected significance, the three reference-node sampling algorithms, the
baselines the paper compares against, the event simulators used for the
efficacy study, synthetic stand-ins for the paper's datasets, and an
experiment harness that regenerates every table and figure of the evaluation.

Quickstart
----------
The single front door is :func:`repro.api.open_session` — snapshot-isolated
ranking, top-k and streaming commits behind one handle:

>>> from repro import TescConfig, open_session
>>> from repro.graph.generators import erdos_renyi_graph
>>> graph = erdos_renyi_graph(500, 0.01, random_state=1)
>>> session = open_session(graph, TescConfig(random_state=1),
...                        events={"a": range(0, 50), "b": range(25, 75)})
>>> session.rank()["epoch"]
0
>>> session.commit([("event_attach", "a", 60)])["epoch"]
1
>>> session.close()

One-off measurements stay available:

>>> from repro import AttributedGraph, measure_tesc
>>> attributed = AttributedGraph(graph, {"a": range(0, 50), "b": range(25, 75)})
>>> result = measure_tesc(attributed, "a", "b", vicinity_level=1, random_state=1)
>>> result.verdict.value in {"positive", "negative", "independent"}
True
"""

from repro.api import EpochView, Session, open_session
from repro.core.batch import BatchTescEngine, PairRanking, RankedPair, rank_pairs
from repro.core.parallel import ParallelBatchTescEngine, rank_pairs_parallel
from repro.core.topk import ProgressiveTopKEngine, TopKRanking, top_k_pairs
from repro.core.config import TescConfig
from repro.core.tesc import TescResult, TescTester, measure_tesc
from repro.events.attributed_graph import AttributedGraph
from repro.events.event_set import EventLayer
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.stats.hypothesis import CorrelationVerdict

__version__ = "1.0.0"

__all__ = [
    "open_session",
    "Session",
    "EpochView",
    "AttributedGraph",
    "BatchTescEngine",
    "EventLayer",
    "Graph",
    "CSRGraph",
    "PairRanking",
    "RankedPair",
    "TescConfig",
    "TescTester",
    "TescResult",
    "CorrelationVerdict",
    "measure_tesc",
    "rank_pairs",
    "rank_pairs_parallel",
    "ParallelBatchTescEngine",
    "ProgressiveTopKEngine",
    "TopKRanking",
    "top_k_pairs",
    "__version__",
]
