"""Continuous re-ranking of monitored event pairs over a dynamic graph.

:class:`ContinuousRanker` keeps a standing set of monitored pairs on a
:class:`~repro.streaming.dynamic_graph.DynamicAttributedGraph` and, on every
:meth:`~ContinuousRanker.commit`, refreshes their ranking by recomputing only
what the committed deltas dirtied:

* the **density-column cache** keeps, per reference node, the integer
  numerators ``|V_e ∩ V^h_r|`` and denominator ``|V^h_r|``.  Structurally
  dirty columns (within ``h - 1`` hops of a touched endpoint) are recomputed
  with one grouped BFS; event attach/detach toggles are patched in place by
  ``± 1`` on the columns they reach — no BFS at all;
* the **sample memo** (:class:`~repro.sampling.cache.SampleMemo`) re-draws
  the shared reference sample through a freshly seeded sampler whenever the
  structure or the monitored universe changed, exactly as a from-scratch
  engine would, and reuses the previous draw otherwise;
* only pairs whose restricted density inputs actually changed are
  **re-scored** (optionally sharded over the persistent worker pool with
  ``workers=N`` via
  :func:`~repro.core.parallel.estimate_matrix_pairs_sharded`); untouched
  pairs keep their previous statistics and are merely re-ranked.

Because every cached quantity is integer-exact and the float assembly
(:func:`~repro.core.density.densities_from_counts`) and per-pair arithmetic
(:func:`~repro.core.batch.estimate_pair_list`) are shared with
:class:`~repro.core.batch.BatchTescEngine`, the ranking after any sequence of
commits is **bit-identical** to a fresh ``rank_pairs`` on the equivalent
static graph with the same seed — the property the equivalence suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.batch import (
    SORT_KEYS,
    WEIGHTED_SAMPLERS,
    BatchStats,
    PairRanking,
    PairSpec,
    RankedPair,
    estimate_pair_list,
    event_universe,
    finalise_ranking,
    make_config_sampler,
    resolve_pair_spec,
)
from repro.core.config import TescConfig
from repro.core.density import DensityMatrix, densities_from_counts
from repro.core.parallel import (
    estimate_matrix_pairs_sharded,
    resolve_workers,
)
from repro.exceptions import ConfigurationError, InsufficientSampleError
from repro.graph.traversal import BFSEngine
from repro.sampling.cache import SampleMemo
from repro.streaming.delta import BatchLike
from repro.streaming.dirty import DirtyRegion, DirtyTracker
from repro.streaming.dynamic_graph import AppliedBatch, DynamicAttributedGraph
from repro.utils.tables import TextTable
from repro.utils.timing import Timer

#: Density-column cache entries kept before the oldest are evicted.
MAX_CACHED_COLUMNS = 100_000


@dataclass
class _Column:
    """Cached density inputs of one reference node (all integer-exact).

    ``counts`` holds the integer numerators ``|V_e ∩ V^h_r|`` aligned to the
    ``events`` tuple the column was computed for — an array, not a dict, so
    per-commit matrix assembly is a single C-level ``np.stack`` over the
    cached columns instead of an O(n × events) Python dict walk (which
    dominated commit latency once the fast Kendall kernels removed the
    estimate bottleneck)."""

    size: int
    events: Tuple[str, ...]
    counts: np.ndarray


@dataclass(frozen=True)
class PairChange:
    """One monitored pair whose statistics changed under a commit."""

    event_a: str
    event_b: str
    old: Optional[RankedPair]
    new: RankedPair

    @property
    def events(self) -> Tuple[str, str]:
        """The pair as a tuple."""
        return (self.event_a, self.event_b)

    @property
    def is_new(self) -> bool:
        """Whether the pair had no previous score (first commit / watch)."""
        return self.old is None

    @property
    def verdict_changed(self) -> bool:
        """Whether the significance verdict flipped."""
        return self.old is None or self.old.verdict is not self.new.verdict

    def __str__(self) -> str:
        if self.old is None:
            return (
                f"({self.event_a!r}, {self.event_b!r}): new, "
                f"score={self.new.score:+.4f}, verdict={self.new.verdict.value}"
            )
        return (
            f"({self.event_a!r}, {self.event_b!r}): "
            f"score {self.old.score:+.4f} -> {self.new.score:+.4f}, "
            f"verdict {self.old.verdict.value} -> {self.new.verdict.value}"
        )


@dataclass
class CommitStats:
    """Cost accounting for one :meth:`ContinuousRanker.commit`.

    The whole point of the streaming subsystem is that
    ``columns_recomputed`` and ``pairs_rescored`` track the *delta*, not the
    workload size; these counters make that claim checkable.
    """

    num_pairs: int = 0
    num_events: int = 0
    columns_total: int = 0
    columns_recomputed: int = 0
    columns_patched: int = 0
    pairs_rescored: int = 0
    pairs_reused: int = 0
    structure_dirty_nodes: int = 0
    event_patches: int = 0
    sample_redrawn: bool = False
    workers: int = 1
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def columns_reused(self) -> int:
        """Columns served from the cache without a BFS."""
        return self.columns_total - self.columns_recomputed


@dataclass(frozen=True)
class RankingDelta:
    """The outcome of one commit: what changed, and the full new ranking.

    ``epoch`` is the graph's commit epoch after the batch landed — the value
    a reader passes to
    :meth:`~repro.streaming.dynamic_graph.DynamicAttributedGraph.pin` (or a
    service's ``at_epoch``) to query exactly the state this commit produced.
    """

    version: int
    changed: Tuple[PairChange, ...]
    ranking: PairRanking
    stats: CommitStats
    epoch: int = 0

    def __len__(self) -> int:
        return len(self.changed)

    def __iter__(self):
        return iter(self.changed)

    @property
    def verdict_flips(self) -> Tuple[PairChange, ...]:
        """Only the changes where the verdict itself flipped."""
        return tuple(change for change in self.changed if change.verdict_changed)

    def render(self, markdown: bool = False) -> str:
        """Human-readable table of the changed pairs."""
        if not self.changed:
            # No commit number here: callers (the CLI) number the replayed
            # batches themselves, and the ranker's internal version is offset
            # by the initial commit.
            return "no ranking changes"
        table = TextTable(
            ["event a", "event b", "old score", "new score",
             "old verdict", "new verdict", "rank"]
        )
        for change in self.changed:
            table.add_row(
                [
                    change.event_a,
                    change.event_b,
                    "-" if change.old is None else f"{change.old.score:+.4f}",
                    f"{change.new.score:+.4f}",
                    "-" if change.old is None else change.old.verdict.value,
                    change.new.verdict.value,
                    change.new.rank,
                ]
            )
        return table.render(markdown=markdown)

    def __str__(self) -> str:
        return self.render()


class ContinuousRanker:
    """Standing TESC ranking over a stream of delta batches.

    Parameters
    ----------
    dynamic:
        The :class:`~repro.streaming.dynamic_graph.DynamicAttributedGraph`
        to monitor.  Commit deltas through :meth:`commit` (not through
        ``dynamic.apply`` directly — out-of-band mutations are detected and
        answered with a safe full invalidation).
    pairs:
        Monitored pairs: ``"all"`` or a sequence of ``(event_a, event_b)``;
        extendable later via :meth:`watch` / :meth:`unwatch`.
    config:
        :class:`~repro.core.config.TescConfig`; same restrictions as the
        batch engine (uniform samplers only).
    workers:
        Default worker count for re-scoring (``None``/1 = in-process; the
        pair shards run through
        :func:`~repro.core.parallel.estimate_matrix_shard`).  Results are
        identical for every worker count.
    sort_by / top_k / on_insufficient:
        Same contract as :meth:`~repro.core.batch.BatchTescEngine.rank_pairs`.

    Examples
    --------
    >>> from repro.graph.generators import community_ring_graph
    >>> from repro.streaming import DynamicAttributedGraph, Delta
    >>> graph = community_ring_graph(8, 40, 5.0, 10, random_state=3)
    >>> dynamic = DynamicAttributedGraph(
    ...     graph, {"a": range(0, 30), "b": range(10, 40), "c": range(160, 200)}
    ... )
    >>> ranker = ContinuousRanker(
    ...     dynamic, "all", TescConfig(sample_size=120, random_state=3)
    ... )
    >>> first = ranker.commit()
    >>> len(first.changed)  # every pair is new on the first commit
    3
    >>> delta = ranker.commit([Delta.edge_add(0, 200)])
    >>> len(delta.ranking)
    3
    """

    def __init__(
        self,
        dynamic: DynamicAttributedGraph,
        pairs: PairSpec = "all",
        config: Optional[TescConfig] = None,
        workers: Optional[int] = None,
        sort_by: str = "score",
        top_k: Optional[int] = None,
        on_insufficient: str = "keep",
        max_cached_columns: int = MAX_CACHED_COLUMNS,
    ) -> None:
        from repro.deprecation import warn_deprecated_construction

        warn_deprecated_construction(
            "ContinuousRanker", "open_session(graph, config).commit(...)"
        )
        if not isinstance(dynamic, DynamicAttributedGraph):
            raise ConfigurationError(
                "ContinuousRanker needs a DynamicAttributedGraph; wrap your "
                "graph in one (construction is identical to AttributedGraph)"
            )
        if sort_by not in SORT_KEYS:
            raise ConfigurationError(
                f"sort_by must be one of {SORT_KEYS}, got {sort_by!r}"
            )
        if on_insufficient not in ("keep", "raise"):
            raise ConfigurationError(
                f'on_insufficient must be "keep" or "raise", got {on_insufficient!r}'
            )
        self.dynamic = dynamic
        self.config = config if config is not None else TescConfig()
        if self.config.sampler in WEIGHTED_SAMPLERS:
            raise ConfigurationError(
                f"sampler {self.config.sampler!r} produces importance-weighted "
                "samples, which cannot be restricted to per-pair populations; "
                "use a uniform sampler (batch_bfs, exhaustive, whole_graph, reject)"
            )
        self.pairs: List[Tuple[str, str]] = resolve_pair_spec(
            dynamic.event_names(), pairs
        )
        self.workers = resolve_workers(workers)
        self.sort_by = sort_by
        self.top_k = top_k
        self.on_insufficient = on_insufficient
        self.max_cached_columns = max(1, int(max_cached_columns))

        self.version = 0
        self.ranking: Optional[PairRanking] = None
        self._tracker = DirtyTracker(self.config.vicinity_level)
        self._memo = SampleMemo(self._fresh_sampler)
        self._columns: Dict[int, _Column] = {}
        self._bfs: Optional[BFSEngine] = None
        self._bfs_version = -1
        self._prev_nodes: Optional[np.ndarray] = None
        self._prev_counts: Optional[np.ndarray] = None
        self._prev_sizes: Optional[np.ndarray] = None
        self._prev_events: Tuple[str, ...] = ()
        self._prev_results: Dict[Tuple[str, str], RankedPair] = {}
        self._graph_version = dynamic.structure_version
        self._events_version = dynamic.events.version

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release ranker-held resources (idempotent).

        Parallel re-scoring runs on the process-wide persistent pool, which
        deliberately outlives individual rankers, so there is nothing
        pool-shaped to tear down here.
        """

    def __enter__(self) -> "ContinuousRanker":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- monitored-pair management -------------------------------------------

    def watch(self, pairs: PairSpec) -> None:
        """Add pairs to the monitored set (scored on the next commit)."""
        for pair in resolve_pair_spec(self.dynamic.event_names(), pairs):
            if pair not in self.pairs:
                self.pairs.append(pair)

    def unwatch(self, pairs: PairSpec) -> None:
        """Stop monitoring the given pairs."""
        drop = set(resolve_pair_spec(self.dynamic.event_names(), pairs))
        self.pairs = [pair for pair in self.pairs if pair not in drop]
        for pair in drop:
            self._prev_results.pop(pair, None)

    # -- internals -----------------------------------------------------------

    def _fresh_sampler(self, graph=None):
        """A brand-new sampler with a fresh RNG (over ``graph`` if given).

        Goes through the same :func:`~repro.core.batch.make_config_sampler`
        factory as :class:`BatchTescEngine`, which is what makes a memo miss
        reproduce a from-scratch engine's draw bit for bit.  The optional
        ``graph`` hook lets the :class:`~repro.sampling.cache.SampleMemo`
        draw against a pinned snapshot instead of the live graph.
        """
        return make_config_sampler(
            self.dynamic if graph is None else graph, self.config
        )

    def _engine(self) -> BFSEngine:
        """The BFS engine over the current structure (rebuilt after patches)."""
        if self._bfs is None or self._bfs_version != self.dynamic.structure_version:
            self._bfs = BFSEngine(self.dynamic.csr)
            self._bfs_version = self.dynamic.structure_version
        return self._bfs

    def _reset_caches(self) -> None:
        self._columns.clear()
        self._memo.clear()
        self._prev_nodes = None
        self._prev_counts = None
        self._prev_sizes = None
        self._prev_results = {}

    def _invalidate(self, region: DirtyRegion, stats: CommitStats) -> None:
        """Apply one dirty region to the column cache."""
        if region.structure.size and self._columns:
            for node in region.structure.tolist():
                self._columns.pop(node, None)
        stats.structure_dirty_nodes = region.num_structural
        stats.event_patches = len(region.event_patches)
        for patch in region.event_patches:
            if not self._columns:
                break
            sign, event = patch.sign, patch.event
            if len(self._columns) <= patch.region.size:
                members = set(patch.region.tolist())
                targets = [n for n in self._columns if n in members]
            else:
                targets = [
                    int(n) for n in patch.region.tolist() if n in self._columns
                ]
            # Columns of different cache generations may be aligned to
            # different event tuples; memoise the event's row per tuple.
            row_of_events: Dict[Tuple[str, ...], int] = {}
            for node in targets:
                entry = self._columns[node]
                row = row_of_events.get(entry.events)
                if row is None:
                    row = (
                        entry.events.index(event)
                        if event in entry.events else -1
                    )
                    row_of_events[entry.events] = row
                if row >= 0:
                    entry.counts[row] += sign
                    stats.columns_patched += 1

    def _assemble(
        self,
        nodes: np.ndarray,
        events: Tuple[str, ...],
        timer: Timer,
        stats: CommitStats,
    ) -> DensityMatrix:
        """Density matrix over ``nodes``, recomputing only uncached columns."""
        cfg = self.config
        node_list = [int(node) for node in nodes.tolist()]
        # A cached column is reusable when its event alignment covers the
        # current monitored events; ``row_map`` memoises, per cache
        # generation, how to gather the current events out of it (the
        # common case — identical tuples — short-circuits to None).
        row_map: Dict[Tuple[str, ...], Optional[List[int]]] = {events: None}
        entries: List[Optional[_Column]] = [None] * len(node_list)
        missing: List[int] = []
        missing_positions: List[int] = []
        needs_gather = False
        for position, node in enumerate(node_list):
            entry = self._columns.get(node)
            if entry is not None:
                if entry.events not in row_map:
                    row_map[entry.events] = (
                        [entry.events.index(event) for event in events]
                        if all(event in entry.events for event in events)
                        else []
                    )
                selector = row_map[entry.events]
                if selector == []:
                    entry = None
                elif selector is not None:
                    needs_gather = True
            if entry is None:
                missing.append(node)
                missing_positions.append(position)
            else:
                entries[position] = entry
        if missing:
            with timer.lap("densities"):
                indicators = self.dynamic.indicator_matrix(list(events))
                fresh_counts, fresh_sizes = self._engine().grouped_marked_counts(
                    np.asarray(missing, dtype=np.int64),
                    cfg.vicinity_level,
                    indicators,
                )
            for index, (node, position) in enumerate(
                zip(missing, missing_positions)
            ):
                entry = _Column(
                    size=int(fresh_sizes[index]),
                    events=events,
                    counts=np.ascontiguousarray(fresh_counts[:, index]),
                )
                self._columns[node] = entry
                entries[position] = entry
        stats.columns_total = int(nodes.size)
        stats.columns_recomputed = len(missing)

        sizes = np.fromiter(
            (entry.size for entry in entries), dtype=np.int64, count=len(entries)
        )
        if needs_gather:
            # Mixed cache generations (after watch/unwatch): gather each
            # stale-but-covering column through its row map and write the
            # re-aligned column back, so the next commit takes the
            # all-aligned np.stack path again instead of looping forever.
            counts = np.empty((len(events), len(entries)), dtype=np.int64)
            for position, entry in enumerate(entries):
                selector = row_map[entry.events]
                if selector is None:
                    counts[:, position] = entry.counts
                else:
                    realigned = entry.counts[selector]
                    counts[:, position] = realigned
                    self._columns[node_list[position]] = _Column(
                        size=entry.size, events=events, counts=realigned
                    )
        elif entries:
            counts = np.stack([entry.counts for entry in entries], axis=1)
        else:
            counts = np.empty((len(events), 0), dtype=np.int64)
        # Evict only after assembly so a small cap can never drop a column
        # this very call still needs.
        live = set(int(node) for node in nodes.tolist())
        while len(self._columns) > self.max_cached_columns:
            oldest = next(
                (node for node in self._columns if node not in live), None
            )
            if oldest is None:
                break
            self._columns.pop(oldest)
        return DensityMatrix(
            reference_nodes=nodes,
            densities=densities_from_counts(counts, sizes),
            counts=counts,
            vicinity_sizes=sizes,
            level=int(cfg.vicinity_level),
        )

    def _dirty_pairs(
        self, matrix: DensityMatrix, events: Tuple[str, ...]
    ) -> Tuple[List[Tuple[str, str]], List[Tuple[str, str]]]:
        """Split monitored pairs into (needs re-score, statistics unchanged).

        A pair's statistics depend only on its two density rows restricted
        to its reference population ``pair_rows``.  Against the previous
        commit (same sample nodes, same event rows) a pair is provably
        unchanged when its population columns are identical and no relevant
        count or vicinity size moved — everything integer-exact, so reuse
        preserves bit-identity.
        """
        if (
            self._prev_counts is None
            or self._prev_events != events
            or self._prev_nodes is None
            or self._prev_nodes.shape != matrix.reference_nodes.shape
            or not np.array_equal(self._prev_nodes, matrix.reference_nodes)
        ):
            return list(self.pairs), []
        row_of = {event: row for row, event in enumerate(events)}
        row_diff = matrix.counts != self._prev_counts
        col_diff = matrix.vicinity_sizes != self._prev_sizes
        dirty: List[Tuple[str, str]] = []
        clean: List[Tuple[str, str]] = []
        for pair in self.pairs:
            if pair not in self._prev_results:
                dirty.append(pair)
                continue
            row_a, row_b = row_of[pair[0]], row_of[pair[1]]
            relevant = (matrix.counts[row_a] > 0) | (matrix.counts[row_b] > 0)
            was_relevant = (
                (self._prev_counts[row_a] > 0) | (self._prev_counts[row_b] > 0)
            )
            if np.any(relevant != was_relevant) or np.any(
                (row_diff[row_a] | row_diff[row_b] | col_diff) & relevant
            ):
                dirty.append(pair)
            else:
                clean.append(pair)
        return dirty, clean

    def _estimate(
        self,
        pair_list: List[Tuple[str, str]],
        matrix: DensityMatrix,
        events: Tuple[str, ...],
        workers: int,
        timer: Timer,
    ) -> List[RankedPair]:
        if not pair_list:
            return []
        cfg = self.config
        row_of = {event: row for row, event in enumerate(events)}
        with timer.lap("estimates"):
            if workers > 1 and len(pair_list) >= 2:
                from repro.service.pool import global_pool

                return estimate_matrix_pairs_sharded(
                    global_pool(), matrix, row_of, pair_list, cfg,
                    self.on_insufficient, workers,
                )
            # batcher=None: score each pair on its restricted density
            # vectors directly.  Numerically identical to the engine's
            # shared-rank-vector path, but skips the per-event rank encoding
            # when only a few pairs need re-scoring.
            return estimate_pair_list(
                pair_list, row_of, matrix, None, cfg, self.on_insufficient
            )

    # -- the public API -------------------------------------------------------

    def commit(
        self,
        batch: Optional[BatchLike] = None,
        workers: Optional[int] = None,
    ) -> RankingDelta:
        """Apply ``batch`` (if any) and refresh the monitored ranking.

        Returns a :class:`RankingDelta` listing every monitored pair whose
        score, z-score, p-value or verdict changed (on the first commit,
        every pair).  ``batch=None`` re-ranks without applying deltas —
        useful for the initial ranking and after :meth:`watch`.
        """
        cfg = self.config
        timer = Timer()
        stats = CommitStats(workers=(
            resolve_workers(workers) if workers is not None else self.workers
        ))

        if (
            self.dynamic.structure_version != self._graph_version
            or self.dynamic.events.version != self._events_version
        ):
            # The graph was mutated outside commit(); drop everything rather
            # than risk stale columns.
            self._reset_caches()

        with timer.lap("apply"):
            applied: AppliedBatch = (
                self.dynamic.apply(batch) if batch is not None
                else self.dynamic.empty_batch()
            )
        with timer.lap("dirty"):
            region = self._tracker.region(applied, epoch=applied.epoch)
            self._invalidate(region, stats)
        self._graph_version = self.dynamic.structure_version
        self._events_version = self.dynamic.events.version

        events = tuple(sorted({event for pair in self.pairs for event in pair}))
        # Touching every indicator up front surfaces unknown events before
        # any sampling work happens (mirrors the batch engine).
        self.dynamic.indicator_matrix(list(events))
        universe = event_universe(self.dynamic, events)

        misses_before = self._memo.misses
        with timer.lap("sampling"):
            sample = self._memo.sample(
                universe, cfg.vicinity_level, cfg.sample_size,
                epoch=self.dynamic.structure_version,
            )
        stats.sample_redrawn = self._memo.misses > misses_before
        if sample.weighted:
            raise ConfigurationError(
                f"sampler {cfg.sampler!r} produced an importance-weighted "
                "sample, which the streaming ranker cannot restrict to "
                "per-pair populations"
            )
        if sample.num_distinct < 2:
            raise InsufficientSampleError(
                f"sampler {cfg.sampler!r} produced {sample.num_distinct} "
                "reference nodes; at least two are required"
            )

        matrix = self._assemble(sample.nodes, events, timer, stats)
        dirty_pairs, clean_pairs = self._dirty_pairs(matrix, events)
        rescored = self._estimate(dirty_pairs, matrix, events, stats.workers, timer)
        reused = [self._prev_results[pair] for pair in clean_pairs]

        full_ranking = finalise_ranking(rescored + reused, self.sort_by, None)
        results_by_pair = {pair.events: pair for pair in full_ranking}
        changed: List[PairChange] = []
        for pair in full_ranking:
            old = self._prev_results.get(pair.events)
            if old is None or (
                old.score, old.z_score, old.p_value, old.verdict,
            ) != (pair.score, pair.z_score, pair.p_value, pair.verdict):
                changed.append(
                    PairChange(
                        event_a=pair.event_a, event_b=pair.event_b,
                        old=old, new=pair,
                    )
                )

        stats.num_pairs = len(self.pairs)
        stats.num_events = len(events)
        stats.pairs_rescored = len(rescored)
        stats.pairs_reused = len(reused)
        for name in ("apply", "dirty", "sampling", "densities", "estimates"):
            stats.timings[name] = timer.total(name)

        # finalise_ranking already assigned ranks 1..P in sorted order, so a
        # top-k prefix keeps exactly the ranks a top_k-limited static rank
        # would assign.
        public = (
            full_ranking if self.top_k is None
            else full_ranking[: max(int(self.top_k), 0)]
        )
        batch_stats = BatchStats(
            num_events=len(events),
            num_pairs=len(self.pairs),
            samples_drawn=1 if stats.sample_redrawn else 0,
            sample_cache_hits=0 if stats.sample_redrawn else 1,
            density_passes=1 if stats.columns_recomputed else 0,
            density_bfs_calls=stats.columns_recomputed,
            workers=stats.workers,
            timings=dict(stats.timings),
        )
        self.ranking = PairRanking(
            pairs=tuple(public),
            vicinity_level=cfg.vicinity_level,
            sort_by=self.sort_by,
            alpha=cfg.alpha,
            sample=sample,
            stats=batch_stats,
        )

        self._prev_nodes = matrix.reference_nodes
        self._prev_counts = matrix.counts
        self._prev_sizes = matrix.vicinity_sizes
        self._prev_events = events
        self._prev_results = results_by_pair
        self.version += 1
        return RankingDelta(
            version=self.version,
            changed=tuple(changed),
            ranking=self.ranking,
            stats=stats,
            epoch=applied.epoch,
        )
