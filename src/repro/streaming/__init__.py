"""Streaming updates: dynamic graphs with incremental correlation re-ranking.

The subsystem has four layers:

* :mod:`repro.streaming.delta` — the :class:`Delta` / :class:`DeltaBatch` /
  :class:`DeltaLog` update model (edge insert/delete, event attach/detach)
  and its JSONL wire format;
* :mod:`repro.streaming.dynamic_graph` —
  :class:`DynamicAttributedGraph`, which applies batches by patching CSR
  adjacency rows and bumping the event-layer version instead of rebuilding
  the world;
* :mod:`repro.streaming.dirty` — :class:`DirtyTracker`, mapping each applied
  batch to the invalidated reference rows (structural recomputes within
  ``h - 1`` hops of a touched endpoint, in-place ``± 1`` count patches for
  event toggles);
* :mod:`repro.streaming.ranker` — :class:`ContinuousRanker`, the standing
  monitored-pair ranking whose :meth:`~ContinuousRanker.commit` re-scores
  only the dirtied pairs and returns a :class:`RankingDelta`, while staying
  bit-identical to a fresh static :class:`~repro.core.batch.BatchTescEngine`
  run with the same seed.
"""

from repro.streaming.delta import (
    Delta,
    DeltaBatch,
    DeltaError,
    DeltaLog,
)
from repro.streaming.dirty import DirtyRegion, DirtyTracker, EventPatch
from repro.streaming.dynamic_graph import AppliedBatch, DynamicAttributedGraph
from repro.streaming.ranker import (
    CommitStats,
    ContinuousRanker,
    PairChange,
    RankingDelta,
)

__all__ = [
    "AppliedBatch",
    "CommitStats",
    "ContinuousRanker",
    "Delta",
    "DeltaBatch",
    "DeltaError",
    "DeltaLog",
    "DirtyRegion",
    "DirtyTracker",
    "DynamicAttributedGraph",
    "EventPatch",
    "PairChange",
    "RankingDelta",
]
