"""Delta model for dynamic attributed graphs.

A :class:`Delta` is one atomic mutation — an edge insert/delete or an event
attach/detach.  Deltas are grouped into :class:`DeltaBatch` units (one
commit's worth of changes) and accumulated in a :class:`DeltaLog`, which also
reads and writes the JSONL wire format replayed by ``tesc stream``:

.. code-block:: text

    {"op": "edge_add", "u": 3, "v": 17}
    {"op": "event_detach", "event": "wireless", "node": 9}
    {"op": "commit"}

Every ``commit`` line closes one batch; a trailing run of deltas without a
``commit`` forms a final implicit batch.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List, Sequence, Tuple, Union

from repro.exceptions import ReproError


class DeltaError(ReproError):
    """A delta record was malformed or could not be parsed."""


#: Delta operation names.
EDGE_ADD = "edge_add"
EDGE_REMOVE = "edge_remove"
EVENT_ATTACH = "event_attach"
EVENT_DETACH = "event_detach"

EDGE_OPS = (EDGE_ADD, EDGE_REMOVE)
EVENT_OPS = (EVENT_ATTACH, EVENT_DETACH)

#: The batch-boundary marker in the JSONL wire format.
COMMIT_OP = "commit"


@dataclass(frozen=True)
class Delta:
    """One atomic graph or event-layer mutation.

    Edge deltas carry ``u``/``v`` (normalised so ``u < v``); event deltas
    carry ``event``/``node``.  Use the :meth:`edge_add` ... :meth:`event_detach`
    constructors rather than the raw initialiser.
    """

    op: str
    u: int = -1
    v: int = -1
    event: str = ""
    node: int = -1

    @classmethod
    def edge_add(cls, u: int, v: int) -> "Delta":
        """Insert the undirected edge ``(u, v)``."""
        u, v = int(u), int(v)
        return cls(op=EDGE_ADD, u=min(u, v), v=max(u, v))

    @classmethod
    def edge_remove(cls, u: int, v: int) -> "Delta":
        """Delete the undirected edge ``(u, v)``."""
        u, v = int(u), int(v)
        return cls(op=EDGE_REMOVE, u=min(u, v), v=max(u, v))

    @classmethod
    def event_attach(cls, event: str, node: int) -> "Delta":
        """Record an occurrence of ``event`` on ``node``."""
        return cls(op=EVENT_ATTACH, event=str(event), node=int(node))

    @classmethod
    def event_detach(cls, event: str, node: int) -> "Delta":
        """Erase the occurrence of ``event`` on ``node``."""
        return cls(op=EVENT_DETACH, event=str(event), node=int(node))

    @property
    def is_edge(self) -> bool:
        """Whether this delta mutates graph structure."""
        return self.op in EDGE_OPS

    @property
    def is_event(self) -> bool:
        """Whether this delta mutates the event layer."""
        return self.op in EVENT_OPS

    def to_record(self) -> dict:
        """The JSONL record for this delta."""
        if self.is_edge:
            return {"op": self.op, "u": self.u, "v": self.v}
        return {"op": self.op, "event": self.event, "node": self.node}

    @classmethod
    def from_record(cls, record: dict) -> "Delta":
        """Parse one JSONL record (raises :class:`DeltaError` when malformed)."""
        op = record.get("op")
        try:
            if op == EDGE_ADD:
                # Through the constructors so hand-written records get the
                # same u < v normalisation — batch netting and the
                # AppliedBatch invariant key on the ordered tuple.
                return cls.edge_add(int(record["u"]), int(record["v"]))
            if op == EDGE_REMOVE:
                return cls.edge_remove(int(record["u"]), int(record["v"]))
            if op in EVENT_OPS:
                return cls(op=op, event=str(record["event"]), node=int(record["node"]))
        except (KeyError, TypeError, ValueError) as error:
            raise DeltaError(f"malformed delta record {record!r}") from error
        raise DeltaError(f"unknown delta op {op!r} in record {record!r}")

    def __str__(self) -> str:
        if self.is_edge:
            sign = "+" if self.op == EDGE_ADD else "-"
            return f"{sign}({self.u}, {self.v})"
        sign = "+" if self.op == EVENT_ATTACH else "-"
        return f"{sign}{self.event}@{self.node}"


#: Inputs accepted wherever a batch is expected.
BatchLike = Union["DeltaBatch", Iterable[Delta]]


@dataclass(frozen=True)
class DeltaBatch:
    """One commit's worth of deltas, applied atomically."""

    deltas: Tuple[Delta, ...]

    def __len__(self) -> int:
        return len(self.deltas)

    def __iter__(self) -> Iterator[Delta]:
        return iter(self.deltas)

    def edge_deltas(self) -> Tuple[Delta, ...]:
        """The structural deltas, in order."""
        return tuple(delta for delta in self.deltas if delta.is_edge)

    def event_deltas(self) -> Tuple[Delta, ...]:
        """The event-layer deltas, in order."""
        return tuple(delta for delta in self.deltas if delta.is_event)

    @classmethod
    def coerce(cls, batch: BatchLike) -> "DeltaBatch":
        """Accept a batch, a bare delta iterable, or mutation-helper tuples.

        ``("add" | "remove", u, v)`` triples — the ``with_deltas=True``
        output of :mod:`repro.graph.mutation` — are converted on the fly.
        """
        if isinstance(batch, DeltaBatch):
            return batch
        deltas: List[Delta] = []
        for item in batch:
            if isinstance(item, Delta):
                deltas.append(item)
            elif isinstance(item, (tuple, list)) and len(item) == 3:
                op, u, v = item
                if op == "add":
                    deltas.append(Delta.edge_add(u, v))
                elif op == "remove":
                    deltas.append(Delta.edge_remove(u, v))
                else:
                    raise DeltaError(f"unknown mutation op {op!r}")
            else:
                raise DeltaError(f"cannot interpret {item!r} as a delta")
        return cls(deltas=tuple(deltas))

    def __str__(self) -> str:
        return f"DeltaBatch({', '.join(str(delta) for delta in self.deltas)})"


class DeltaLog:
    """An append-only log of deltas with batch (commit) boundaries.

    Deltas are staged with :meth:`add` / the typed helpers and grouped into a
    batch by :meth:`seal`; sealed batches are retained for replay.  The log
    round-trips through the JSONL wire format (:meth:`save` / :meth:`load`)
    consumed by ``tesc stream``.
    """

    def __init__(self) -> None:
        self.batches: List[DeltaBatch] = []
        self.pending: List[Delta] = []

    # -- staging ------------------------------------------------------------

    def add(self, delta: Delta) -> None:
        """Stage one delta into the pending batch."""
        if not isinstance(delta, Delta):
            raise DeltaError(f"expected a Delta, got {type(delta).__name__}")
        self.pending.append(delta)

    def extend(self, deltas: Iterable[Delta]) -> None:
        """Stage many deltas in order."""
        for delta in deltas:
            self.add(delta)

    def add_edge(self, u: int, v: int) -> None:
        """Stage an edge insertion."""
        self.add(Delta.edge_add(u, v))

    def remove_edge(self, u: int, v: int) -> None:
        """Stage an edge deletion."""
        self.add(Delta.edge_remove(u, v))

    def attach_event(self, event: str, node: int) -> None:
        """Stage an event attach."""
        self.add(Delta.event_attach(event, node))

    def detach_event(self, event: str, node: int) -> None:
        """Stage an event detach."""
        self.add(Delta.event_detach(event, node))

    def record_mutations(self, mutations: Sequence[Tuple[str, int, int]]) -> None:
        """Stage ``("add" | "remove", u, v)`` triples from the mutation helpers."""
        self.extend(DeltaBatch.coerce(mutations).deltas)

    def seal(self) -> DeltaBatch:
        """Close the pending deltas into a batch (which may be empty)."""
        batch = DeltaBatch(deltas=tuple(self.pending))
        self.pending.clear()
        self.batches.append(batch)
        return batch

    # -- queries ------------------------------------------------------------

    @property
    def num_pending(self) -> int:
        """Deltas staged but not yet sealed into a batch."""
        return len(self.pending)

    def __len__(self) -> int:
        """Number of sealed batches."""
        return len(self.batches)

    def replay(self) -> Iterator[DeltaBatch]:
        """Iterate the sealed batches in commit order, then any pending tail."""
        yield from self.batches
        if self.pending:
            yield DeltaBatch(deltas=tuple(self.pending))

    # -- wire format ---------------------------------------------------------

    def dump(self, handle: IO[str]) -> None:
        """Write the log as JSONL (one record per line, ``commit`` separators)."""
        for batch in self.batches:
            for delta in batch:
                handle.write(json.dumps(delta.to_record()) + "\n")
            handle.write(json.dumps({"op": COMMIT_OP}) + "\n")
        for delta in self.pending:
            handle.write(json.dumps(delta.to_record()) + "\n")

    def save(self, path: str) -> None:
        """Write the log to ``path`` in the JSONL wire format."""
        with open(path, "w", encoding="utf-8") as handle:
            self.dump(handle)

    @classmethod
    def parse(cls, lines: Iterable[str]) -> "DeltaLog":
        """Parse JSONL lines into a log (blank lines and ``#`` comments skipped)."""
        log = cls()
        for number, line in enumerate(lines, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise DeltaError(f"line {number}: invalid JSON: {line!r}") from error
            if not isinstance(record, dict):
                raise DeltaError(f"line {number}: expected an object, got {record!r}")
            if record.get("op") == COMMIT_OP:
                log.seal()
            else:
                log.add(Delta.from_record(record))
        return log

    @classmethod
    def load(cls, path: str) -> "DeltaLog":
        """Read a JSONL delta file written by :meth:`save` (or by hand)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.parse(handle)

    def __repr__(self) -> str:
        return f"DeltaLog(batches={len(self.batches)}, pending={len(self.pending)})"
