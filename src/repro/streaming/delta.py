"""Delta model for dynamic attributed graphs.

A :class:`Delta` is one atomic mutation — an edge insert/delete or an event
attach/detach.  Deltas are grouped into :class:`DeltaBatch` units (one
commit's worth of changes) and accumulated in a :class:`DeltaLog`, which also
reads and writes the JSONL wire format replayed by ``tesc stream``:

.. code-block:: text

    {"op": "edge_add", "u": 3, "v": 17}
    {"op": "event_detach", "event": "wireless", "node": 9}
    {"op": "commit"}

Every ``commit`` line closes one batch; a trailing run of deltas without a
``commit`` forms a final implicit batch.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ReproError


class DeltaError(ReproError):
    """A delta record was malformed or could not be parsed."""


#: Delta operation names.
EDGE_ADD = "edge_add"
EDGE_REMOVE = "edge_remove"
EVENT_ATTACH = "event_attach"
EVENT_DETACH = "event_detach"

EDGE_OPS = (EDGE_ADD, EDGE_REMOVE)
EVENT_OPS = (EVENT_ATTACH, EVENT_DETACH)

#: The batch-boundary marker in the JSONL wire format.
COMMIT_OP = "commit"

#: The compaction header of a write-ahead log whose covered prefix was
#: truncated by a checkpoint: ``{"op": "compact", "batches": N}`` as the
#: first record means N committed batches were dropped from the front of the
#: file (their state lives in a checkpoint).  Only valid as the first
#: record; anywhere else it is treated as corruption.
COMPACT_OP = "compact"


@dataclass(frozen=True)
class Delta:
    """One atomic graph or event-layer mutation.

    Edge deltas carry ``u``/``v`` (normalised so ``u < v``); event deltas
    carry ``event``/``node``.  Use the :meth:`edge_add` ... :meth:`event_detach`
    constructors rather than the raw initialiser.
    """

    op: str
    u: int = -1
    v: int = -1
    event: str = ""
    node: int = -1

    @classmethod
    def edge_add(cls, u: int, v: int) -> "Delta":
        """Insert the undirected edge ``(u, v)``."""
        u, v = int(u), int(v)
        return cls(op=EDGE_ADD, u=min(u, v), v=max(u, v))

    @classmethod
    def edge_remove(cls, u: int, v: int) -> "Delta":
        """Delete the undirected edge ``(u, v)``."""
        u, v = int(u), int(v)
        return cls(op=EDGE_REMOVE, u=min(u, v), v=max(u, v))

    @classmethod
    def event_attach(cls, event: str, node: int) -> "Delta":
        """Record an occurrence of ``event`` on ``node``."""
        return cls(op=EVENT_ATTACH, event=str(event), node=int(node))

    @classmethod
    def event_detach(cls, event: str, node: int) -> "Delta":
        """Erase the occurrence of ``event`` on ``node``."""
        return cls(op=EVENT_DETACH, event=str(event), node=int(node))

    @property
    def is_edge(self) -> bool:
        """Whether this delta mutates graph structure."""
        return self.op in EDGE_OPS

    @property
    def is_event(self) -> bool:
        """Whether this delta mutates the event layer."""
        return self.op in EVENT_OPS

    def to_record(self) -> dict:
        """The JSONL record for this delta."""
        if self.is_edge:
            return {"op": self.op, "u": self.u, "v": self.v}
        return {"op": self.op, "event": self.event, "node": self.node}

    @classmethod
    def from_record(cls, record: dict) -> "Delta":
        """Parse one JSONL record (raises :class:`DeltaError` when malformed)."""
        op = record.get("op")
        try:
            if op == EDGE_ADD:
                # Through the constructors so hand-written records get the
                # same u < v normalisation — batch netting and the
                # AppliedBatch invariant key on the ordered tuple.
                return cls.edge_add(int(record["u"]), int(record["v"]))
            if op == EDGE_REMOVE:
                return cls.edge_remove(int(record["u"]), int(record["v"]))
            if op in EVENT_OPS:
                return cls(op=op, event=str(record["event"]), node=int(record["node"]))
        except (KeyError, TypeError, ValueError) as error:
            raise DeltaError(f"malformed delta record {record!r}") from error
        raise DeltaError(f"unknown delta op {op!r} in record {record!r}")

    def __str__(self) -> str:
        if self.is_edge:
            sign = "+" if self.op == EDGE_ADD else "-"
            return f"{sign}({self.u}, {self.v})"
        sign = "+" if self.op == EVENT_ATTACH else "-"
        return f"{sign}{self.event}@{self.node}"


#: Inputs accepted wherever a batch is expected.
BatchLike = Union["DeltaBatch", Iterable[Delta]]


@dataclass(frozen=True)
class DeltaBatch:
    """One commit's worth of deltas, applied atomically."""

    deltas: Tuple[Delta, ...]

    def __len__(self) -> int:
        return len(self.deltas)

    def __iter__(self) -> Iterator[Delta]:
        return iter(self.deltas)

    def edge_deltas(self) -> Tuple[Delta, ...]:
        """The structural deltas, in order."""
        return tuple(delta for delta in self.deltas if delta.is_edge)

    def event_deltas(self) -> Tuple[Delta, ...]:
        """The event-layer deltas, in order."""
        return tuple(delta for delta in self.deltas if delta.is_event)

    @classmethod
    def coerce(cls, batch: BatchLike) -> "DeltaBatch":
        """Accept a batch, a bare delta iterable, or mutation-helper tuples.

        ``("add" | "remove", u, v)`` triples — the ``with_deltas=True``
        output of :mod:`repro.graph.mutation` — are converted on the fly.
        """
        if isinstance(batch, DeltaBatch):
            return batch
        deltas: List[Delta] = []
        for item in batch:
            if isinstance(item, Delta):
                deltas.append(item)
            elif isinstance(item, (tuple, list)) and len(item) == 3:
                op, u, v = item
                if op == "add":
                    deltas.append(Delta.edge_add(u, v))
                elif op == "remove":
                    deltas.append(Delta.edge_remove(u, v))
                else:
                    raise DeltaError(f"unknown mutation op {op!r}")
            else:
                raise DeltaError(f"cannot interpret {item!r} as a delta")
        return cls(deltas=tuple(deltas))

    def __str__(self) -> str:
        return f"DeltaBatch({', '.join(str(delta) for delta in self.deltas)})"


class DeltaLog:
    """An append-only log of deltas with batch (commit) boundaries.

    Deltas are staged with :meth:`add` / the typed helpers and grouped into a
    batch by :meth:`seal`; sealed batches are retained for replay.  The log
    round-trips through the JSONL wire format (:meth:`save` / :meth:`load`)
    consumed by ``tesc stream``.
    """

    def __init__(self) -> None:
        self.batches: List[DeltaBatch] = []
        self.pending: List[Delta] = []

    # -- staging ------------------------------------------------------------

    def add(self, delta: Delta) -> None:
        """Stage one delta into the pending batch."""
        if not isinstance(delta, Delta):
            raise DeltaError(f"expected a Delta, got {type(delta).__name__}")
        self.pending.append(delta)

    def extend(self, deltas: Iterable[Delta]) -> None:
        """Stage many deltas in order."""
        for delta in deltas:
            self.add(delta)

    def add_edge(self, u: int, v: int) -> None:
        """Stage an edge insertion."""
        self.add(Delta.edge_add(u, v))

    def remove_edge(self, u: int, v: int) -> None:
        """Stage an edge deletion."""
        self.add(Delta.edge_remove(u, v))

    def attach_event(self, event: str, node: int) -> None:
        """Stage an event attach."""
        self.add(Delta.event_attach(event, node))

    def detach_event(self, event: str, node: int) -> None:
        """Stage an event detach."""
        self.add(Delta.event_detach(event, node))

    def record_mutations(self, mutations: Sequence[Tuple[str, int, int]]) -> None:
        """Stage ``("add" | "remove", u, v)`` triples from the mutation helpers."""
        self.extend(DeltaBatch.coerce(mutations).deltas)

    def seal(self) -> DeltaBatch:
        """Close the pending deltas into a batch (which may be empty)."""
        batch = DeltaBatch(deltas=tuple(self.pending))
        self.pending.clear()
        self.batches.append(batch)
        return batch

    # -- queries ------------------------------------------------------------

    @property
    def num_pending(self) -> int:
        """Deltas staged but not yet sealed into a batch."""
        return len(self.pending)

    def __len__(self) -> int:
        """Number of sealed batches."""
        return len(self.batches)

    def replay(self) -> Iterator[DeltaBatch]:
        """Iterate the sealed batches in commit order, then any pending tail."""
        yield from self.batches
        if self.pending:
            yield DeltaBatch(deltas=tuple(self.pending))

    # -- wire format ---------------------------------------------------------

    def dump(self, handle: IO[str]) -> None:
        """Write the log as JSONL (one record per line, ``commit`` separators)."""
        for batch in self.batches:
            for delta in batch:
                handle.write(json.dumps(delta.to_record()) + "\n")
            handle.write(json.dumps({"op": COMMIT_OP}) + "\n")
        for delta in self.pending:
            handle.write(json.dumps(delta.to_record()) + "\n")

    def save(self, path: str) -> None:
        """Write the log to ``path`` in the JSONL wire format."""
        with open(path, "w", encoding="utf-8") as handle:
            self.dump(handle)

    @classmethod
    def parse(cls, lines: Iterable[str]) -> "DeltaLog":
        """Parse JSONL lines into a log (blank lines and ``#`` comments skipped)."""
        log = cls()
        for number, line in enumerate(lines, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise DeltaError(f"line {number}: invalid JSON: {line!r}") from error
            if not isinstance(record, dict):
                raise DeltaError(f"line {number}: expected an object, got {record!r}")
            if record.get("op") == COMMIT_OP:
                log.seal()
            else:
                log.add(Delta.from_record(record))
        return log

    @classmethod
    def load(cls, path: str) -> "DeltaLog":
        """Read a JSONL delta file written by :meth:`save` (or by hand)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.parse(handle)

    def __repr__(self) -> str:
        return f"DeltaLog(batches={len(self.batches)}, pending={len(self.pending)})"


class WriteAheadLog(DeltaLog):
    """A :class:`DeltaLog` whose commits are durable *before* they apply.

    The on-disk format is the JSONL wire format with one addition: every
    line is prefixed by the CRC32 of its JSON payload —

    .. code-block:: text

        89a1c3f0 {"op":"edge_add","u":3,"v":17}
        5d2e0b1c {"op":"commit"}

    :meth:`append_batch` writes the batch's records plus a ``commit`` line,
    flushes, and fsyncs (the commit boundary is the durability boundary).
    If the fsync fails the file is rolled back to the previous boundary and
    the error propagates, so the log never claims a commit it cannot
    guarantee — callers apply the batch to the live graph only *after*
    :meth:`append_batch` returns.

    On open, the tail is scanned record by record: the first torn line
    (partial write), CRC mismatch, or malformed record — and any valid
    records after the last ``commit`` — are truncated away, leaving exactly
    the committed prefix.  Recovered batches are available via the
    inherited :meth:`~DeltaLog.replay`, which is how ``tesc serve --wal``
    restores the pre-crash epoch.

    The delta-log fsync fault seam (:data:`repro.service.faults.WAL_FSYNC`)
    lives in :meth:`_sync`.
    """

    def __init__(self, path: Union[str, "os.PathLike[str]"],
                 fsync: bool = True) -> None:
        super().__init__()
        self.path = os.fspath(path)
        self.fsync_enabled = bool(fsync)
        #: Bytes of torn/uncommitted tail discarded during recovery.
        self.truncated_bytes = 0
        #: Committed batches found on disk at open time.
        self.recovered_batches = 0
        #: Batches dropped from the front of the file by prior compactions
        #: (recovered from the compaction header record).
        self.compacted_batches = 0
        #: Bytes reclaimed by :meth:`compact` over this object's lifetime.
        self.compacted_bytes = 0
        # Byte offset just past the compaction header (0 when none) and the
        # offset just past each in-file batch's commit line, parallel to
        # ``self.batches`` — the durability boundaries compaction and
        # checkpoint manifests speak in.
        self._header_end = 0
        self._boundaries: List[int] = []
        self._lock = threading.Lock()
        self._recover()
        self._handle: IO[bytes] = open(self.path, "ab")

    # -- wire format ---------------------------------------------------------

    @staticmethod
    def _format_record(record: dict) -> bytes:
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        return b"%08x %s\n" % (zlib.crc32(payload), payload)

    @staticmethod
    def _parse_line(line: bytes) -> Optional[dict]:
        """One CRC-prefixed record, or ``None`` if torn/corrupt."""
        if len(line) < 10 or line[8:9] != b" ":
            return None
        payload = line[9:]
        try:
            if int(line[:8], 16) != zlib.crc32(payload):
                return None
            record = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        return record if isinstance(record, dict) else None

    def _recover(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as handle:
            data = handle.read()
        committed_end = 0
        offset = 0
        pending: List[Delta] = []
        first = True
        while True:
            newline = data.find(b"\n", offset)
            if newline == -1:
                break  # torn tail: last line has no terminator
            record = self._parse_line(data[offset:newline])
            if record is None:
                break
            op = record.get("op")
            if op == COMPACT_OP:
                if not first or pending:
                    break  # only valid as the very first record
                try:
                    self.compacted_batches = int(record["batches"])
                except (KeyError, TypeError, ValueError):
                    break
                offset = newline + 1
                self._header_end = offset
                committed_end = offset
                first = False
                continue
            first = False
            offset = newline + 1
            if op == COMMIT_OP:
                self.batches.append(DeltaBatch(deltas=tuple(pending)))
                pending.clear()
                committed_end = offset
                self._boundaries.append(offset)
            else:
                try:
                    pending.append(Delta.from_record(record))
                except DeltaError:
                    break
        self.recovered_batches = len(self.batches)
        if len(data) > committed_end:
            self.truncated_bytes = len(data) - committed_end
            with open(self.path, "r+b") as handle:
                handle.truncate(committed_end)

    # -- durable commits -----------------------------------------------------

    def append_batch(self, batch: BatchLike) -> DeltaBatch:
        """Durably append one batch (records + ``commit`` line + fsync).

        Raises :class:`OSError` with the file rolled back to the previous
        commit boundary when the write or fsync fails — all or nothing.
        """
        batch = DeltaBatch.coerce(batch)
        payload = b"".join(
            self._format_record(delta.to_record()) for delta in batch
        ) + self._format_record({"op": COMMIT_OP})
        with self._lock:
            if self._handle.closed:
                raise DeltaError(f"write-ahead log {self.path!r} is closed")
            start = self._handle.tell()
            try:
                self._handle.write(payload)
                self._handle.flush()
                self._sync()
            except OSError:
                try:
                    self._handle.truncate(start)
                    self._handle.flush()
                    if self.fsync_enabled:
                        os.fsync(self._handle.fileno())
                except OSError:
                    pass
                raise
            self.batches.append(batch)
            self._boundaries.append(start + len(payload))
        return batch

    def seal(self) -> DeltaBatch:
        """Durably commit the pending deltas as one batch."""
        pending = tuple(self.pending)
        self.pending.clear()
        try:
            return self.append_batch(DeltaBatch(deltas=pending))
        except OSError:
            self.pending[:0] = pending  # restage: the commit did not happen
            raise

    def _sync(self, handle=None) -> None:
        # Lazy import: repro.streaming must not pull the service package in
        # at module load (service.engine imports this module).
        from repro.service import faults

        rule = faults.inject(faults.WAL_FSYNC, path=self.path)
        if rule is not None and rule.action == "error":
            raise OSError(rule.message)
        if self.fsync_enabled:
            os.fsync((self._handle if handle is None else handle).fileno())

    def _sync_dir(self) -> None:
        if not self.fsync_enabled:
            return
        parent = os.path.dirname(os.path.abspath(self.path)) or "."
        fd = os.open(parent, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- compaction ----------------------------------------------------------

    @property
    def total_batches(self) -> int:
        """Committed batches ever logged: compacted-away plus in-file."""
        return self.compacted_batches + len(self.batches)

    @property
    def committed_offset(self) -> int:
        """Byte offset just past the last durable commit boundary."""
        return self._boundaries[-1] if self._boundaries else self._header_end

    def offset_of_total(self, covered: int) -> int:
        """The commit-boundary byte offset covering ``covered`` total batches.

        Clamped at both ends: asking for no more than the already-compacted
        count returns the header end (nothing further to drop), asking past
        the last in-file commit returns :attr:`committed_offset`.
        """
        in_file = int(covered) - self.compacted_batches
        if in_file <= 0:
            return self._header_end
        if in_file > len(self._boundaries):
            return self.committed_offset
        return self._boundaries[in_file - 1]

    def compact(self, up_to_offset: int) -> int:
        """Truncate the covered prefix ``[0, up_to_offset)`` of the log.

        ``up_to_offset`` should be a commit boundary previously obtained from
        :attr:`committed_offset` / :meth:`offset_of_total`; anything else —
        including an offset past a torn tail or past end-of-file — is
        clamped *down* to the nearest known boundary, so compaction can never
        split a batch.  The surviving tail is rewritten behind a fresh
        compaction header to ``<path>.compact``, fsynced, and atomically
        renamed over the log: a crash mid-compaction leaves either the old
        file or the new one, never a hybrid.  Serialised against concurrent
        :meth:`append_batch` by the commit lock.  Returns bytes reclaimed.
        """
        with self._lock:
            if self._handle.closed:
                raise DeltaError(f"write-ahead log {self.path!r} is closed")
            # Clamp down to the largest known commit boundary <= the offset.
            drop = 0
            for boundary in self._boundaries:
                if boundary <= up_to_offset:
                    drop += 1
                else:
                    break
            if drop == 0:
                return 0
            cut = self._boundaries[drop - 1]
            self._handle.flush()
            with open(self.path, "rb") as handle:
                handle.seek(cut)
                tail = handle.read()
            header = self._format_record(
                {"op": COMPACT_OP, "batches": self.compacted_batches + drop}
            )
            temp = self.path + ".compact"
            try:
                with open(temp, "wb") as handle:
                    handle.write(header + tail)
                    handle.flush()
                    self._sync(handle)
                os.rename(temp, self.path)
            except BaseException:
                if os.path.exists(temp):
                    os.remove(temp)
                raise
            self._sync_dir()
            self._handle.close()
            self._handle = open(self.path, "ab")
            shift = len(header) - cut  # negative: how far the tail moved left
            self._boundaries = [b + shift for b in self._boundaries[drop:]]
            self._header_end = len(header)
            del self.batches[:drop]
            self.compacted_batches += drop
            reclaimed = max(0, -shift)
            self.compacted_bytes += reclaimed
            return reclaimed

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog(path={self.path!r}, batches={len(self.batches)}, "
            f"recovered={self.recovered_batches}, "
            f"truncated_bytes={self.truncated_bytes})"
        )
