"""Epoch-pinned copy-on-write snapshots and their lease table.

The streaming graph applies delta batches by splicing CSR rows copy-on-write
(:meth:`~repro.graph.csr.CSRGraph.replace_rows`): the pre-commit row arrays
are never mutated, so a reader that captured them keeps traversing a
perfectly consistent graph while commits race ahead.  This module turns that
property into an explicit MVCC contract:

* :class:`GraphSnapshot` — a frozen :class:`~repro.events.attributed_graph.
  AttributedGraph` view of one epoch: the epoch's CSR (shared, immutable),
  a deep copy of the event layer (version preserved), and the pinned
  ``(structure_version, events_version)`` pair.  Everything downstream — the
  samplers, the density pass, the estimate batchers, the shared-memory
  dataset publication — works on a snapshot exactly as it would on a live
  graph, because a snapshot *is* an attributed graph;
* :class:`SnapshotLease` — one reader's pin on an epoch.  While at least one
  lease is held, the epoch's snapshot (and therefore its retired CSR row
  arrays) stays retained; when the last lease drops and the epoch is no
  longer current, the lease table releases its reference and the retired
  rows become garbage;
* :class:`EpochLeaseTable` — the per-epoch refcount table.  ``publish``
  registers an epoch's snapshot, ``acquire``/``release`` move the
  refcounts, ``advance`` retires every unleased non-current epoch when a
  commit publishes a new one.

The table never copies graph data: retention is purely reference-counted
liveness of objects the copy-on-write splice produced anyway.  Snapshot
growth is therefore bounded by the number of *distinct epochs still pinned*,
and the property suite asserts retired rows are actually freed once the last
lease drops.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from repro.events.attributed_graph import AttributedGraph
from repro.events.event_set import EventLayer
from repro.exceptions import SnapshotExpiredError
from repro.graph.csr import CSRGraph


class GraphSnapshot(AttributedGraph):
    """A frozen, epoch-tagged view of one graph state.

    Attributes
    ----------
    epoch:
        The commit epoch this snapshot pins (the dynamic graph's counter of
        effective commits).
    structure_version / events version:
        The pinned version pair; :meth:`~repro.events.attributed_graph.
        AttributedGraph.versions` reports it, so version-keyed caches (the
        shared-memory dataset publication, indicator caches) treat the
        snapshot exactly like the live graph state it froze.

    Treat snapshots as read-only: they share the epoch's immutable CSR and
    own a private event-layer copy, but nothing enforces immutability at the
    attribute level.
    """

    def __init__(
        self,
        csr: CSRGraph,
        events: EventLayer,
        labels: Optional[Sequence[str]],
        epoch: int,
        structure_version: int,
    ) -> None:
        super().__init__(csr, events, labels=labels)
        self.epoch = int(epoch)
        self.structure_version = int(structure_version)

    def checkpoint_state(self) -> Dict[str, object]:
        """The serialisable pieces a checkpoint of this snapshot carries.

        This is the single seam the checkpoint store reads engine state
        through: the epoch's CSR arrays (shared, immutable — safe to hand
        out), the event occurrences as a plain mapping plus the pinned
        events version, labels, and the epoch / structure-version pair.
        Everything here round-trips through
        :meth:`~repro.streaming.dynamic_graph.DynamicAttributedGraph.restore`.
        """
        return {
            "indptr": self.csr.indptr,
            "indices": self.csr.indices,
            "events": self.events.to_mapping(),
            "events_version": int(self.events.version),
            "labels": list(self.labels) if self.labels is not None else None,
            "epoch": self.epoch,
            "structure_version": self.structure_version,
        }

    def __repr__(self) -> str:
        return (
            f"GraphSnapshot(epoch={self.epoch}, num_nodes={self.num_nodes}, "
            f"num_edges={self.num_edges}, num_events={len(self.events)})"
        )


class SnapshotLease:
    """One reader's pin on an epoch's snapshot.

    Obtained from :meth:`EpochLeaseTable.acquire` (normally via
    :meth:`~repro.streaming.dynamic_graph.DynamicAttributedGraph.pin`).
    While the lease is live, :attr:`graph` is guaranteed immutable and the
    epoch's retired CSR rows stay allocated.  :meth:`release` is idempotent;
    the lease is also a context manager.
    """

    __slots__ = ("epoch", "graph", "_table", "_released")

    def __init__(self, epoch: int, graph: GraphSnapshot,
                 table: "EpochLeaseTable") -> None:
        self.epoch = int(epoch)
        self.graph = graph
        self._table = table
        self._released = False

    @property
    def released(self) -> bool:
        """Whether this lease has already been dropped."""
        return self._released

    def release(self) -> None:
        """Drop the pin (idempotent).  The snapshot object itself stays
        valid for as long as the caller holds a reference; only the
        *retention guarantee* for future :meth:`EpochLeaseTable.acquire`
        calls ends here."""
        if self._released:
            return
        self._released = True
        self._table._release(self.epoch)

    def __enter__(self) -> "SnapshotLease":
        return self

    def __exit__(self, *_exc) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "released" if self._released else "held"
        return f"SnapshotLease(epoch={self.epoch}, {state})"


class EpochLeaseTable:
    """Per-epoch refcount table deciding how long retired state stays live.

    The table holds at most one :class:`GraphSnapshot` per epoch plus a
    lease count.  Lifecycle:

    * ``publish(epoch, snapshot)`` registers the epoch's snapshot (the
      writer, or the first reader to want one, builds it — construction is
      serialised by the dynamic graph's mutation lock);
    * ``acquire(epoch)`` increments the count and hands out a
      :class:`SnapshotLease`; unknown or already-retired epochs raise
      :class:`~repro.exceptions.SnapshotExpiredError`;
    * releasing the last lease of a non-current epoch — or ``advance`` when
      an unleased epoch stops being current — drops the table's reference,
      letting the garbage collector free the retired CSR rows and event
      copy.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._states: Dict[int, GraphSnapshot] = {}
        self._counts: Dict[int, int] = {}
        self._current = 0
        #: Lifetime count of snapshot states the table has retired —
        #: whether by a commit-driven sweep or by the last lease dropping.
        self.sweeps = 0

    # -- writer side ---------------------------------------------------------

    def publish(self, epoch: int, snapshot: GraphSnapshot) -> None:
        """Register ``snapshot`` as epoch ``epoch``'s state and make the
        epoch current (retiring unleased older epochs)."""
        epoch = int(epoch)
        with self._lock:
            self._states[epoch] = snapshot
            self._current = max(self._current, epoch)
            self._sweep()

    def advance(self, epoch: int) -> None:
        """Move the current epoch forward (no snapshot built yet) and retire
        every unleased non-current epoch's state."""
        with self._lock:
            self._current = max(self._current, int(epoch))
            self._sweep()

    # -- reader side ---------------------------------------------------------

    def state(self, epoch: int) -> Optional[GraphSnapshot]:
        """The retained snapshot for ``epoch``, or ``None``."""
        with self._lock:
            return self._states.get(int(epoch))

    def acquire(self, epoch: int) -> SnapshotLease:
        """Pin ``epoch``: returns a lease, or raises
        :class:`SnapshotExpiredError` if its state is no longer retained."""
        epoch = int(epoch)
        with self._lock:
            snapshot = self._states.get(epoch)
            if snapshot is None:
                raise SnapshotExpiredError(
                    f"epoch {epoch} is not retained (current epoch is "
                    f"{self._current}; a snapshot stays available only while "
                    "it is current or some lease still pins it)"
                )
            self._counts[epoch] = self._counts.get(epoch, 0) + 1
            return SnapshotLease(epoch, snapshot, self)

    def acquire_latest(self) -> Optional[SnapshotLease]:
        """Pin the newest *published* epoch, or ``None`` if it has no
        snapshot yet (publication is lazy).

        This is the wait-free admission point for MVCC readers: it touches
        only the table's own lock, never the graph's mutation lock.  A
        commit in flight holds the mutation lock for its whole apply, but
        the table's current epoch advances only when that commit finishes —
        so a reader admitted here serialises *before* the in-flight commit
        by construction, which is exactly snapshot isolation.
        """
        with self._lock:
            snapshot = self._states.get(self._current)
            if snapshot is None:
                return None
            self._counts[self._current] = self._counts.get(self._current, 0) + 1
            return SnapshotLease(self._current, snapshot, self)

    def _release(self, epoch: int) -> None:
        with self._lock:
            count = self._counts.get(epoch, 0) - 1
            if count > 0:
                self._counts[epoch] = count
                return
            self._counts.pop(epoch, None)
            if epoch != self._current and self._states.pop(epoch, None) is not None:
                self.sweeps += 1

    # -- introspection -------------------------------------------------------

    @property
    def current_epoch(self) -> int:
        """The newest epoch the table has been advanced to."""
        with self._lock:
            return self._current

    def retained_epochs(self) -> List[int]:
        """Epochs whose snapshot the table still holds, ascending."""
        with self._lock:
            return sorted(self._states)

    def lease_count(self, epoch: int) -> int:
        """Live leases pinning ``epoch``."""
        with self._lock:
            return self._counts.get(int(epoch), 0)

    def retained_bytes(self) -> int:
        """Bytes of CSR row storage retained across all kept snapshots.

        Shared CSR objects (epochs without structural change between them)
        are counted once.
        """
        with self._lock:
            seen = {}
            for snapshot in self._states.values():
                seen[id(snapshot.csr)] = snapshot.csr.nbytes
            return sum(seen.values())

    def _sweep(self) -> None:
        """Drop every unleased non-current state (callers hold ``_lock``)."""
        for epoch in [
            epoch for epoch in self._states
            if epoch != self._current and not self._counts.get(epoch)
        ]:
            del self._states[epoch]
            self.sweeps += 1

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"EpochLeaseTable(current={self._current}, "
                f"retained={sorted(self._states)}, "
                f"leases={dict(self._counts)})"
            )
