"""Mapping applied deltas to the reference-node rows they invalidate.

The density column of a reference node ``r`` — the numerators
``|V_e ∩ V^h_r|`` for every monitored event ``e`` plus the denominator
``|V^h_r|`` — changes under a delta batch in exactly two ways:

* **structurally**, when an edge delta changes ``V^h_r`` itself.  That
  requires ``r`` to lie within ``h - 1`` hops of a touched endpoint (on the
  old graph for removals, the new graph for additions — see
  :func:`~repro.graph.traversal.dirty_vicinity`); those columns must be
  recomputed with a fresh BFS;
* **by occupancy**, when an event attach/detach at node ``x`` toggles a
  member of ``V^h_r``, i.e. when ``r ∈ V^h_x`` (hop distance is symmetric).
  Structurally *clean* columns need no BFS for this: the affected count is
  patched in place by ``± 1``.

:class:`DirtyTracker` computes both regions with Batch BFS and hands them to
the :class:`~repro.streaming.ranker.ContinuousRanker`, which drops the
structurally dirty columns from its cache and patches the rest.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.graph.traversal import BFSEngine, dirty_vicinity
from repro.streaming.dynamic_graph import AppliedBatch
from repro.utils.validation import check_vicinity_level


@dataclass(frozen=True)
class EventPatch:
    """One event occurrence toggle and the reference rows it reaches.

    ``sign`` is ``+1`` for an attach and ``-1`` for a detach; ``region`` is
    ``V^h_node`` on the post-batch graph — every reference node whose count
    for ``event`` shifts by ``sign``.
    """

    event: str
    node: int
    sign: int
    region: np.ndarray


@dataclass(frozen=True)
class DirtyRegion:
    """Everything a delta batch invalidates at one vicinity level."""

    level: int
    #: Nodes whose ``V^h`` may have changed — their density columns (and
    #: vicinity sizes) must be recomputed from scratch.
    structure: np.ndarray
    #: In-place count adjustments for structurally clean columns.
    event_patches: Tuple[EventPatch, ...]

    @property
    def is_empty(self) -> bool:
        """Whether the batch dirtied nothing at this level."""
        return self.structure.size == 0 and not self.event_patches

    @property
    def num_structural(self) -> int:
        """Number of structurally dirty nodes."""
        return int(self.structure.size)


class DirtyTracker:
    """Computes :class:`DirtyRegion` for committed batches at a fixed level.

    Parameters
    ----------
    level:
        The vicinity level ``h`` the downstream ranker scores at.
    journal_size:
        Regions computed with an ``epoch`` tag are kept in a bounded
        per-epoch journal so snapshot-pinned consumers (debugging a commit
        after the fact, incremental catch-up from a pinned epoch) can
        re-read what a commit invalidated without replaying its BFS.
    """

    def __init__(self, level: int, journal_size: int = 16) -> None:
        self.level = check_vicinity_level(level)
        self.journal_size = max(1, int(journal_size))
        self._journal: "OrderedDict[int, DirtyRegion]" = OrderedDict()

    def region_at(self, epoch: int) -> Optional[DirtyRegion]:
        """The journaled region of the commit that produced ``epoch``.

        Returns ``None`` when the epoch was never journaled (no ``epoch``
        passed to :meth:`region`) or has aged out of the bounded journal.
        """
        return self._journal.get(int(epoch))

    def journaled_epochs(self) -> Tuple[int, ...]:
        """Epochs currently held in the journal, oldest first."""
        return tuple(self._journal)

    def region(self, applied: AppliedBatch,
               epoch: Optional[int] = None) -> DirtyRegion:
        """The dirty region of one applied batch.

        ``epoch`` — normally ``applied.epoch`` — journals the region under
        that key; omit it to keep the tracker stateless as before.
        """
        if applied.structure_changed:
            # The vicinity-index rebase may have run the same endpoint BFS
            # already (same radius, same graphs) — reuse it rather than pay
            # the traversal twice per commit.
            cached = (applied.vicinity_dirty or {}).get(self.level)
            structure = (
                cached if cached is not None
                else dirty_vicinity(
                    applied.old_csr,
                    applied.new_csr,
                    applied.touched_endpoints(),
                    self.level - 1,
                )
            )
        else:
            structure = np.empty(0, dtype=np.int64)

        patches = []
        if applied.events_changed:
            engine = BFSEngine(applied.new_csr)
            for sign, toggles in ((+1, applied.attached), (-1, applied.detached)):
                for event, node in toggles:
                    patches.append(
                        EventPatch(
                            event=event,
                            node=node,
                            sign=sign,
                            region=engine.vicinity(node, self.level),
                        )
                    )
        region = DirtyRegion(
            level=self.level, structure=structure, event_patches=tuple(patches)
        )
        if epoch is not None:
            self._journal[int(epoch)] = region
            while len(self._journal) > self.journal_size:
                self._journal.popitem(last=False)
        return region
