"""A mutable attributed graph that applies delta batches in place.

:class:`DynamicAttributedGraph` extends
:class:`~repro.events.attributed_graph.AttributedGraph` with
:meth:`~DynamicAttributedGraph.apply`: a delta batch is netted out (cancelling
add/remove pairs collapse, no-ops are dropped), the CSR is patched row-wise
through :meth:`~repro.graph.csr.CSRGraph.apply_edge_deltas` instead of being
rebuilt from scratch, the event layer is updated through its versioned
occurrence API, and the lazily built vicinity index is *rebased* — clean
``|V^h_v|`` entries survive, only nodes within ``h - 1`` hops of a touched
endpoint are dropped.  The :class:`AppliedBatch` it returns keeps the
pre-patch CSR alive so the dirty tracker can run old-graph traversals.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.events.attributed_graph import AttributedGraph
from repro.exceptions import EdgeError, EventError, NodeNotFoundError
from repro.graph.csr import CSRGraph
from repro.graph.traversal import dirty_vicinity
from repro.streaming.delta import EDGE_ADD, EVENT_ATTACH, BatchLike, DeltaBatch
from repro.streaming.snapshots import EpochLeaseTable, GraphSnapshot, SnapshotLease


@dataclass(frozen=True)
class AppliedBatch:
    """The effective outcome of one committed delta batch.

    Attributes
    ----------
    batch:
        The batch as submitted (possibly containing no-ops).
    added_edges / removed_edges:
        The *net* structural changes actually applied, as ``(u, v)`` with
        ``u < v``.  A delta adding an edge that already existed, removing an
        absent edge, or cancelling an earlier delta of the batch does not
        appear here.
    attached / detached:
        The effective event-layer changes as ``(event, node)`` pairs.
    old_csr / new_csr:
        The CSR before and after the patch (the same object when the batch
        had no effective structural change).  Keeping the old CSR lets
        :class:`~repro.streaming.dirty.DirtyTracker` bound the impact of
        removals with old-graph traversals.
    structure_version:
        The graph's structure version *after* this batch.
    epoch:
        The graph's commit epoch *after* this batch (unchanged when the
        batch had no effect).  Readers pin this value via
        :meth:`DynamicAttributedGraph.pin` to query exactly the state this
        commit produced.
    vicinity_dirty:
        When the vicinity index was rebased during this apply, the
        per-level dirty-node arrays it computed (level ``h`` → nodes within
        ``h - 1`` hops of a touched endpoint).  The dirty tracker reuses a
        matching entry instead of re-running the same endpoint BFS.
    """

    batch: DeltaBatch
    added_edges: Tuple[Tuple[int, int], ...]
    removed_edges: Tuple[Tuple[int, int], ...]
    attached: Tuple[Tuple[str, int], ...]
    detached: Tuple[Tuple[str, int], ...]
    old_csr: CSRGraph
    new_csr: CSRGraph
    structure_version: int
    vicinity_dirty: Optional[Dict[int, np.ndarray]] = None
    epoch: int = 0

    @property
    def structure_changed(self) -> bool:
        """Whether the batch changed any adjacency."""
        return bool(self.added_edges or self.removed_edges)

    @property
    def events_changed(self) -> bool:
        """Whether the batch changed any event occurrence."""
        return bool(self.attached or self.detached)

    @property
    def changed(self) -> bool:
        """Whether the batch had any effect at all."""
        return self.structure_changed or self.events_changed

    def touched_endpoints(self) -> np.ndarray:
        """Distinct endpoints of every effectively added or removed edge."""
        endpoints: Set[int] = set()
        for u, v in self.added_edges:
            endpoints.add(u)
            endpoints.add(v)
        for u, v in self.removed_edges:
            endpoints.add(u)
            endpoints.add(v)
        return np.array(sorted(endpoints), dtype=np.int64)


@dataclass(frozen=True)
class EmptyAppliedBatch(AppliedBatch):
    """Marker subclass for the no-delta commit (first rank, forced re-rank)."""


class DynamicAttributedGraph(AttributedGraph):
    """An attributed graph whose structure and events evolve via delta batches.

    Construction is identical to :class:`AttributedGraph`.  Additions:

    * :meth:`apply` commits a :class:`~repro.streaming.delta.DeltaBatch`
      (or any iterable of deltas) in place, returning an
      :class:`AppliedBatch` describing the net effect;
    * :attr:`structure_version` counts effective structural commits, giving
      downstream caches (sample memos, density-column caches, BFS engines) a
      cheap staleness test — the streaming analogue of
      :attr:`EventLayer.version <repro.events.event_set.EventLayer.version>`;
    * :attr:`epoch` counts *effective commits of any kind* (structural or
      event-only), and :meth:`pin` hands out snapshot leases against the
      per-epoch lease table, which is what lets service readers run against
      a frozen state while commits keep landing (see
      :mod:`repro.streaming.snapshots`).

    Thread-safety contract: :meth:`apply` / :meth:`pin` / :meth:`snapshot` /
    :attr:`epoch` serialise on one internal mutation lock, so concurrent
    readers pinning snapshots never observe a half-applied batch.  Reading
    the live graph without pinning remains as unsynchronised as before.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.structure_version = 0
        self._epoch = 0
        self._mutate_lock = threading.RLock()
        self._leases = EpochLeaseTable()
        self._epoch_versions = self.versions()

    # -- epochs and snapshots -------------------------------------------------

    @property
    def epoch(self) -> int:
        """The commit epoch: bumped once per effective :meth:`apply`.

        Out-of-band mutations (code poking :attr:`events` directly instead
        of going through delta batches) are detected by comparing the
        version pair and healed with an epoch bump, so the epoch never lies
        about state identity.
        """
        with self._mutate_lock:
            self._heal_out_of_band()
            return self._epoch

    def mark_mutated(self) -> int:
        """Declare an out-of-band mutation and return the new epoch.

        Call this after mutating the graph through anything other than
        :meth:`apply` (direct :class:`~repro.events.event_set.EventLayer`
        calls, CSR swaps) so pinned readers and epoch-keyed caches see the
        state change.  Idempotent while the version pair is unchanged.
        """
        with self._mutate_lock:
            self._heal_out_of_band()
            return self._epoch

    def _heal_out_of_band(self) -> None:
        """Bump the epoch if versions moved without an apply (lock held)."""
        if self.versions() != self._epoch_versions:
            self._epoch += 1
            self._epoch_versions = self.versions()
            self._leases.advance(self._epoch)

    def _current_state(self) -> GraphSnapshot:
        """The (memoised) snapshot of the current epoch (lock held)."""
        self._heal_out_of_band()
        state = self._leases.state(self._epoch)
        if state is None:
            state = GraphSnapshot(
                self.csr,
                self.events.copy(),
                self.labels,
                epoch=self._epoch,
                structure_version=self.structure_version,
            )
            self._leases.publish(self._epoch, state)
        return state

    def pin(self, epoch: Optional[int] = None) -> SnapshotLease:
        """Pin an epoch's snapshot and return the lease.

        ``epoch=None`` pins the current epoch, building (and memoising) its
        snapshot on first demand — snapshot publication is lazy, so a
        write-heavy stream that nobody queries never copies anything.
        Pinning an older epoch succeeds only while some other lease still
        retains it; otherwise :class:`~repro.exceptions.SnapshotExpiredError`
        is raised.  Release the lease (or use it as a context manager) when
        the read finishes so retired row arrays can be freed.

        ``pin()`` is *wait-free* once the current epoch's snapshot exists:
        it leases the newest published state straight from the table without
        touching the mutation lock, so readers admitted while a commit is
        mid-apply are served the pre-commit epoch instead of waiting out the
        apply.  (The lock is only taken on the first pin of a new epoch, to
        build and publish its snapshot.)  Out-of-band mutations bypassing
        :meth:`apply` are healed by the next locked operation — call
        :meth:`mark_mutated` after such writes to heal eagerly.
        """
        if epoch is None:
            lease = self._leases.acquire_latest()
            if lease is not None:
                return lease
        with self._mutate_lock:
            self._heal_out_of_band()
            if epoch is None or int(epoch) == self._epoch:
                self._current_state()
                return self._leases.acquire(self._epoch)
        # Past epochs need no graph access — the table alone decides.
        return self._leases.acquire(int(epoch))

    def retained_epochs(self) -> List[int]:
        """Epochs whose snapshots are still held (current and/or leased)."""
        return self._leases.retained_epochs()

    def retained_bytes(self) -> int:
        """CSR row bytes retained across kept snapshots (shared CSRs once)."""
        return self._leases.retained_bytes()

    def lease_count(self, epoch: int) -> int:
        """Live leases pinning ``epoch``."""
        return self._leases.lease_count(epoch)

    @property
    def lease_sweeps(self) -> int:
        """Lifetime count of snapshot states the lease table has retired."""
        return self._leases.sweeps

    def empty_batch(self) -> AppliedBatch:
        """An :class:`AppliedBatch` representing "nothing changed"."""
        with self._mutate_lock:
            self._heal_out_of_band()
            return EmptyAppliedBatch(
                batch=DeltaBatch(deltas=()),
                added_edges=(), removed_edges=(), attached=(), detached=(),
                old_csr=self.csr, new_csr=self.csr,
                structure_version=self.structure_version,
                epoch=self._epoch,
            )

    def apply(self, batch: BatchLike) -> AppliedBatch:
        """Commit one delta batch in place and report its net effect.

        Structural deltas are replayed in order against a per-node overlay to
        net out cancelling operations, then applied as one row-wise CSR
        patch.  Event deltas go through the versioned
        :class:`~repro.events.event_set.EventLayer` API (idempotent — attach
        of an existing occurrence or detach of an absent one is a recorded
        no-op).  Out-of-range nodes raise
        :class:`~repro.exceptions.NodeNotFoundError` and self-loops
        :class:`~repro.exceptions.EdgeError`; nothing is applied until the
        whole batch validates, so a failed apply leaves the graph untouched.

        Commits serialise on the graph's mutation lock; an effective batch
        bumps :attr:`epoch` and advances the snapshot lease table, retiring
        every unleased older snapshot.
        """
        with self._mutate_lock:
            self._heal_out_of_band()
            applied = self._apply_locked(batch)
            if applied.changed:
                self._epoch += 1
                self._epoch_versions = self.versions()
                self._leases.advance(self._epoch)
                applied = AppliedBatch(
                    batch=applied.batch,
                    added_edges=applied.added_edges,
                    removed_edges=applied.removed_edges,
                    attached=applied.attached,
                    detached=applied.detached,
                    old_csr=applied.old_csr,
                    new_csr=applied.new_csr,
                    structure_version=applied.structure_version,
                    vicinity_dirty=applied.vicinity_dirty,
                    epoch=self._epoch,
                )
            return applied

    def _apply_locked(self, batch: BatchLike) -> AppliedBatch:
        """The batch netting + splice body of :meth:`apply` (lock held)."""
        batch = DeltaBatch.coerce(batch)
        old_csr = self.csr

        overlay: Dict[int, Set[int]] = {}

        def neighbours(node: int) -> Set[int]:
            cached = overlay.get(node)
            if cached is None:
                cached = set(int(x) for x in old_csr.neighbors(node))
                overlay[node] = cached
            return cached

        added: Set[Tuple[int, int]] = set()
        removed: Set[Tuple[int, int]] = set()
        for delta in batch.edge_deltas():
            u, v = delta.u, delta.v
            if not (0 <= u < old_csr.num_nodes):
                raise NodeNotFoundError(u)
            if not (0 <= v < old_csr.num_nodes):
                raise NodeNotFoundError(v)
            if u == v:
                raise EdgeError(f"self-loop ({u}, {v}) is not allowed")
            edge = (u, v)
            if delta.op == EDGE_ADD:
                if v in neighbours(u):
                    continue
                neighbours(u).add(v)
                neighbours(v).add(u)
                if edge in removed:
                    removed.discard(edge)
                else:
                    added.add(edge)
            else:
                if v not in neighbours(u):
                    continue
                neighbours(u).discard(v)
                neighbours(v).discard(u)
                if edge in added:
                    added.discard(edge)
                else:
                    removed.add(edge)

        # Validate event deltas before mutating anything (the same checks
        # EventLayer.add_occurrence would raise mid-apply — surfacing them
        # here keeps the whole batch atomic).
        for delta in batch.event_deltas():
            if not isinstance(delta.event, str) or not delta.event:
                raise EventError(
                    f"event name must be a non-empty string, got {delta.event!r}"
                )
            if not (0 <= delta.node < old_csr.num_nodes):
                raise NodeNotFoundError(delta.node)

        new_csr = old_csr
        vicinity_dirty: Optional[Dict[int, np.ndarray]] = None
        if added or removed:
            # The overlay already holds every touched node's final neighbour
            # set, so the CSR patch is a pure row splice — no per-row set
            # algebra on the CSR side.
            touched: Set[int] = set()
            for u, v in added:
                touched.add(u)
                touched.add(v)
            for u, v in removed:
                touched.add(u)
                touched.add(v)
            new_csr = old_csr.replace_rows(
                {node: sorted(overlay[node]) for node in touched}
            )
            vicinity_dirty = self._rebase_vicinity(old_csr, new_csr, added, removed)
            self.csr = new_csr
            self.structure_version += 1

        attached: List[Tuple[str, int]] = []
        detached: List[Tuple[str, int]] = []
        for delta in batch.event_deltas():
            if delta.op == EVENT_ATTACH:
                if self.events.add_occurrence(delta.event, delta.node):
                    attached.append((delta.event, delta.node))
            else:
                if self.events.remove_occurrence(delta.event, delta.node):
                    detached.append((delta.event, delta.node))

        return AppliedBatch(
            batch=batch,
            added_edges=tuple(sorted(added)),
            removed_edges=tuple(sorted(removed)),
            attached=tuple(attached),
            detached=tuple(detached),
            old_csr=old_csr,
            new_csr=new_csr,
            structure_version=self.structure_version,
            vicinity_dirty=vicinity_dirty,
            epoch=self._epoch,
        )

    def _rebase_vicinity(
        self,
        old_csr: CSRGraph,
        new_csr: CSRGraph,
        added: Set[Tuple[int, int]],
        removed: Set[Tuple[int, int]],
    ) -> Optional[Dict[int, np.ndarray]]:
        """Carry clean vicinity sizes across a structural patch.

        Returns the per-level dirty-node arrays when an index was live (so
        the applied batch can hand them to the dirty tracker), ``None``
        otherwise.
        """
        index = self._vicinity_index
        if index is None:
            return None
        endpoints: Set[int] = set()
        for u, v in added | removed:
            endpoints.add(u)
            endpoints.add(v)
        dirty = {
            level: dirty_vicinity(old_csr, new_csr, sorted(endpoints), level - 1)
            for level in index.levels
        }
        self._vicinity_index = index.rebase(new_csr, dirty)
        return dirty

    def restore(
        self,
        csr: CSRGraph,
        events,
        epoch: int,
        structure_version: int,
    ) -> None:
        """Swap in recovered state (the checkpoint-load counterpart of
        :meth:`apply`).

        Replaces the CSR and event layer wholesale, pins the epoch and
        structure version to the recovered values, and drops every derived
        cache (vicinity index, indicator cache, memoised snapshots) — the
        graph then looks exactly as it did when the checkpoint was cut, and
        WAL-tail batches replay on top through the normal :meth:`apply`
        path.  Only meaningful on a freshly constructed graph during boot;
        any leases pinned before the restore keep their old snapshots.
        """
        if csr.num_nodes != self.csr.num_nodes:
            raise ValueError(
                f"restored CSR has {csr.num_nodes} nodes, graph has "
                f"{self.csr.num_nodes}"
            )
        if events.num_nodes != csr.num_nodes:
            raise ValueError(
                "restored event layer covers a different number of nodes "
                "than the restored CSR"
            )
        with self._mutate_lock:
            self.csr = csr
            self.events = events
            self.structure_version = int(structure_version)
            self._epoch = int(epoch)
            self._epoch_versions = self.versions()
            self._vicinity_index = None
            self._indicator_cache = {}
            self._indicator_cache_version = events.version
            self._leases.advance(self._epoch)

    def snapshot(self) -> GraphSnapshot:
        """The current epoch's frozen state (memoised per epoch).

        The returned :class:`~repro.streaming.snapshots.GraphSnapshot` — an
        :class:`AttributedGraph` — shares the immutable CSR but owns a
        copied event layer, so ranking it with a fresh
        :class:`~repro.core.batch.BatchTescEngine` gives the from-scratch
        baseline the streaming equivalence tests compare against.  Repeated
        calls at the same epoch return the same object; the snapshot stays
        valid for as long as the caller references it, independent of lease
        retention (use :meth:`pin` when you need the lease lifecycle).
        """
        with self._mutate_lock:
            return self._current_state()
