"""A mutable attributed graph that applies delta batches in place.

:class:`DynamicAttributedGraph` extends
:class:`~repro.events.attributed_graph.AttributedGraph` with
:meth:`~DynamicAttributedGraph.apply`: a delta batch is netted out (cancelling
add/remove pairs collapse, no-ops are dropped), the CSR is patched row-wise
through :meth:`~repro.graph.csr.CSRGraph.apply_edge_deltas` instead of being
rebuilt from scratch, the event layer is updated through its versioned
occurrence API, and the lazily built vicinity index is *rebased* — clean
``|V^h_v|`` entries survive, only nodes within ``h - 1`` hops of a touched
endpoint are dropped.  The :class:`AppliedBatch` it returns keeps the
pre-patch CSR alive so the dirty tracker can run old-graph traversals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.events.attributed_graph import AttributedGraph
from repro.exceptions import EdgeError, EventError, NodeNotFoundError
from repro.graph.csr import CSRGraph
from repro.graph.traversal import dirty_vicinity
from repro.streaming.delta import EDGE_ADD, EVENT_ATTACH, BatchLike, DeltaBatch


@dataclass(frozen=True)
class AppliedBatch:
    """The effective outcome of one committed delta batch.

    Attributes
    ----------
    batch:
        The batch as submitted (possibly containing no-ops).
    added_edges / removed_edges:
        The *net* structural changes actually applied, as ``(u, v)`` with
        ``u < v``.  A delta adding an edge that already existed, removing an
        absent edge, or cancelling an earlier delta of the batch does not
        appear here.
    attached / detached:
        The effective event-layer changes as ``(event, node)`` pairs.
    old_csr / new_csr:
        The CSR before and after the patch (the same object when the batch
        had no effective structural change).  Keeping the old CSR lets
        :class:`~repro.streaming.dirty.DirtyTracker` bound the impact of
        removals with old-graph traversals.
    structure_version:
        The graph's structure version *after* this batch.
    vicinity_dirty:
        When the vicinity index was rebased during this apply, the
        per-level dirty-node arrays it computed (level ``h`` → nodes within
        ``h - 1`` hops of a touched endpoint).  The dirty tracker reuses a
        matching entry instead of re-running the same endpoint BFS.
    """

    batch: DeltaBatch
    added_edges: Tuple[Tuple[int, int], ...]
    removed_edges: Tuple[Tuple[int, int], ...]
    attached: Tuple[Tuple[str, int], ...]
    detached: Tuple[Tuple[str, int], ...]
    old_csr: CSRGraph
    new_csr: CSRGraph
    structure_version: int
    vicinity_dirty: Optional[Dict[int, np.ndarray]] = None

    @property
    def structure_changed(self) -> bool:
        """Whether the batch changed any adjacency."""
        return bool(self.added_edges or self.removed_edges)

    @property
    def events_changed(self) -> bool:
        """Whether the batch changed any event occurrence."""
        return bool(self.attached or self.detached)

    @property
    def changed(self) -> bool:
        """Whether the batch had any effect at all."""
        return self.structure_changed or self.events_changed

    def touched_endpoints(self) -> np.ndarray:
        """Distinct endpoints of every effectively added or removed edge."""
        endpoints: Set[int] = set()
        for u, v in self.added_edges:
            endpoints.add(u)
            endpoints.add(v)
        for u, v in self.removed_edges:
            endpoints.add(u)
            endpoints.add(v)
        return np.array(sorted(endpoints), dtype=np.int64)


@dataclass(frozen=True)
class EmptyAppliedBatch(AppliedBatch):
    """Marker subclass for the no-delta commit (first rank, forced re-rank)."""


class DynamicAttributedGraph(AttributedGraph):
    """An attributed graph whose structure and events evolve via delta batches.

    Construction is identical to :class:`AttributedGraph`.  Two additions:

    * :meth:`apply` commits a :class:`~repro.streaming.delta.DeltaBatch`
      (or any iterable of deltas) in place, returning an
      :class:`AppliedBatch` describing the net effect;
    * :attr:`structure_version` counts effective structural commits, giving
      downstream caches (sample memos, density-column caches, BFS engines) a
      cheap staleness test — the streaming analogue of
      :attr:`EventLayer.version <repro.events.event_set.EventLayer.version>`.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.structure_version = 0

    def empty_batch(self) -> AppliedBatch:
        """An :class:`AppliedBatch` representing "nothing changed"."""
        return EmptyAppliedBatch(
            batch=DeltaBatch(deltas=()),
            added_edges=(), removed_edges=(), attached=(), detached=(),
            old_csr=self.csr, new_csr=self.csr,
            structure_version=self.structure_version,
        )

    def apply(self, batch: BatchLike) -> AppliedBatch:
        """Commit one delta batch in place and report its net effect.

        Structural deltas are replayed in order against a per-node overlay to
        net out cancelling operations, then applied as one row-wise CSR
        patch.  Event deltas go through the versioned
        :class:`~repro.events.event_set.EventLayer` API (idempotent — attach
        of an existing occurrence or detach of an absent one is a recorded
        no-op).  Out-of-range nodes raise
        :class:`~repro.exceptions.NodeNotFoundError` and self-loops
        :class:`~repro.exceptions.EdgeError`; nothing is applied until the
        whole batch validates, so a failed apply leaves the graph untouched.
        """
        batch = DeltaBatch.coerce(batch)
        old_csr = self.csr

        overlay: Dict[int, Set[int]] = {}

        def neighbours(node: int) -> Set[int]:
            cached = overlay.get(node)
            if cached is None:
                cached = set(int(x) for x in old_csr.neighbors(node))
                overlay[node] = cached
            return cached

        added: Set[Tuple[int, int]] = set()
        removed: Set[Tuple[int, int]] = set()
        for delta in batch.edge_deltas():
            u, v = delta.u, delta.v
            if not (0 <= u < old_csr.num_nodes):
                raise NodeNotFoundError(u)
            if not (0 <= v < old_csr.num_nodes):
                raise NodeNotFoundError(v)
            if u == v:
                raise EdgeError(f"self-loop ({u}, {v}) is not allowed")
            edge = (u, v)
            if delta.op == EDGE_ADD:
                if v in neighbours(u):
                    continue
                neighbours(u).add(v)
                neighbours(v).add(u)
                if edge in removed:
                    removed.discard(edge)
                else:
                    added.add(edge)
            else:
                if v not in neighbours(u):
                    continue
                neighbours(u).discard(v)
                neighbours(v).discard(u)
                if edge in added:
                    added.discard(edge)
                else:
                    removed.add(edge)

        # Validate event deltas before mutating anything (the same checks
        # EventLayer.add_occurrence would raise mid-apply — surfacing them
        # here keeps the whole batch atomic).
        for delta in batch.event_deltas():
            if not isinstance(delta.event, str) or not delta.event:
                raise EventError(
                    f"event name must be a non-empty string, got {delta.event!r}"
                )
            if not (0 <= delta.node < old_csr.num_nodes):
                raise NodeNotFoundError(delta.node)

        new_csr = old_csr
        vicinity_dirty: Optional[Dict[int, np.ndarray]] = None
        if added or removed:
            # The overlay already holds every touched node's final neighbour
            # set, so the CSR patch is a pure row splice — no per-row set
            # algebra on the CSR side.
            touched: Set[int] = set()
            for u, v in added:
                touched.add(u)
                touched.add(v)
            for u, v in removed:
                touched.add(u)
                touched.add(v)
            new_csr = old_csr.replace_rows(
                {node: sorted(overlay[node]) for node in touched}
            )
            vicinity_dirty = self._rebase_vicinity(old_csr, new_csr, added, removed)
            self.csr = new_csr
            self.structure_version += 1

        attached: List[Tuple[str, int]] = []
        detached: List[Tuple[str, int]] = []
        for delta in batch.event_deltas():
            if delta.op == EVENT_ATTACH:
                if self.events.add_occurrence(delta.event, delta.node):
                    attached.append((delta.event, delta.node))
            else:
                if self.events.remove_occurrence(delta.event, delta.node):
                    detached.append((delta.event, delta.node))

        return AppliedBatch(
            batch=batch,
            added_edges=tuple(sorted(added)),
            removed_edges=tuple(sorted(removed)),
            attached=tuple(attached),
            detached=tuple(detached),
            old_csr=old_csr,
            new_csr=new_csr,
            structure_version=self.structure_version,
            vicinity_dirty=vicinity_dirty,
        )

    def _rebase_vicinity(
        self,
        old_csr: CSRGraph,
        new_csr: CSRGraph,
        added: Set[Tuple[int, int]],
        removed: Set[Tuple[int, int]],
    ) -> Optional[Dict[int, np.ndarray]]:
        """Carry clean vicinity sizes across a structural patch.

        Returns the per-level dirty-node arrays when an index was live (so
        the applied batch can hand them to the dirty tracker), ``None``
        otherwise.
        """
        index = self._vicinity_index
        if index is None:
            return None
        endpoints: Set[int] = set()
        for u, v in added | removed:
            endpoints.add(u)
            endpoints.add(v)
        dirty = {
            level: dirty_vicinity(old_csr, new_csr, sorted(endpoints), level - 1)
            for level in index.levels
        }
        self._vicinity_index = index.rebase(new_csr, dirty)
        return dirty

    def snapshot(self) -> AttributedGraph:
        """A *static* deep-enough copy of the current state.

        The returned :class:`AttributedGraph` shares the immutable CSR but
        owns a copied event layer, so ranking it with a fresh
        :class:`~repro.core.batch.BatchTescEngine` gives the from-scratch
        baseline the streaming equivalence tests compare against.
        """
        return AttributedGraph(self.csr, self.events.copy(), labels=self.labels)
