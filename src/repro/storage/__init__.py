"""Crash-consistent on-disk state for the correlation service.

The storage tier bounds recovery time: instead of replaying the whole
write-ahead log on every boot, the service periodically serialises its full
state — CSR arrays, event occurrences, vicinity-index columns, the epoch and
``(structure_version, events_version)`` pair — into an atomically-committed,
CRC-checksummed checkpoint (:mod:`repro.storage.checkpoint`), then truncates
the WAL prefix the checkpoint covers.  Cold start loads the newest *valid*
checkpoint and replays only the WAL tail past it
(:mod:`repro.storage.recovery`), degrading gracefully through older
checkpoints down to full replay when checkpoints are corrupt or missing.
"""

from repro.storage.checkpoint import (
    CheckpointCorruptError,
    CheckpointInfo,
    CheckpointStore,
    LoadedCheckpoint,
    digest_string,
)
from repro.storage.recovery import RecoveryReport, recover

__all__ = [
    "CheckpointCorruptError",
    "CheckpointInfo",
    "CheckpointStore",
    "LoadedCheckpoint",
    "RecoveryReport",
    "digest_string",
    "recover",
]
