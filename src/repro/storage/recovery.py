"""Bounded cold-start recovery: newest valid checkpoint + WAL tail.

:func:`recover` is the single boot entry point for ``tesc serve --store``.
The decision ladder, in order:

1. the newest checkpoint that validates *and* matches the serving config
   digest and graph size → restore it, replay only the WAL batches past its
   coverage (path ``"checkpoint"``);
2. if newer checkpoints were rejected (quarantined as corrupt, or skipped
   as belonging to another config) but an older one is valid → same, path
   ``"fallback"``;
3. no usable checkpoint → replay the whole WAL (path ``"full_replay"``);
4. nothing on disk at all → start empty (path ``"fresh"``).

A fallback candidate must also *bridge* the WAL: a checkpoint whose
coverage ends before the log's compaction point cannot replay the batches
between the two (they were compacted away), so it is rejected rather than
restored with a silent hole in history — boot then drops to the loud
lost-history variant of full replay below.

The ladder never refuses to start when the WAL alone suffices — corruption
costs recovery *time*, not availability.  Tail selection speaks in *total*
batch indices (compacted-away batches included), so it is correct in the
crash window after a checkpoint renames but before the covered WAL prefix
is compacted.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.events.event_set import EventLayer
from repro.graph.csr import CSRGraph
from repro.storage.checkpoint import CheckpointStore, LoadedCheckpoint
from repro.streaming.delta import WriteAheadLog
from repro.streaming.dynamic_graph import DynamicAttributedGraph

logger = logging.getLogger(__name__)

#: The recovery paths a boot can take, in preference order.
PATH_CHECKPOINT = "checkpoint"
PATH_FALLBACK = "fallback"
PATH_FULL_REPLAY = "full_replay"
PATH_FRESH = "fresh"


@dataclass(frozen=True)
class RecoveryReport:
    """What one cold start actually did."""

    path: str
    checkpoint: Optional[str]
    rejected: Tuple[Tuple[str, str], ...]
    replayed_batches: int
    restored_epoch: int

    def describe(self) -> dict:
        """JSON-friendly summary for ``tesc status`` / the serve banner."""
        return {
            "path": self.path,
            "checkpoint": self.checkpoint,
            "rejected": [list(item) for item in self.rejected],
            "replayed_batches": self.replayed_batches,
            "restored_epoch": self.restored_epoch,
        }


def _rebuild_events(num_nodes: int, loaded: LoadedCheckpoint) -> EventLayer:
    layer = EventLayer.from_mapping(num_nodes, loaded.events)
    # Events whose occurrence set was emptied by detach deltas stay
    # registered (the layer's documented contract); from_mapping skips
    # them, so register the names explicitly.
    for event in loaded.events:
        layer._event_to_nodes.setdefault(event, set())
    layer.restore_version(loaded.info.events_version)
    return layer


def _restore(graph: DynamicAttributedGraph, loaded: LoadedCheckpoint) -> None:
    csr = CSRGraph(loaded.indptr, loaded.indices, epoch=loaded.info.epoch)
    events = _rebuild_events(csr.num_nodes, loaded)
    graph.restore(
        csr,
        events,
        epoch=loaded.info.epoch,
        structure_version=loaded.info.structure_version,
    )
    if loaded.labels is not None:
        graph.labels = list(loaded.labels)
    if loaded.vicinity_sizes:
        index = graph.vicinity_index(levels=sorted(loaded.vicinity_sizes))
        for level, column in loaded.vicinity_sizes.items():
            index.load_sizes(level, column)


def recover(
    graph: DynamicAttributedGraph,
    wal: WriteAheadLog,
    store: Optional[CheckpointStore] = None,
    config_digest: Optional[str] = None,
) -> RecoveryReport:
    """Restore ``graph`` from the best available durable state.

    ``graph`` must be the freshly constructed base graph (the same edge
    list / event file the WAL was recorded against); on return it holds the
    recovered state.  Returns the :class:`RecoveryReport` saying which path
    was taken, what was rejected on the way down the ladder, and how many
    WAL batches were replayed.
    """
    loaded = None
    rejections: Tuple[Tuple[str, str], ...] = ()
    if store is not None:
        loaded, rejected = store.load_newest_valid(
            config_digest=config_digest,
            num_nodes=graph.num_nodes,
            min_wal_batches=wal.compacted_batches,
        )
        rejections = tuple(rejected)

    covered = 0
    checkpoint_name = None
    if loaded is not None:
        _restore(graph, loaded)
        covered = loaded.info.wal_batches
        checkpoint_name = loaded.info.name
        logger.info(
            "restored checkpoint %s (epoch %d, covers %d WAL batches)",
            checkpoint_name, loaded.info.epoch, covered,
        )
    elif wal.compacted_batches > 0:
        # The WAL's prefix was compacted away on the promise a checkpoint
        # held it, and no *bridging* checkpoint survived (any whose coverage
        # predates the compaction point was rejected above) — the tail alone
        # cannot reconstruct full state.  Keep the never-refuse-to-start
        # contract but say loudly that history was lost.
        logger.error(
            "no valid checkpoint but WAL %s was compacted past batch %d; "
            "replaying the surviving tail only",
            wal.path, wal.compacted_batches,
        )

    replayed = 0
    for index, batch in enumerate(wal.batches):
        total_index = wal.compacted_batches + index + 1
        if total_index > covered:
            graph.apply(batch)
            replayed += 1

    if loaded is not None:
        path = PATH_FALLBACK if rejections else PATH_CHECKPOINT
    elif replayed:
        path = PATH_FULL_REPLAY
    else:
        path = PATH_FRESH
    return RecoveryReport(
        path=path,
        checkpoint=checkpoint_name,
        rejected=rejections,
        replayed_batches=replayed,
        restored_epoch=graph.epoch,
    )
