"""Atomically-written, CRC-checksummed checkpoints of engine state.

A checkpoint is a directory under the store root::

    store/
        ckpt-000000000042-0003/
            MANIFEST            # one CRC32-prefixed JSON line
            indptr.bin          # raw little-endian int64 CSR row pointers
            indices.bin         # raw int64 CSR adjacency
            event_nodes.bin     # all events' sorted node ids, concatenated
            event_offsets.bin   # int64 prefix offsets into event_nodes
            vicinity_l2.bin     # one |V^h_v| column per indexed level
        tmp-ckpt-...            # half-written checkpoint (ignored, cleaned)
        quarantine/             # corrupt checkpoints moved aside with REASON

The directory name encodes ``(epoch, sequence)`` so lexicographic order is
recovery order.  Commit is write-to-temp + fsync every file + fsync the temp
directory + atomic ``os.rename`` + fsync the store root: a crash at any
point leaves either no new checkpoint or a complete one, never a torn one.
The manifest records every segment's dtype, shape, byte length, and CRC32,
plus the WAL coverage (``wal_batches`` — the *total* batch count, stable
across compaction — and the byte offset) and the config digest, so the
loader can reject anything inconsistent before handing state to the engine.

Every fsync runs the :data:`repro.service.faults.CHECKPOINT_FSYNC` seam
first, so chaos tests can fail a checkpoint at any phase; on error the temp
directory is discarded and the previous checkpoint stays authoritative.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import re
import shutil
import zlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ReproError

logger = logging.getLogger(__name__)

#: On-disk format version; bumped on any incompatible layout change.
FORMAT_VERSION = 1

MANIFEST_NAME = "MANIFEST"
QUARANTINE_DIR = "quarantine"
_TMP_PREFIX = "tmp-"
_NAME_RE = re.compile(r"^ckpt-(\d{12})-(\d{4})$")


class CheckpointCorruptError(ReproError):
    """A checkpoint failed validation (bad CRC, missing segment, ...)."""


def digest_string(obj: object) -> str:
    """A short stable digest of any repr-able config object.

    The engine's config-digest tuple goes through here so the manifest can
    carry a compact string; two configs match iff their digests match.
    """
    return hashlib.sha256(repr(obj).encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class CheckpointInfo:
    """Manifest summary of one checkpoint."""

    name: str
    path: str
    epoch: int
    structure_version: int
    events_version: int
    config_digest: str
    wal_batches: int
    wal_offset: int
    num_nodes: int
    num_edges: int
    nbytes: int


@dataclass(frozen=True)
class LoadedCheckpoint:
    """A fully validated checkpoint's deserialised state."""

    info: CheckpointInfo
    indptr: np.ndarray
    indices: np.ndarray
    events: Dict[str, List[int]]
    labels: Optional[List[str]]
    vicinity_sizes: Dict[int, np.ndarray]


def _frame(record: dict) -> bytes:
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    return b"%08x %s\n" % (zlib.crc32(payload), payload)


def _unframe(line: bytes) -> Optional[dict]:
    if len(line) < 10 or line[8:9] != b" ":
        return None
    payload = line[9:]
    try:
        if int(line[:8], 16) != zlib.crc32(payload):
            return None
        record = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    return record if isinstance(record, dict) else None


class CheckpointStore:
    """Directory of atomically-committed engine-state checkpoints.

    Parameters
    ----------
    root:
        The store directory (created if missing).
    retain:
        How many valid checkpoints :meth:`prune` keeps (newest first).
    fsync:
        Disable to speed tests up; production boots must keep it on or the
        atomic-rename crash guarantee is void.
    """

    def __init__(self, root: str, retain: int = 2, fsync: bool = True) -> None:
        self.root = os.fspath(root)
        self.retain = max(1, int(retain))
        self.fsync_enabled = bool(fsync)
        os.makedirs(self.root, exist_ok=True)
        os.makedirs(os.path.join(self.root, QUARANTINE_DIR), exist_ok=True)
        self._clean_temp()

    # -- write side ----------------------------------------------------------

    def write(
        self,
        state: Mapping[str, object],
        *,
        config_digest: str,
        wal_batches: int,
        wal_offset: int,
        vicinity_sizes: Optional[Mapping[int, np.ndarray]] = None,
    ) -> CheckpointInfo:
        """Atomically commit one checkpoint of ``state``.

        ``state`` is a :meth:`~repro.streaming.snapshots.GraphSnapshot.
        checkpoint_state` mapping; ``wal_batches`` is the WAL's *total*
        committed batch count at the pinned epoch and ``wal_offset`` the
        matching byte boundary (used for the post-checkpoint compaction
        call).  Raises ``OSError`` (with the temp directory discarded) when
        any write or fsync fails — the previous checkpoint stays newest.
        """
        epoch = int(state["epoch"])
        name = f"ckpt-{epoch:012d}-{self._next_seq(epoch):04d}"
        final = os.path.join(self.root, name)
        temp = os.path.join(self.root, _TMP_PREFIX + name)
        if os.path.exists(temp):
            shutil.rmtree(temp)
        os.makedirs(temp)

        indptr = np.ascontiguousarray(state["indptr"], dtype=np.int64)
        indices = np.ascontiguousarray(state["indices"], dtype=np.int64)
        events: Mapping[str, Sequence[int]] = state["events"]  # type: ignore[assignment]
        event_names = sorted(events)
        event_offsets = np.zeros(len(event_names) + 1, dtype=np.int64)
        chunks = []
        for index, event in enumerate(event_names):
            nodes = np.asarray(list(events[event]), dtype=np.int64)
            event_offsets[index + 1] = event_offsets[index] + nodes.size
            chunks.append(nodes)
        event_nodes = (
            np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)
        )

        arrays: Dict[str, np.ndarray] = {
            "indptr": indptr,
            "indices": indices,
            "event_nodes": event_nodes,
            "event_offsets": event_offsets,
        }
        levels: List[int] = []
        for level, column in sorted((vicinity_sizes or {}).items()):
            levels.append(int(level))
            arrays[f"vicinity_l{int(level)}"] = np.ascontiguousarray(
                column, dtype=np.int64
            )

        try:
            segments: Dict[str, dict] = {}
            total = 0
            for seg_name, array in arrays.items():
                raw = array.tobytes()
                seg_file = seg_name + ".bin"
                self._write_file(os.path.join(temp, seg_file), raw, name)
                segments[seg_name] = {
                    "file": seg_file,
                    "dtype": str(array.dtype),
                    "shape": list(array.shape),
                    "nbytes": len(raw),
                    "crc32": zlib.crc32(raw),
                }
                total += len(raw)
            labels = state.get("labels")
            manifest = {
                "format": FORMAT_VERSION,
                "epoch": epoch,
                "structure_version": int(state["structure_version"]),
                "events_version": int(state["events_version"]),
                "config_digest": str(config_digest),
                "wal_batches": int(wal_batches),
                "wal_offset": int(wal_offset),
                "num_nodes": int(indptr.size - 1),
                "num_edges": int(indices.size // 2),
                "event_names": event_names,
                "labels": list(labels) if labels is not None else None,
                "vicinity_levels": levels,
                "segments": segments,
            }
            self._write_file(
                os.path.join(temp, MANIFEST_NAME), _frame(manifest), name
            )
            self._fsync_dir(temp, name)
            os.rename(temp, final)
            self._fsync_dir(self.root, name)
        except BaseException:
            shutil.rmtree(temp, ignore_errors=True)
            raise
        return CheckpointInfo(
            name=name,
            path=final,
            epoch=epoch,
            structure_version=int(state["structure_version"]),
            events_version=int(state["events_version"]),
            config_digest=str(config_digest),
            wal_batches=int(wal_batches),
            wal_offset=int(wal_offset),
            num_nodes=int(indptr.size - 1),
            num_edges=int(indices.size // 2),
            nbytes=total,
        )

    def _write_file(self, path: str, data: bytes, checkpoint: str) -> None:
        with open(path, "wb") as handle:
            handle.write(data)
            handle.flush()
            self._fsync(handle.fileno(), path, checkpoint)

    def _fsync(self, fd: int, path: str, checkpoint: str) -> None:
        # Lazy import: repro.storage must stay importable without pulling
        # the whole service package in at module load.
        from repro.service import faults

        rule = faults.inject(
            faults.CHECKPOINT_FSYNC, path=path, checkpoint=checkpoint
        )
        if rule is not None and rule.action == "error":
            raise OSError(rule.message)
        if self.fsync_enabled:
            os.fsync(fd)

    def _fsync_dir(self, path: str, checkpoint: str) -> None:
        fd = os.open(path, os.O_RDONLY)
        try:
            self._fsync(fd, path, checkpoint)
        finally:
            os.close(fd)

    def _next_seq(self, epoch: int) -> int:
        highest = -1
        for name in self.list_checkpoints():
            match = _NAME_RE.match(name)
            if match and int(match.group(1)) == epoch:
                highest = max(highest, int(match.group(2)))
        return highest + 1

    def _clean_temp(self) -> None:
        """Remove half-written temp directories from a crashed writer."""
        for entry in os.listdir(self.root):
            if entry.startswith(_TMP_PREFIX):
                shutil.rmtree(os.path.join(self.root, entry), ignore_errors=True)

    # -- read side -----------------------------------------------------------

    def list_checkpoints(self) -> List[str]:
        """Committed checkpoint names, newest first."""
        names = [
            entry
            for entry in os.listdir(self.root)
            if _NAME_RE.match(entry)
            and os.path.isdir(os.path.join(self.root, entry))
        ]
        return sorted(names, reverse=True)

    def load(self, name: str) -> LoadedCheckpoint:
        """Validate and deserialise one checkpoint.

        Raises :class:`CheckpointCorruptError` naming the failure (manifest
        CRC, format version, missing segment, segment CRC/size, or an
        internally inconsistent version pair / array geometry).
        """
        path = os.path.join(self.root, name)
        manifest_path = os.path.join(path, MANIFEST_NAME)
        try:
            with open(manifest_path, "rb") as handle:
                manifest = _unframe(handle.read().rstrip(b"\n"))
        except OSError as error:
            raise CheckpointCorruptError(f"{name}: manifest unreadable: {error}")
        if manifest is None:
            raise CheckpointCorruptError(f"{name}: manifest CRC/parse failure")
        if manifest.get("format") != FORMAT_VERSION:
            raise CheckpointCorruptError(
                f"{name}: unsupported format {manifest.get('format')!r}"
            )

        arrays: Dict[str, np.ndarray] = {}
        segments = manifest.get("segments")
        if not isinstance(segments, dict):
            raise CheckpointCorruptError(f"{name}: manifest has no segment table")
        required = {"indptr", "indices", "event_nodes", "event_offsets"}
        required |= {
            f"vicinity_l{int(level)}"
            for level in manifest.get("vicinity_levels", [])
        }
        missing = required - set(segments)
        if missing:
            raise CheckpointCorruptError(
                f"{name}: manifest missing segments {sorted(missing)}"
            )
        for seg_name in sorted(required):
            meta = segments[seg_name]
            seg_path = os.path.join(path, meta["file"])
            try:
                with open(seg_path, "rb") as handle:
                    raw = handle.read()
            except OSError:
                raise CheckpointCorruptError(
                    f"{name}: segment {seg_name!r} missing"
                )
            if len(raw) != int(meta["nbytes"]):
                raise CheckpointCorruptError(
                    f"{name}: segment {seg_name!r} is {len(raw)} bytes, "
                    f"manifest says {meta['nbytes']}"
                )
            if zlib.crc32(raw) != int(meta["crc32"]):
                raise CheckpointCorruptError(
                    f"{name}: segment {seg_name!r} CRC mismatch"
                )
            try:
                array = np.frombuffer(raw, dtype=np.dtype(meta["dtype"]))
                array = array.reshape(meta["shape"]).copy()
            except (TypeError, ValueError) as error:
                raise CheckpointCorruptError(
                    f"{name}: segment {seg_name!r} undecodable: {error}"
                )
            arrays[seg_name] = array

        info = CheckpointInfo(
            name=name,
            path=path,
            epoch=int(manifest["epoch"]),
            structure_version=int(manifest["structure_version"]),
            events_version=int(manifest["events_version"]),
            config_digest=str(manifest["config_digest"]),
            wal_batches=int(manifest["wal_batches"]),
            wal_offset=int(manifest["wal_offset"]),
            num_nodes=int(manifest["num_nodes"]),
            num_edges=int(manifest["num_edges"]),
            nbytes=sum(int(meta["nbytes"]) for meta in segments.values()),
        )

        indptr, indices = arrays["indptr"], arrays["indices"]
        offsets = arrays["event_offsets"]
        event_names = manifest.get("event_names", [])
        # Cross-segment consistency — the "version-pair mismatch" rung of
        # the recovery ladder: every check here means the segments do not
        # describe one coherent state, even though each passed its CRC.
        if indptr.size != info.num_nodes + 1:
            raise CheckpointCorruptError(
                f"{name}: indptr has {indptr.size} entries for "
                f"{info.num_nodes} nodes"
            )
        if indptr.size == 0 or indptr[0] != 0 or indptr[-1] != indices.size:
            raise CheckpointCorruptError(
                f"{name}: indptr does not span indices "
                f"({indptr[-1] if indptr.size else '?'} != {indices.size})"
            )
        if offsets.size != len(event_names) + 1 or (
            offsets.size and offsets[-1] != arrays["event_nodes"].size
        ):
            raise CheckpointCorruptError(
                f"{name}: event offsets inconsistent with event segments"
            )
        for level in manifest.get("vicinity_levels", []):
            column = arrays[f"vicinity_l{int(level)}"]
            if column.size != info.num_nodes:
                raise CheckpointCorruptError(
                    f"{name}: vicinity level {level} column has "
                    f"{column.size} entries for {info.num_nodes} nodes"
                )

        event_nodes = arrays["event_nodes"]
        events = {
            event: event_nodes[offsets[index]:offsets[index + 1]].tolist()
            for index, event in enumerate(event_names)
        }
        vicinity = {
            int(level): arrays[f"vicinity_l{int(level)}"]
            for level in manifest.get("vicinity_levels", [])
        }
        labels = manifest.get("labels")
        return LoadedCheckpoint(
            info=info,
            indptr=indptr,
            indices=indices,
            events=events,
            labels=list(labels) if labels is not None else None,
            vicinity_sizes=vicinity,
        )

    def load_newest_valid(
        self,
        config_digest: Optional[str] = None,
        num_nodes: Optional[int] = None,
        min_wal_batches: Optional[int] = None,
    ) -> Tuple[Optional[LoadedCheckpoint], List[Tuple[str, str]]]:
        """Walk checkpoints newest-first and return the first valid one.

        Corrupt checkpoints are quarantined with their reason; checkpoints
        that are internally valid but belong to a different config or graph
        size are *skipped without quarantine* (they are sound data for some
        other deployment).  ``min_wal_batches`` — the WAL's compacted-away
        batch count — rejects (without quarantine) any checkpoint whose
        coverage ends before it: the batches between its coverage and the
        compaction point no longer exist, so restoring it plus the surviving
        tail would silently diverge from true state.  Returns
        ``(loaded_or_None, rejections)`` where rejections is
        ``[(name, reason), ...]`` in the order encountered.
        """
        rejections: List[Tuple[str, str]] = []
        for name in self.list_checkpoints():
            try:
                loaded = self.load(name)
            except CheckpointCorruptError as error:
                reason = str(error)
                self.quarantine(name, reason)
                rejections.append((name, reason))
                continue
            info = loaded.info
            if config_digest is not None and info.config_digest != config_digest:
                rejections.append(
                    (name, f"config digest {info.config_digest} does not "
                           f"match serving config {config_digest}")
                )
                continue
            if num_nodes is not None and info.num_nodes != num_nodes:
                rejections.append(
                    (name, f"covers {info.num_nodes} nodes, serving graph "
                           f"has {num_nodes}")
                )
                continue
            if min_wal_batches is not None and info.wal_batches < min_wal_batches:
                rejections.append(
                    (name, f"covers only {info.wal_batches} WAL batches but "
                           f"the log was compacted past batch "
                           f"{min_wal_batches}; the surviving tail cannot "
                           "bridge the gap")
                )
                continue
            return loaded, rejections
        return None, rejections

    def retained_coverage(self) -> Optional[int]:
        """The largest WAL coverage every retained checkpoint can bridge.

        The minimum ``wal_batches`` across the manifests of all listed
        checkpoints — the safe compaction bound: truncating the WAL past it
        would leave some retained checkpoint unable to reach the surviving
        tail, voiding it as a recovery fallback.  Checkpoints whose manifest
        does not parse are ignored (they can never restore, so they
        constrain nothing); returns ``None`` when no readable checkpoint
        exists.
        """
        floor: Optional[int] = None
        for name in self.list_checkpoints():
            try:
                path = os.path.join(self.root, name, MANIFEST_NAME)
                with open(path, "rb") as handle:
                    manifest = _unframe(handle.read().rstrip(b"\n"))
            except OSError:
                continue
            if manifest is None:
                continue
            try:
                batches = int(manifest["wal_batches"])
            except (KeyError, TypeError, ValueError):
                continue
            floor = batches if floor is None else min(floor, batches)
        return floor

    def quarantine(self, name: str, reason: str) -> None:
        """Move a corrupt checkpoint aside, recording why."""
        source = os.path.join(self.root, name)
        target = os.path.join(self.root, QUARANTINE_DIR, name)
        logger.warning("quarantining checkpoint %s: %s", name, reason)
        if os.path.exists(target):
            shutil.rmtree(target)
        try:
            os.rename(source, target)
            with open(os.path.join(target, "REASON"), "w",
                      encoding="utf-8") as handle:
                handle.write(reason + "\n")
        except OSError:
            shutil.rmtree(source, ignore_errors=True)

    def prune(self, retain: Optional[int] = None) -> List[str]:
        """Delete all but the newest ``retain`` checkpoints; returns names."""
        keep = self.retain if retain is None else max(1, int(retain))
        removed = []
        for name in self.list_checkpoints()[keep:]:
            shutil.rmtree(os.path.join(self.root, name), ignore_errors=True)
            removed.append(name)
        return removed

    def __repr__(self) -> str:
        return (
            f"CheckpointStore(root={self.root!r}, "
            f"checkpoints={len(self.list_checkpoints())})"
        )
