"""Lightweight timing helpers used by experiments and benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


def format_seconds(seconds: float) -> str:
    """Render a duration in a human-friendly unit (ns/us/ms/s)."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f}ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 120.0:
        return f"{seconds:.2f}s"
    return f"{seconds / 60.0:.1f}min"


@dataclass
class Timer:
    """A context-manager stopwatch that can accumulate named laps.

    Examples
    --------
    >>> with Timer() as timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    laps: Dict[str, List[float]] = field(default_factory=dict)
    _start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    def start(self) -> None:
        """Start (or restart) the stopwatch."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the stopwatch and add the interval to :attr:`elapsed`."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        interval = time.perf_counter() - self._start
        self.elapsed += interval
        self._start = None
        return interval

    def lap(self, name: str) -> "_Lap":
        """Return a context manager recording a named lap."""
        return _Lap(self, name)

    def record(self, name: str, interval: float) -> None:
        """Record an externally measured ``interval`` under ``name``."""
        self.laps.setdefault(name, []).append(interval)

    def total(self, name: str) -> float:
        """Total time accumulated in laps called ``name``."""
        return float(sum(self.laps.get(name, [])))

    def summary(self) -> Dict[str, float]:
        """Per-lap-name totals, plus overall elapsed time under ``"elapsed"``.

        A lap literally named ``"elapsed"`` would collide with (and used to
        be silently clobbered by) the overall key; that is now an error —
        rename the lap.
        """
        if "elapsed" in self.laps:
            raise ValueError(
                'a lap named "elapsed" collides with Timer.summary()\'s '
                "overall-elapsed key; rename the lap"
            )
        result = {name: self.total(name) for name in self.laps}
        result["elapsed"] = self.elapsed
        return result


class _Lap:
    """Context manager created by :meth:`Timer.lap`."""

    def __init__(self, timer: Timer, name: str) -> None:
        self._timer = timer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Lap":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        self._timer.record(self._name, time.perf_counter() - self._start)
