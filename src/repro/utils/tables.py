"""Plain-text table rendering for experiment reports.

The experiment harness prints the same rows the paper's tables report; this
module renders them as aligned monospace tables so benchmark output and
``EXPERIMENTS.md`` stay readable without extra dependencies.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


class TextTable:
    """An aligned plain-text table.

    Examples
    --------
    >>> table = TextTable(["pair", "z"])
    >>> table.add_row(["a vs b", 3.14159])
    >>> print(table.render())  # doctest: +NORMALIZE_WHITESPACE
    pair   | z
    -------+-----
    a vs b | 3.14
    """

    def __init__(self, columns: Sequence[str], float_format: str = "{:.2f}") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns: List[str] = [str(c) for c in columns]
        self.float_format = float_format
        self._rows: List[List[str]] = []

    def add_row(self, values: Iterable[Any]) -> None:
        """Append a row; floats are formatted with :attr:`float_format`."""
        row = [self._format(value) for value in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(self.columns)} columns"
            )
        self._rows.append(row)

    def _format(self, value: Any) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return self.float_format.format(value)
        return str(value)

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> List[List[str]]:
        """The formatted rows added so far (copies, not live references)."""
        return [list(row) for row in self._rows]

    def render(self, markdown: bool = False) -> str:
        """Render the table; ``markdown=True`` produces a GitHub-style table."""
        widths = [len(col) for col in self.columns]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            padded = [cell.ljust(widths[i]) for i, cell in enumerate(cells)]
            return ("| " if markdown else "") + " | ".join(padded) + (" |" if markdown else "")

        lines = [fmt_row(self.columns)]
        if markdown:
            lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
        else:
            lines.append("-+-".join("-" * w for w in widths))
        for row in self._rows:
            lines.append(fmt_row(row))
        return "\n".join(line.rstrip() for line in lines)


def render_mapping(mapping: dict, title: Optional[str] = None) -> str:
    """Render a flat key/value mapping as an aligned two-column block."""
    table = TextTable(["key", "value"])
    for key, value in mapping.items():
        table.add_row([key, value])
    body = table.render()
    if title:
        return f"{title}\n{body}"
    return body
