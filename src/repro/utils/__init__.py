"""Shared utilities: RNG handling, timing, validation, logging, tables."""

from repro.utils.rng import RandomState, ensure_rng, spawn_rngs
from repro.utils.timing import Timer, format_seconds
from repro.utils.validation import (
    check_fraction,
    check_non_negative_int,
    check_positive_int,
    check_vicinity_level,
)
from repro.utils.tables import TextTable

__all__ = [
    "RandomState",
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "format_seconds",
    "check_fraction",
    "check_non_negative_int",
    "check_positive_int",
    "check_vicinity_level",
    "TextTable",
]
