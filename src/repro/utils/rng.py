"""Random-number-generator plumbing.

All stochastic components in the library accept either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy), and
normalise it through :func:`ensure_rng`.  Experiments spawn independent child
generators with :func:`spawn_rngs` so that sub-tasks are reproducible and
order-independent.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

#: The union of types accepted wherever the library needs randomness.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(random_state: RandomState = None) -> np.random.Generator:
    """Normalise ``random_state`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    random_state:
        ``None`` for fresh OS entropy, an ``int`` seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator which is
        returned unchanged.

    Returns
    -------
    numpy.random.Generator
        A generator ready for use.
    """
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, np.random.SeedSequence):
        return np.random.default_rng(random_state)
    if random_state is None or isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(random_state)
    raise TypeError(
        "random_state must be None, an int, a numpy SeedSequence or a "
        f"numpy Generator, got {type(random_state).__name__}"
    )


def spawn_rngs(random_state: RandomState, count: int) -> List[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    The children are derived through :class:`numpy.random.SeedSequence`
    spawning, so each child stream is independent of the others regardless of
    how many draws each consumer makes.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(random_state, np.random.Generator):
        seeds = random_state.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = (
        random_state
        if isinstance(random_state, np.random.SeedSequence)
        else np.random.SeedSequence(random_state)
    )
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def derive_seed(random_state: RandomState, salt: Optional[int] = None) -> int:
    """Derive a plain integer seed, optionally mixed with ``salt``.

    Useful when an API (e.g. networkx generators) wants an ``int`` seed but
    the caller holds a :class:`numpy.random.Generator`.
    """
    rng = ensure_rng(random_state)
    seed = int(rng.integers(0, 2**31 - 1))
    if salt is not None:
        seed = (seed * 1_000_003 + int(salt)) % (2**31 - 1)
    return seed
