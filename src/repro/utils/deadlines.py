"""Cooperative end-to-end deadlines.

The service server parses a client-supplied relative deadline, converts it
to an absolute :func:`time.monotonic` instant, and runs the request inside
:func:`deadline_scope`.  Long compute loops — the grouped-BFS density pass
and the progressive top-k round loop — call :func:`checkpoint` at natural
boundaries; once the instant passes, the checkpoint raises
:class:`~repro.exceptions.DeadlineExceededError` and the request unwinds
(the server maps it to a retryable 408, leases and caches release via the
normal ``finally`` paths).

The scope is a :class:`~contextvars.ContextVar`, so deadlines are
per-thread (the server handles each connection in its own thread) and cost
one context-variable read when no deadline is set.  Worker processes never
see the deadline — cancellation is cooperative in the coordinating thread
only.  :func:`checkpoint` is late-bound by callers (``deadlines.checkpoint()``)
so the CI fault-seam overhead guard can patch it out to measure its cost.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

from repro.exceptions import DeadlineExceededError

__all__ = ["deadline_scope", "checkpoint", "current_deadline", "remaining"]

_DEADLINE: ContextVar[Optional[float]] = ContextVar("tesc_deadline", default=None)


@contextmanager
def deadline_scope(at: Optional[float]) -> Iterator[None]:
    """Run the body with an absolute monotonic deadline (``None`` = none).

    Nested scopes tighten: the effective deadline is the minimum of the
    enclosing one and ``at``, so an outer request budget can never be
    extended by an inner scope.
    """
    current = _DEADLINE.get()
    if at is None:
        effective = current
    elif current is None:
        effective = at
    else:
        effective = min(current, at)
    token = _DEADLINE.set(effective)
    try:
        yield
    finally:
        _DEADLINE.reset(token)


def current_deadline() -> Optional[float]:
    """The absolute monotonic deadline in effect, or ``None``."""
    return _DEADLINE.get()


def remaining() -> Optional[float]:
    """Seconds left before the deadline (may be negative), or ``None``."""
    at = _DEADLINE.get()
    if at is None:
        return None
    return at - time.monotonic()


def checkpoint() -> None:
    """Raise :class:`DeadlineExceededError` if the deadline has passed."""
    at = _DEADLINE.get()
    if at is not None and time.monotonic() > at:
        raise DeadlineExceededError(
            f"deadline exceeded by {time.monotonic() - at:.3f}s"
        )
