"""Small argument-validation helpers shared across the library."""

from __future__ import annotations

from typing import Any

from repro.exceptions import ConfigurationError


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer strictly greater than zero."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer greater than or equal to zero."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_fraction(value: Any, name: str, *, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` (or ``(0, 1)``)."""
    try:
        fraction = float(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be a number, got {value!r}") from exc
    if inclusive:
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"{name} must be in [0, 1], got {fraction}")
    else:
        if not 0.0 < fraction < 1.0:
            raise ConfigurationError(f"{name} must be in (0, 1), got {fraction}")
    return fraction


def check_vicinity_level(value: Any, name: str = "h") -> int:
    """Validate a vicinity level ``h``.

    The paper focuses on small levels (h = 1, 2, 3) because of the small-world
    property of real networks; we allow any positive level but reject zero and
    negatives, which would make every reference node a 0-tie.
    """
    level = check_positive_int(value, name)
    return level


def check_probability_vector(values: Any, name: str) -> None:
    """Validate that ``values`` forms a probability distribution."""
    import numpy as np

    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ConfigurationError(f"{name} must be a non-empty 1-D array")
    if np.any(array < 0):
        raise ConfigurationError(f"{name} must be non-negative")
    if not np.isclose(array.sum(), 1.0, atol=1e-8):
        raise ConfigurationError(f"{name} must sum to 1, got {array.sum()}")
