"""Logging configuration for the repro library.

The library itself only ever attaches a ``NullHandler`` (library best
practice); applications and the CLI call :func:`configure_logging` to get a
console handler with a consistent format.
"""

from __future__ import annotations

import logging
from typing import Optional

LIBRARY_LOGGER_NAME = "repro"

logging.getLogger(LIBRARY_LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a logger under the library namespace.

    ``get_logger("sampling")`` returns the ``repro.sampling`` logger, while
    ``get_logger()`` returns the library root logger.
    """
    if not name:
        return logging.getLogger(LIBRARY_LOGGER_NAME)
    if name.startswith(LIBRARY_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{LIBRARY_LOGGER_NAME}.{name}")


def configure_logging(level: int = logging.INFO, stream=None) -> logging.Logger:
    """Attach a console handler to the library root logger.

    Calling it twice replaces the previous handler instead of duplicating
    output lines.
    """
    logger = logging.getLogger(LIBRARY_LOGGER_NAME)
    for handler in list(logger.handlers):
        if isinstance(handler, logging.StreamHandler) and not isinstance(
            handler, logging.NullHandler
        ):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
    )
    logger.addHandler(handler)
    logger.setLevel(level)
    return logger


def configure_json_logging(
    name: str, level: int = logging.INFO, stream=None
) -> logging.Logger:
    """Route one sub-logger's records to ``stream`` as bare message lines.

    Used for machine-readable logs whose *message already is* a JSON
    document (the slow-request log): the handler emits ``%(message)s``
    only, so each record lands as exactly one parseable line, and
    ``propagate`` is switched off so the console handler never wraps the
    same document in a human-format prefix.  Calling it twice replaces
    the previous handler.
    """
    logger = get_logger(name)
    for handler in list(logger.handlers):
        if isinstance(handler, logging.StreamHandler):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger
