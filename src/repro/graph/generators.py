"""Random graph generators.

These generators build the synthetic substrates for the paper's three
datasets (DBLP-like, Intrusion-like, Twitter-like) and for the unit tests.
They return the mutable :class:`~repro.graph.adjacency.Graph`; callers that
need traversal speed convert with :meth:`Graph.to_csr`.

All generators take an explicit ``random_state`` and are deterministic for a
given seed.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.graph.adjacency import Graph
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_fraction, check_non_negative_int, check_positive_int


def erdos_renyi_graph(num_nodes: int, edge_probability: float,
                      random_state: RandomState = None) -> Graph:
    """G(n, p) random graph.

    Edges are sampled by drawing the number of edges from the exact binomial
    and then sampling that many distinct node pairs, which is far faster than
    testing all ``n^2`` pairs for the sparse graphs used in experiments.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    edge_probability = check_fraction(edge_probability, "edge_probability")
    rng = ensure_rng(random_state)
    graph = Graph(num_nodes)
    possible = num_nodes * (num_nodes - 1) // 2
    if possible == 0 or edge_probability == 0.0:
        return graph
    target = int(rng.binomial(possible, edge_probability))
    seen = set()
    while len(seen) < target:
        batch = max(16, target - len(seen))
        us = rng.integers(0, num_nodes, size=batch)
        vs = rng.integers(0, num_nodes, size=batch)
        for u, v in zip(us, vs):
            if u == v:
                continue
            key = (min(int(u), int(v)), max(int(u), int(v)))
            if key not in seen:
                seen.add(key)
                if len(seen) == target:
                    break
    graph.add_edges(seen)
    return graph


def barabasi_albert_graph(num_nodes: int, edges_per_node: int,
                          random_state: RandomState = None) -> Graph:
    """Barabási–Albert preferential-attachment graph.

    Produces the heavy-tailed degree distribution and small diameter typical
    of social networks like Twitter; used as the scalability substrate.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    edges_per_node = check_positive_int(edges_per_node, "edges_per_node")
    if edges_per_node >= num_nodes:
        raise ValueError("edges_per_node must be smaller than num_nodes")
    rng = ensure_rng(random_state)
    graph = Graph(num_nodes)
    # Repeated-nodes list implements preferential attachment in O(m) per node.
    repeated: List[int] = []
    targets = list(range(edges_per_node))
    for new_node in range(edges_per_node, num_nodes):
        for target in targets:
            graph.add_edge(new_node, target)
            repeated.append(target)
            repeated.append(new_node)
        if repeated:
            picks = rng.integers(0, len(repeated), size=edges_per_node * 2)
            unique_targets = []
            seen = set()
            for pick in picks:
                candidate = repeated[int(pick)]
                if candidate != new_node + 1 and candidate not in seen:
                    seen.add(candidate)
                    unique_targets.append(candidate)
                if len(unique_targets) == edges_per_node:
                    break
            targets = unique_targets or list(
                rng.choice(new_node + 1, size=min(edges_per_node, new_node + 1), replace=False)
            )
        else:
            targets = list(range(edges_per_node))
    return graph


def ring_lattice_graph(num_nodes: int, neighbors_each_side: int) -> Graph:
    """Regular ring lattice (the Watts–Strogatz starting point)."""
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    neighbors_each_side = check_positive_int(neighbors_each_side, "neighbors_each_side")
    graph = Graph(num_nodes)
    for node in range(num_nodes):
        for offset in range(1, neighbors_each_side + 1):
            graph.add_edge(node, (node + offset) % num_nodes)
    return graph


def watts_strogatz_graph(num_nodes: int, neighbors_each_side: int,
                         rewire_probability: float,
                         random_state: RandomState = None) -> Graph:
    """Watts–Strogatz small-world graph (ring lattice with rewired edges)."""
    rewire_probability = check_fraction(rewire_probability, "rewire_probability")
    rng = ensure_rng(random_state)
    graph = ring_lattice_graph(num_nodes, neighbors_each_side)
    for u, v in list(graph.edges()):
        if rng.random() < rewire_probability:
            candidates = rng.integers(0, num_nodes, size=8)
            for candidate in candidates:
                candidate = int(candidate)
                if candidate != u and not graph.has_edge(u, candidate):
                    graph.remove_edge(u, v)
                    graph.add_edge(u, candidate)
                    break
    return graph


def planted_partition_graph(community_sizes: Sequence[int], p_intra: float,
                            p_inter: float,
                            random_state: RandomState = None) -> Graph:
    """Planted-partition (stochastic block) graph.

    Nodes are split into communities of the given sizes; node pairs inside a
    community are connected with probability ``p_intra`` and pairs across
    communities with probability ``p_inter``.  This is the substrate for the
    DBLP-like dataset: TESC's motivating examples (mother communities, Apple
    fans) are exactly community-localised events.
    """
    if not community_sizes:
        raise ValueError("at least one community is required")
    for size in community_sizes:
        check_positive_int(size, "community size")
    p_intra = check_fraction(p_intra, "p_intra")
    p_inter = check_fraction(p_inter, "p_inter")
    rng = ensure_rng(random_state)

    total = int(sum(community_sizes))
    graph = Graph(total)
    boundaries = np.cumsum([0] + list(community_sizes))

    # Intra-community edges: dense-ish blocks, sample pairwise per community.
    for index, size in enumerate(community_sizes):
        start = int(boundaries[index])
        members = np.arange(start, start + size)
        if size > 1 and p_intra > 0:
            expected = int(rng.binomial(size * (size - 1) // 2, p_intra))
            seen = set()
            guard = 0
            while len(seen) < expected and guard < 20 * expected + 100:
                guard += 1
                u, v = rng.integers(0, size, size=2)
                if u == v:
                    continue
                pair = (int(members[min(u, v)]), int(members[max(u, v)]))
                seen.add(pair)
            graph.add_edges(seen)

    # Inter-community edges: sparse, sample pairs of communities.
    if p_inter > 0:
        inter_pairs = total * (total - 1) // 2 - sum(
            s * (s - 1) // 2 for s in community_sizes
        )
        expected = int(rng.binomial(max(inter_pairs, 0), p_inter))
        added = 0
        guard = 0
        while added < expected and guard < 50 * expected + 100:
            guard += 1
            u = int(rng.integers(0, total))
            v = int(rng.integers(0, total))
            if u == v:
                continue
            cu = int(np.searchsorted(boundaries, u, side="right")) - 1
            cv = int(np.searchsorted(boundaries, v, side="right")) - 1
            if cu == cv:
                continue
            if graph.add_edge(u, v):
                added += 1
    return graph


def community_ring_graph(num_communities: int, community_size: int,
                         intra_degree: float, inter_edges_per_link: int,
                         neighbors_each_side: int = 1,
                         random_state: RandomState = None) -> Graph:
    """Communities arranged on a ring with local inter-community links.

    Each community is an Erdős–Rényi block with expected degree
    ``intra_degree``; community ``i`` is linked to its ``neighbors_each_side``
    nearest ring neighbours on each side by ``inter_edges_per_link`` random
    cross edges.  Unlike :func:`planted_partition_graph`, communities that are
    far apart on the ring are also far apart in hop distance, which mirrors
    the topical locality of co-authorship networks (graphics groups are many
    hops from database groups) and keeps high-level (h = 3) negative
    correlations meaningful.
    """
    check_positive_int(num_communities, "num_communities")
    check_positive_int(community_size, "community_size")
    check_positive_int(inter_edges_per_link, "inter_edges_per_link")
    check_positive_int(neighbors_each_side, "neighbors_each_side")
    if intra_degree <= 0:
        raise ValueError(f"intra_degree must be positive, got {intra_degree}")
    rng = ensure_rng(random_state)

    total = num_communities * community_size
    graph = Graph(total)

    def members(community: int) -> np.ndarray:
        start = community * community_size
        return np.arange(start, start + community_size)

    # Intra-community edges: sample the expected number of random pairs.
    pairs_per_community = community_size * (community_size - 1) // 2
    p_intra = min(1.0, intra_degree / max(community_size - 1, 1))
    for community in range(num_communities):
        nodes = members(community)
        if pairs_per_community == 0 or p_intra == 0:
            continue
        expected = int(rng.binomial(pairs_per_community, p_intra))
        seen = set()
        guard = 0
        while len(seen) < expected and guard < 20 * expected + 100:
            guard += 1
            u, v = rng.integers(0, community_size, size=2)
            if u == v:
                continue
            seen.add((int(nodes[min(u, v)]), int(nodes[max(u, v)])))
        graph.add_edges(seen)

    # Inter-community edges: only between ring neighbours.
    for community in range(num_communities):
        for offset in range(1, neighbors_each_side + 1):
            other = (community + offset) % num_communities
            if other == community:
                continue
            nodes_here = members(community)
            nodes_there = members(other)
            for _ in range(inter_edges_per_link):
                u = int(nodes_here[int(rng.integers(0, community_size))])
                v = int(nodes_there[int(rng.integers(0, community_size))])
                graph.add_edge(u, v)
    return graph


def powerlaw_cluster_graph(num_nodes: int, edges_per_node: int,
                           triangle_probability: float,
                           random_state: RandomState = None) -> Graph:
    """Holme–Kim power-law graph with tunable clustering.

    Like Barabási–Albert but each preferential attachment step is followed,
    with probability ``triangle_probability``, by a triad-closing edge, which
    raises the clustering coefficient — closer to co-authorship networks.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    edges_per_node = check_positive_int(edges_per_node, "edges_per_node")
    triangle_probability = check_fraction(triangle_probability, "triangle_probability")
    if edges_per_node >= num_nodes:
        raise ValueError("edges_per_node must be smaller than num_nodes")
    rng = ensure_rng(random_state)
    graph = Graph(num_nodes)
    repeated: List[int] = list(range(edges_per_node))
    for new_node in range(edges_per_node, num_nodes):
        count = 0
        last_target = None
        guard = 0
        while count < edges_per_node and guard < 50 * edges_per_node:
            guard += 1
            if (
                last_target is not None
                and triangle_probability > 0
                and rng.random() < triangle_probability
                and graph.degree(last_target) > 0
            ):
                neighbours = list(graph.neighbors(last_target))
                candidate = int(neighbours[int(rng.integers(0, len(neighbours)))])
            else:
                candidate = int(repeated[int(rng.integers(0, len(repeated)))])
            if candidate == new_node or graph.has_edge(new_node, candidate):
                continue
            graph.add_edge(new_node, candidate)
            repeated.append(candidate)
            repeated.append(new_node)
            last_target = candidate
            count += 1
    return graph


def random_node_subset(num_nodes: int, count: int,
                       random_state: RandomState = None) -> np.ndarray:
    """A uniform random subset of ``count`` distinct nodes of ``range(num_nodes)``."""
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    count = check_non_negative_int(count, "count")
    if count > num_nodes:
        raise ValueError(f"cannot sample {count} nodes from {num_nodes}")
    rng = ensure_rng(random_state)
    return np.sort(rng.choice(num_nodes, size=count, replace=False)).astype(np.int64)
