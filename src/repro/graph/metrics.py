"""Descriptive graph metrics.

Used by the dataset generators to report how close the synthetic substrates
are to the paper's datasets (node/edge counts, degree distribution, distance
structure), and by tests to validate generators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.traversal import shortest_path_lengths_from
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class GraphSummary:
    """Summary statistics of a graph."""

    num_nodes: int
    num_edges: int
    min_degree: int
    max_degree: int
    mean_degree: float
    median_degree: float
    num_components: int
    largest_component_size: int
    estimated_mean_distance: Optional[float]
    estimated_diameter_lower_bound: Optional[int]

    def as_dict(self) -> dict:
        """The summary as a plain dictionary, for table rendering."""
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "min degree": self.min_degree,
            "max degree": self.max_degree,
            "mean degree": round(self.mean_degree, 3),
            "median degree": self.median_degree,
            "components": self.num_components,
            "largest component": self.largest_component_size,
            "mean distance (est.)": self.estimated_mean_distance,
            "diameter >= (est.)": self.estimated_diameter_lower_bound,
        }


def connected_components(graph: CSRGraph) -> List[np.ndarray]:
    """Connected components as arrays of node ids (largest first)."""
    remaining = np.ones(graph.num_nodes, dtype=bool)
    components: List[np.ndarray] = []
    for start in range(graph.num_nodes):
        if not remaining[start]:
            continue
        distances = shortest_path_lengths_from(graph, start)
        members = np.flatnonzero(distances >= 0)
        members = members[remaining[members]]
        remaining[members] = False
        components.append(members)
    components.sort(key=lambda member_array: member_array.size, reverse=True)
    return components


def summarize_graph(graph: CSRGraph, distance_samples: int = 20,
                    random_state: RandomState = None) -> GraphSummary:
    """Compute :class:`GraphSummary`.

    Distance statistics are estimated from BFS trees rooted at
    ``distance_samples`` random nodes (exact all-pairs distances are
    quadratic and unnecessary for a descriptive summary).
    """
    degrees = graph.degrees()
    components = connected_components(graph)
    rng = ensure_rng(random_state)

    mean_distance: Optional[float] = None
    diameter_bound: Optional[int] = None
    if graph.num_nodes > 1 and distance_samples > 0:
        sources = rng.choice(graph.num_nodes, size=min(distance_samples, graph.num_nodes),
                             replace=False)
        totals: List[float] = []
        eccentricities: List[int] = []
        for source in sources:
            distances = shortest_path_lengths_from(graph, int(source))
            reachable = distances[distances > 0]
            if reachable.size:
                totals.append(float(reachable.mean()))
                eccentricities.append(int(reachable.max()))
        if totals:
            mean_distance = float(np.mean(totals))
            diameter_bound = int(max(eccentricities))

    return GraphSummary(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        min_degree=int(degrees.min()) if degrees.size else 0,
        max_degree=int(degrees.max()) if degrees.size else 0,
        mean_degree=float(degrees.mean()) if degrees.size else 0.0,
        median_degree=float(np.median(degrees)) if degrees.size else 0.0,
        num_components=len(components),
        largest_component_size=int(components[0].size) if components else 0,
        estimated_mean_distance=mean_distance,
        estimated_diameter_lower_bound=diameter_bound,
    )


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """``hist[d]`` = number of nodes of degree ``d``."""
    degrees = graph.degrees()
    if degrees.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degrees)


def clustering_coefficient(graph: CSRGraph, nodes: Optional[np.ndarray] = None) -> float:
    """Average local clustering coefficient over ``nodes`` (or all nodes)."""
    if nodes is None:
        nodes = np.arange(graph.num_nodes)
    total = 0.0
    counted = 0
    for node in nodes:
        node = int(node)
        neighbours = graph.neighbors(node)
        k = neighbours.size
        if k < 2:
            continue
        neighbour_set = set(int(x) for x in neighbours)
        links = 0
        for u in neighbours:
            for v in graph.neighbors(int(u)):
                if int(v) in neighbour_set and int(u) < int(v):
                    links += 1
        total += 2.0 * links / (k * (k - 1))
        counted += 1
    return total / counted if counted else 0.0
