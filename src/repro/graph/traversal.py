"""h-hop BFS traversal primitives.

Three entry points implement the traversals used throughout the paper:

* :func:`bfs_vicinity` — the plain h-hop BFS from one source (Section 2,
  used to compute the density ``s^h_a(r)`` of Eq. 2).
* :func:`batch_bfs_vicinity` — Batch BFS (Algorithm 1): an h-hop BFS that
  starts from *all* event nodes at once, retrieving ``V^h_{a∪b}`` in a single
  pass with worst-case cost ``O(|V| + |E|)``.
* :class:`BFSEngine` — a reusable-buffer engine holding the visit-stamp array
  so repeated BFS calls (thousands per test) allocate nothing proportional to
  ``|V|``, with level-synchronous vectorised frontier expansion.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.exceptions import NodeNotFoundError
from repro.graph.csr import CSRGraph
from repro.utils.validation import check_non_negative_int


def _expand_frontier(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> Tuple[np.ndarray, int]:
    """Gather the concatenated neighbour lists of every frontier node.

    Returns the neighbour array (with duplicates) and the number of adjacency
    entries scanned, using a fully vectorised gather so the per-level cost is
    dominated by numpy rather than the Python interpreter.
    """
    starts = indptr[frontier]
    lengths = indptr[frontier + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype), 0
    # Build the flat index array [s_0..s_0+l_0-1, s_1..s_1+l_1-1, ...]
    cumulative = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    flat = np.arange(total, dtype=np.int64) - np.repeat(cumulative, lengths)
    flat += np.repeat(starts, lengths)
    return indices[flat], total


class BFSEngine:
    """Reusable h-hop BFS engine over a :class:`CSRGraph`.

    The engine keeps one ``visited`` stamp array for the lifetime of the
    object.  Each call bumps a stamp counter instead of clearing the array,
    which makes back-to-back searches cheap even on multi-million-node
    graphs.

    The engine also counts how many BFS calls were issued and how many nodes
    and adjacency entries were scanned — the cost accounting that the
    complexity analysis of Section 4.4 reasons about.
    """

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph
        self._visited = np.zeros(graph.num_nodes, dtype=np.int64)
        self._stamp = 0
        self.bfs_calls = 0
        self.nodes_scanned = 0
        self.edges_scanned = 0

    def reset_counters(self) -> None:
        """Zero the cost counters (the visit stamps are left untouched)."""
        self.bfs_calls = 0
        self.nodes_scanned = 0
        self.edges_scanned = 0

    def vicinity(self, source: int, hops: int) -> np.ndarray:
        """All nodes within ``hops`` of ``source`` (including the source).

        This is ``V^h_source`` of Definition 1.
        """
        self.graph._check_node(source)
        return self.multi_source_vicinity(np.array([source], dtype=np.int64), hops)

    def multi_source_vicinity(self, sources: Iterable[int], hops: int) -> np.ndarray:
        """All nodes within ``hops`` of at least one source node.

        This is Batch BFS (Algorithm 1): conceptually an ``(h+1)``-hop BFS
        from a virtual node connected to every source.  Returns ``V^h_S`` of
        Definition 2 as a numpy array (sources included, each node once).
        """
        hops = check_non_negative_int(hops, "hops")
        graph = self.graph
        indptr, indices = graph.indptr, graph.indices
        visited = self._visited
        self._stamp += 1
        stamp = self._stamp
        self.bfs_calls += 1

        source_array = np.asarray(list(sources) if not isinstance(sources, np.ndarray) else sources,
                                  dtype=np.int64)
        if source_array.size and (
            source_array.min() < 0 or source_array.max() >= graph.num_nodes
        ):
            bad = source_array[(source_array < 0) | (source_array >= graph.num_nodes)][0]
            raise NodeNotFoundError(int(bad))

        frontier = np.unique(source_array)
        visited[frontier] = stamp
        collected: List[np.ndarray] = [frontier]

        for _ in range(hops):
            if frontier.size == 0:
                break
            neighbours, scanned = _expand_frontier(indptr, indices, frontier)
            self.edges_scanned += scanned
            if neighbours.size == 0:
                frontier = neighbours
                continue
            fresh = neighbours[visited[neighbours] != stamp]
            if fresh.size == 0:
                frontier = fresh
                continue
            frontier = np.unique(fresh)
            visited[frontier] = stamp
            collected.append(frontier)

        result = np.concatenate(collected) if len(collected) > 1 else collected[0].copy()
        self.nodes_scanned += int(result.size)
        return result

    def vicinity_size(self, source: int, hops: int) -> int:
        """``|V^h_source|`` — the normaliser of Eq. 2."""
        return int(self.vicinity(source, hops).size)

    def count_marked_in_vicinity(
        self, source: int, hops: int, marked: np.ndarray
    ) -> Tuple[int, int]:
        """Count marked nodes within ``hops`` of ``source``.

        ``marked`` is a boolean array over all nodes.  Returns the pair
        ``(#marked in vicinity, vicinity size)``, i.e. the numerator and
        denominator of the density of Eq. 2 for a single event.
        """
        nodes = self.vicinity(source, hops)
        return int(marked[nodes].sum()), int(nodes.size)


def bfs_vicinity(graph: CSRGraph, source: int, hops: int) -> np.ndarray:
    """One-shot h-hop BFS; see :meth:`BFSEngine.vicinity`."""
    return BFSEngine(graph).vicinity(source, hops)


def batch_bfs_vicinity(graph: CSRGraph, sources: Iterable[int], hops: int) -> np.ndarray:
    """One-shot Batch BFS (Algorithm 1); see :meth:`BFSEngine.multi_source_vicinity`."""
    return BFSEngine(graph).multi_source_vicinity(sources, hops)


def bfs_vicinity_subgraph(
    graph: CSRGraph, source: int, hops: int
) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
    """Return the node set *and* induced edge set of a node's h-vicinity.

    Definition 1 defines the h-vicinity as the induced subgraph; the TESC
    measure itself only needs the node set, but the induced edges are exposed
    for completeness (``E^h_u``) and used by graph metrics and tests.
    """
    nodes = bfs_vicinity(graph, source, hops)
    members = set(int(node) for node in nodes)
    edges: List[Tuple[int, int]] = []
    for u in nodes:
        u = int(u)
        for v in graph.neighbors(u):
            v = int(v)
            if u < v and v in members:
                edges.append((u, v))
    return nodes, edges


def shortest_path_lengths_from(
    graph: CSRGraph, source: int, cutoff: Optional[int] = None
) -> np.ndarray:
    """Hop distances from ``source`` to every node (-1 where unreachable).

    Used by the simulation layer to place event-b nodes at a target distance
    from event-a nodes, and by tests as the ground truth for vicinities.
    """
    graph._check_node(source)
    distances = np.full(graph.num_nodes, -1, dtype=np.int64)
    distances[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size and (cutoff is None or depth < cutoff):
        depth += 1
        neighbours, _ = _expand_frontier(graph.indptr, graph.indices, frontier)
        if neighbours.size == 0:
            break
        fresh = neighbours[distances[neighbours] < 0]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        distances[frontier] = depth
    return distances


def nodes_at_distance(graph: CSRGraph, source: int, distance: int) -> np.ndarray:
    """All nodes exactly ``distance`` hops from ``source``."""
    distance = check_non_negative_int(distance, "distance")
    lengths = shortest_path_lengths_from(graph, source, cutoff=distance)
    return np.flatnonzero(lengths == distance)
