"""h-hop BFS traversal primitives.

Four entry points implement the traversals used throughout the paper:

* :func:`bfs_vicinity` — the plain h-hop BFS from one source (Section 2,
  used to compute the density ``s^h_a(r)`` of Eq. 2).
* :func:`batch_bfs_vicinity` — Batch BFS (Algorithm 1): an h-hop BFS that
  starts from *all* event nodes at once, retrieving ``V^h_{a∪b}`` in a single
  pass with worst-case cost ``O(|V| + |E|)``.
* :class:`BFSEngine` — a reusable-buffer engine holding the visit-stamp array
  so repeated BFS calls (thousands per test) allocate nothing proportional to
  ``|V|``, with level-synchronous vectorised frontier expansion.
* The *grouped* multi-source BFS (:meth:`BFSEngine.grouped_vicinity_blocks`
  and friends): many independent per-source BFS runs advanced together as one
  numpy frontier of ``(source, node)`` pairs, so workloads that need one
  vicinity per node (the vicinity-size index, the density pass over a
  reference sample, importance-weight correction) replace their per-node
  Python loops with a handful of vectorised level expansions.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.exceptions import NodeNotFoundError
from repro.graph.csr import CSRGraph
from repro.utils import deadlines
from repro.utils.validation import check_non_negative_int


def _expand_frontier(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> Tuple[np.ndarray, int]:
    """Gather the concatenated neighbour lists of every frontier node.

    Returns the neighbour array (with duplicates) and the number of adjacency
    entries scanned, using a fully vectorised gather so the per-level cost is
    dominated by numpy rather than the Python interpreter.
    """
    starts = indptr[frontier]
    lengths = indptr[frontier + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype), 0
    # Build the flat index array [s_0..s_0+l_0-1, s_1..s_1+l_1-1, ...]
    cumulative = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    flat = np.arange(total, dtype=np.int64) - np.repeat(cumulative, lengths)
    flat += np.repeat(starts, lengths)
    return indices[flat], total


def _expand_frontier_grouped(
    indptr: np.ndarray,
    indices: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Gather neighbours of a grouped frontier of ``(row, node)`` pairs.

    ``rows[i]`` identifies which source's BFS the frontier node ``cols[i]``
    belongs to.  Returns the expanded ``(row, neighbour)`` pairs (with
    duplicates) plus the number of adjacency entries scanned.
    """
    starts = indptr[cols]
    lengths = indptr[cols + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, 0
    cumulative = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    flat = np.arange(total, dtype=np.int64) - np.repeat(cumulative, lengths)
    flat += np.repeat(starts, lengths)
    return np.repeat(rows, lengths), indices[flat], total


#: Memory budget (bytes) for the per-block visit-stamp matrix of the grouped
#: BFS.  The block advances ``budget / (4 * num_nodes)`` sources together, so
#: the grouped traversal's working set stays flat regardless of graph size.
GROUPED_BLOCK_BYTES = 32_000_000


class BFSEngine:
    """Reusable h-hop BFS engine over a :class:`CSRGraph`.

    The engine keeps one ``visited`` stamp array for the lifetime of the
    object.  Each call bumps a stamp counter instead of clearing the array,
    which makes back-to-back searches cheap even on multi-million-node
    graphs.

    The engine also counts how many BFS calls were issued and how many nodes
    and adjacency entries were scanned — the cost accounting that the
    complexity analysis of Section 4.4 reasons about.
    """

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph
        self._visited = np.zeros(graph.num_nodes, dtype=np.int64)
        self._stamp = 0
        self.bfs_calls = 0
        self.nodes_scanned = 0
        self.edges_scanned = 0

    def reset_counters(self) -> None:
        """Zero the cost counters (the visit stamps are left untouched)."""
        self.bfs_calls = 0
        self.nodes_scanned = 0
        self.edges_scanned = 0

    def vicinity(self, source: int, hops: int) -> np.ndarray:
        """All nodes within ``hops`` of ``source`` (including the source).

        This is ``V^h_source`` of Definition 1.
        """
        self.graph._check_node(source)
        return self.multi_source_vicinity(np.array([source], dtype=np.int64), hops)

    def multi_source_vicinity(self, sources: Iterable[int], hops: int) -> np.ndarray:
        """All nodes within ``hops`` of at least one source node.

        This is Batch BFS (Algorithm 1): conceptually an ``(h+1)``-hop BFS
        from a virtual node connected to every source.  Returns ``V^h_S`` of
        Definition 2 as a numpy array (sources included, each node once).
        """
        hops = check_non_negative_int(hops, "hops")
        graph = self.graph
        indptr, indices = graph.indptr, graph.indices
        visited = self._visited
        self._stamp += 1
        stamp = self._stamp
        self.bfs_calls += 1

        source_array = np.asarray(list(sources) if not isinstance(sources, np.ndarray) else sources,
                                  dtype=np.int64)
        if source_array.size and (
            source_array.min() < 0 or source_array.max() >= graph.num_nodes
        ):
            bad = source_array[(source_array < 0) | (source_array >= graph.num_nodes)][0]
            raise NodeNotFoundError(int(bad))

        frontier = np.unique(source_array)
        visited[frontier] = stamp
        collected: List[np.ndarray] = [frontier]

        for _ in range(hops):
            if frontier.size == 0:
                break
            neighbours, scanned = _expand_frontier(indptr, indices, frontier)
            self.edges_scanned += scanned
            if neighbours.size == 0:
                frontier = neighbours
                continue
            fresh = neighbours[visited[neighbours] != stamp]
            if fresh.size == 0:
                frontier = fresh
                continue
            frontier = np.unique(fresh)
            visited[frontier] = stamp
            collected.append(frontier)

        result = np.concatenate(collected) if len(collected) > 1 else collected[0].copy()
        self.nodes_scanned += int(result.size)
        return result

    # -- grouped per-source BFS --------------------------------------------

    def _check_sources(self, sources: Iterable[int]) -> np.ndarray:
        source_array = np.asarray(
            list(sources) if not isinstance(sources, np.ndarray) else sources,
            dtype=np.int64,
        )
        if source_array.ndim != 1:
            source_array = source_array.ravel()
        if source_array.size and (
            source_array.min() < 0 or source_array.max() >= self.graph.num_nodes
        ):
            bad = source_array[
                (source_array < 0) | (source_array >= self.graph.num_nodes)
            ][0]
            raise NodeNotFoundError(int(bad))
        return source_array

    def _grouped_blocks(
        self,
        sources: np.ndarray,
        hops: int,
        block_size: Optional[int],
    ) -> Iterator[Tuple[int, np.ndarray, Iterator[Tuple[np.ndarray, np.ndarray]]]]:
        """Shared driver of the grouped per-source BFS.

        Splits ``sources`` into blocks sized to the
        :data:`GROUPED_BLOCK_BYTES` stamp-matrix budget and yields
        ``(offset, block, levels)`` where ``levels`` iterates the fresh
        ``(rows, cols)`` pairs of each BFS level (level 0 first; ``rows`` are
        block-local source indices, ascending within a level).  Each level is
        one vectorised expand/filter/dedup pass over the whole block; the
        stamp matrix gives O(1) visited tests without any per-level sorting
        of previously seen nodes.  ``levels`` must be fully consumed before
        the next block is requested (the stamp matrix is reused).

        ``sources`` must already be validated by :meth:`_check_sources` —
        every public entry point validates exactly once.
        """
        hops = check_non_negative_int(hops, "hops")
        num_nodes = self.graph.num_nodes
        source_array = sources
        if block_size is None:
            block_size = max(1, GROUPED_BLOCK_BYTES // (4 * max(num_nodes, 1)))
        block_size = max(1, check_non_negative_int(block_size, "block_size"))

        visited: Optional[np.ndarray] = None
        for index, offset in enumerate(range(0, source_array.size, block_size)):
            # Each block is the grouped pass's natural cancellation grain:
            # one cheap contextvar read per block, no per-node cost.
            deadlines.checkpoint()
            block = source_array[offset:offset + block_size]
            if visited is None:
                visited = np.zeros(
                    (min(block_size, source_array.size), num_nodes),
                    dtype=np.int32,
                )
            self.bfs_calls += block.size
            # Each block consumes ``hops + 1`` stamp values (one per level).
            base_stamp = np.int32(1 + index * (hops + 1))
            yield offset, block, self._grouped_levels(
                block, hops, visited, base_stamp
            )

    def _grouped_levels(
        self,
        block: np.ndarray,
        hops: int,
        visited: np.ndarray,
        base_stamp: np.int32,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        indptr, indices = self.graph.indptr, self.graph.indices
        num_nodes = self.graph.num_nodes
        rows = np.arange(block.size, dtype=np.int64)
        cols = block
        visited[rows, cols] = base_stamp
        self.nodes_scanned += int(rows.size)
        yield rows, cols
        stamp = base_stamp
        block_flat = visited[:block.size].reshape(-1)
        for _ in range(hops):
            if cols.size == 0:
                return
            rows, cols, scanned = _expand_frontier_grouped(
                indptr, indices, rows, cols
            )
            self.edges_scanned += scanned
            if cols.size == 0:
                return
            # Freshness is one stamp gather (values >= base_stamp were
            # visited at an earlier level of this block); duplicates among
            # the fresh candidates are collapsed by the scatter itself, and
            # the deduplicated frontier is recovered — already sorted
            # row-major — by one flat scan for the level's stamp.  No sort
            # ever touches the candidate stream.
            seen = visited[rows, cols] >= base_stamp
            rows = rows[~seen]
            cols = cols[~seen]
            if rows.size == 0:
                return
            stamp = np.int32(stamp + 1)
            if rows.size * 512 < block_flat.size:
                # Sparse level: sorting the (few) fresh candidates beats
                # scanning the whole stamp matrix.
                keys = np.unique(rows * num_nodes + cols)
                rows = keys // num_nodes
                cols = keys - rows * num_nodes
                visited[rows, cols] = stamp
            else:
                visited[rows, cols] = stamp
                flat = np.flatnonzero(block_flat == stamp)
                rows = flat // num_nodes
                cols = flat - rows * num_nodes
            self.nodes_scanned += int(rows.size)
            yield rows, cols

    def grouped_vicinity_blocks(
        self,
        sources: Iterable[int],
        hops: int,
        block_size: Optional[int] = None,
    ) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Per-source h-hop BFS for many sources, a block at a time.

        Unlike :meth:`multi_source_vicinity` (which merges all sources into
        one traversal), this runs one *independent* BFS per source, but
        advances a whole block of them together: each level is one vectorised
        expand/filter/dedup pass over a flat frontier of ``(source, node)``
        pairs, so the Python interpreter executes ``O(hops)`` statements per
        block instead of ``O(hops)`` per source.

        Yields ``(offset, offsets, members)`` triples in CSR layout: the
        vicinity of ``sources[offset + i]`` is the sorted id array
        ``members[offsets[i]:offsets[i + 1]]``.
        """
        num_nodes = self.graph.num_nodes
        for offset, block, levels in self._grouped_blocks(
            self._check_sources(sources), hops, block_size
        ):
            collected = [rows * num_nodes + cols for rows, cols in levels]
            keys = (
                np.sort(np.concatenate(collected))
                if len(collected) > 1
                else np.sort(collected[0])
            )
            # Row-major keys: sorting groups members by source, ids ascending.
            member_rows = keys // num_nodes
            members = keys - member_rows * num_nodes
            offsets = np.zeros(block.size + 1, dtype=np.int64)
            np.cumsum(
                np.bincount(member_rows, minlength=block.size), out=offsets[1:]
            )
            yield offset, offsets, members

    def vicinity_sizes(
        self,
        sources: Iterable[int],
        hops: int,
        block_size: Optional[int] = None,
    ) -> np.ndarray:
        """``|V^h_v|`` for every source, via the grouped BFS.

        This is the vectorised offline pass behind
        :meth:`~repro.graph.vicinity.VicinityIndex.precompute`.
        """
        source_array = self._check_sources(sources)
        sizes = np.zeros(source_array.size, dtype=np.int64)
        for offset, block, levels in self._grouped_blocks(
            source_array, hops, block_size
        ):
            for rows, _cols in levels:
                sizes[offset:offset + block.size] += np.bincount(
                    rows, minlength=block.size
                )
        return sizes

    def grouped_marked_counts(
        self,
        sources: Iterable[int],
        hops: int,
        indicator_matrix: np.ndarray,
        block_size: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Marked-node counts of every source's vicinity, for many markings.

        ``indicator_matrix`` is ``(num_markings, num_nodes)`` boolean (one row
        per event).  Returns ``(counts, sizes)`` where ``counts[m, s]`` is the
        number of marked nodes of marking ``m`` inside ``V^h_{sources[s]}``
        and ``sizes[s] = |V^h_{sources[s]}|`` — the numerators and
        denominators of Eq. 2 for a whole reference sample at once.  Per BFS
        level, the counts of *all* markings are one fancy-indexed gather plus
        one segmented reduction instead of one Python loop iteration per
        reference node.
        """
        source_array = self._check_sources(sources)
        # int32 keeps the gathered slices small; per-segment sums are bounded
        # by num_nodes, which always fits.
        indicators = np.ascontiguousarray(indicator_matrix, dtype=np.int32)
        if indicators.ndim != 2 or indicators.shape[1] != self.graph.num_nodes:
            raise ValueError(
                "indicator_matrix must have shape (num_markings, num_nodes), "
                f"got {indicators.shape}"
            )
        counts = np.zeros((indicators.shape[0], source_array.size), dtype=np.int64)
        sizes = np.zeros(source_array.size, dtype=np.int64)
        for offset, block, levels in self._grouped_blocks(
            source_array, hops, block_size
        ):
            for rows, cols in levels:
                sizes[offset:offset + block.size] += np.bincount(
                    rows, minlength=block.size
                )
                if not indicators.shape[0]:
                    continue
                # ``rows`` is ascending within a level, so a reduceat over
                # the row-change boundaries sums each source's segment.
                boundaries = np.concatenate(
                    ([0], np.flatnonzero(np.diff(rows)) + 1)
                )
                row_ids = rows[boundaries]
                counts[:, offset + row_ids] += np.add.reduceat(
                    indicators[:, cols], boundaries, axis=1
                )
        return counts, sizes

    def vicinity_size(self, source: int, hops: int) -> int:
        """``|V^h_source|`` — the normaliser of Eq. 2."""
        return int(self.vicinity(source, hops).size)

    def count_marked_in_vicinity(
        self, source: int, hops: int, marked: np.ndarray
    ) -> Tuple[int, int]:
        """Count marked nodes within ``hops`` of ``source``.

        ``marked`` is a boolean array over all nodes.  Returns the pair
        ``(#marked in vicinity, vicinity size)``, i.e. the numerator and
        denominator of the density of Eq. 2 for a single event.
        """
        nodes = self.vicinity(source, hops)
        return int(marked[nodes].sum()), int(nodes.size)


def bfs_vicinity(graph: CSRGraph, source: int, hops: int) -> np.ndarray:
    """One-shot h-hop BFS; see :meth:`BFSEngine.vicinity`."""
    return BFSEngine(graph).vicinity(source, hops)


def batch_bfs_vicinity(graph: CSRGraph, sources: Iterable[int], hops: int) -> np.ndarray:
    """One-shot Batch BFS (Algorithm 1); see :meth:`BFSEngine.multi_source_vicinity`."""
    return BFSEngine(graph).multi_source_vicinity(sources, hops)


def dirty_vicinity(
    old_graph: CSRGraph,
    new_graph: CSRGraph,
    endpoints: Iterable[int],
    radius: int,
) -> np.ndarray:
    """Nodes whose h-vicinity an edge patch may have changed.

    An edge delta ``(u, v)`` changes ``V^h_r`` only when ``r`` lies within
    ``h - 1`` hops of ``u`` or ``v`` — along a gained path the prefix up to
    the first added edge exists in the *new* graph, along a lost path the
    prefix up to the first removed edge exists in the *old* graph.  The union
    of a ``radius``-hop Batch BFS from the endpoints on both graphs therefore
    covers every node whose vicinity membership could differ; callers pass
    ``radius = h - 1``.  Returns a sorted node array (empty for no
    endpoints).
    """
    endpoint_array = np.asarray(
        list(endpoints) if not isinstance(endpoints, np.ndarray) else endpoints,
        dtype=np.int64,
    )
    if endpoint_array.size == 0:
        return np.empty(0, dtype=np.int64)
    before = BFSEngine(old_graph).multi_source_vicinity(endpoint_array, radius)
    after = BFSEngine(new_graph).multi_source_vicinity(endpoint_array, radius)
    return np.union1d(before, after)


def bfs_vicinity_subgraph(
    graph: CSRGraph, source: int, hops: int
) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
    """Return the node set *and* induced edge set of a node's h-vicinity.

    Definition 1 defines the h-vicinity as the induced subgraph; the TESC
    measure itself only needs the node set, but the induced edges are exposed
    for completeness (``E^h_u``) and used by graph metrics and tests.
    """
    nodes = bfs_vicinity(graph, source, hops)
    members = set(int(node) for node in nodes)
    edges: List[Tuple[int, int]] = []
    for u in nodes:
        u = int(u)
        for v in graph.neighbors(u):
            v = int(v)
            if u < v and v in members:
                edges.append((u, v))
    return nodes, edges


def shortest_path_lengths_from(
    graph: CSRGraph, source: int, cutoff: Optional[int] = None
) -> np.ndarray:
    """Hop distances from ``source`` to every node (-1 where unreachable).

    Used by the simulation layer to place event-b nodes at a target distance
    from event-a nodes, and by tests as the ground truth for vicinities.
    """
    graph._check_node(source)
    distances = np.full(graph.num_nodes, -1, dtype=np.int64)
    distances[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size and (cutoff is None or depth < cutoff):
        depth += 1
        neighbours, _ = _expand_frontier(graph.indptr, graph.indices, frontier)
        if neighbours.size == 0:
            break
        fresh = neighbours[distances[neighbours] < 0]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        distances[frontier] = depth
    return distances


def nodes_at_distance(graph: CSRGraph, source: int, distance: int) -> np.ndarray:
    """All nodes exactly ``distance`` hops from ``source``."""
    distance = check_non_negative_int(distance, "distance")
    lengths = shortest_path_lengths_from(graph, source, cutoff=distance)
    return np.flatnonzero(lengths == distance)
