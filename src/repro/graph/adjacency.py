"""Mutable undirected graph stored as adjacency sets.

This is the construction-time representation: nodes are dense integer ids
``0..num_nodes-1`` and edges are undirected and unweighted, matching the
paper's setting ("for the sake of simplicity, we assume G is undirected and
unweighted").  The hot traversal paths convert to :class:`repro.graph.csr.CSRGraph`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Set, Tuple

from repro.exceptions import EdgeError, NodeNotFoundError


class Graph:
    """An undirected, unweighted graph over dense integer node ids.

    Parameters
    ----------
    num_nodes:
        Number of nodes to pre-allocate.  Nodes are identified by the
        integers ``0 .. num_nodes - 1``; more can be added with
        :meth:`add_node` / :meth:`add_nodes`.

    Notes
    -----
    Self-loops are rejected and parallel edges are collapsed, because neither
    affects h-vicinities but both would distort density normalisation.
    """

    def __init__(self, num_nodes: int = 0) -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
        self._adjacency: List[Set[int]] = [set() for _ in range(num_nodes)]
        self._num_edges = 0

    # -- construction -----------------------------------------------------

    def add_node(self) -> int:
        """Append a new isolated node and return its id."""
        self._adjacency.append(set())
        return len(self._adjacency) - 1

    def add_nodes(self, count: int) -> List[int]:
        """Append ``count`` isolated nodes and return their ids."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        first = len(self._adjacency)
        self._adjacency.extend(set() for _ in range(count))
        return list(range(first, first + count))

    def add_edge(self, u: int, v: int) -> bool:
        """Add the undirected edge ``(u, v)``.

        Returns ``True`` if the edge was new, ``False`` if it already existed.
        Raises :class:`EdgeError` for self-loops and
        :class:`NodeNotFoundError` for unknown endpoints.
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise EdgeError(f"self-loop ({u}, {v}) is not allowed")
        if v in self._adjacency[u]:
            return False
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._num_edges += 1
        return True

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> int:
        """Add many edges; returns how many were actually new."""
        added = 0
        for u, v in edges:
            if self.add_edge(u, v):
                added += 1
        return added

    def remove_edge(self, u: int, v: int) -> bool:
        """Remove the undirected edge ``(u, v)``; returns ``True`` if present."""
        self._check_node(u)
        self._check_node(v)
        if v not in self._adjacency[u]:
            return False
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._num_edges -= 1
        return True

    # -- queries ----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the graph."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges in the graph."""
        return self._num_edges

    def has_node(self, node: int) -> bool:
        """Whether ``node`` is a valid node id."""
        return 0 <= node < len(self._adjacency)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists."""
        return self.has_node(u) and self.has_node(v) and v in self._adjacency[u]

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        self._check_node(node)
        return len(self._adjacency[node])

    def neighbors(self, node: int) -> Set[int]:
        """The neighbour set of ``node`` (a copy is *not* made; do not mutate)."""
        self._check_node(node)
        return self._adjacency[node]

    def nodes(self) -> range:
        """All node ids."""
        return range(len(self._adjacency))

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over undirected edges once each, as ``(u, v)`` with ``u < v``."""
        for u, neighbours in enumerate(self._adjacency):
            for v in neighbours:
                if u < v:
                    yield (u, v)

    def copy(self) -> "Graph":
        """A deep copy of this graph."""
        clone = Graph(self.num_nodes)
        clone._adjacency = [set(neigh) for neigh in self._adjacency]
        clone._num_edges = self._num_edges
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adjacency == other._adjacency

    def __repr__(self) -> str:
        return f"Graph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"

    # -- conversion --------------------------------------------------------

    def to_csr(self) -> "CSRGraph":
        """Convert to the immutable CSR representation used by traversal."""
        from repro.graph.csr import CSRGraph

        return CSRGraph.from_adjacency(self._adjacency)

    # -- internal ----------------------------------------------------------

    def _check_node(self, node: int) -> None:
        if not (0 <= node < len(self._adjacency)):
            raise NodeNotFoundError(node)
