"""Graph substrate: data structures, traversal, generators and indices.

The hot paths of the TESC framework (h-hop BFS for density computation and
reference-node sampling) run on the immutable :class:`CSRGraph`.  The mutable
:class:`Graph` is used for construction, file IO and the edge add/remove
experiments (Figure 8), and converts to CSR with :meth:`Graph.to_csr`.
"""

from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.graph.builder import GraphBuilder
from repro.graph.traversal import (
    BFSEngine,
    batch_bfs_vicinity,
    bfs_vicinity,
    bfs_vicinity_subgraph,
)
from repro.graph.vicinity import VicinityIndex
from repro.graph.generators import (
    barabasi_albert_graph,
    community_ring_graph,
    erdos_renyi_graph,
    planted_partition_graph,
    powerlaw_cluster_graph,
    ring_lattice_graph,
    watts_strogatz_graph,
)
from repro.graph.mutation import add_random_edges, remove_random_edges
from repro.graph.io import (
    read_edge_list,
    read_event_file,
    write_edge_list,
    write_event_file,
)
from repro.graph.metrics import GraphSummary, summarize_graph
from repro.graph.convert import from_networkx, to_networkx

__all__ = [
    "Graph",
    "CSRGraph",
    "GraphBuilder",
    "BFSEngine",
    "bfs_vicinity",
    "bfs_vicinity_subgraph",
    "batch_bfs_vicinity",
    "VicinityIndex",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "community_ring_graph",
    "watts_strogatz_graph",
    "ring_lattice_graph",
    "planted_partition_graph",
    "powerlaw_cluster_graph",
    "add_random_edges",
    "remove_random_edges",
    "read_edge_list",
    "write_edge_list",
    "read_event_file",
    "write_event_file",
    "GraphSummary",
    "summarize_graph",
    "from_networkx",
    "to_networkx",
]
