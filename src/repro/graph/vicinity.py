"""Pre-computed vicinity-size index.

Rejection sampling and Importance sampling (Section 4.2) need ``|V^h_v|`` for
every event node ``v``.  The paper pre-computes these sizes offline with an
``h_max``-hop BFS from every node; the index costs only ``O(|V|)`` space per
vicinity level and "can be efficiently updated as the graph changes".

:class:`VicinityIndex` reproduces that index, with optional lazy computation
(only the nodes that are actually queried are expanded) so the synthetic
experiments do not pay for a full offline pass when only a small ``V_{a∪b}``
is involved.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.traversal import BFSEngine
from repro.utils.validation import check_vicinity_level


class VicinityIndex:
    """Index of ``|V^h_v|`` for one or more vicinity levels.

    Parameters
    ----------
    graph:
        The CSR graph to index.
    levels:
        Vicinity levels to support (default ``(1, 2, 3)``, the levels the
        paper focuses on).
    lazy:
        When ``True`` (default) sizes are computed on first access and
        memoised; :meth:`precompute` forces the full offline pass.
    """

    def __init__(
        self,
        graph: CSRGraph,
        levels: Iterable[int] = (1, 2, 3),
        lazy: bool = True,
    ) -> None:
        self.graph = graph
        self.levels = tuple(sorted({check_vicinity_level(level) for level in levels}))
        if not self.levels:
            raise ValueError("at least one vicinity level is required")
        self._engine = BFSEngine(graph)
        self._sizes: Dict[int, np.ndarray] = {
            level: np.full(graph.num_nodes, -1, dtype=np.int64) for level in self.levels
        }
        if not lazy:
            self.precompute()

    def precompute(self, level: Optional[int] = None) -> None:
        """Compute sizes for every node (the paper's offline pass).

        The pass runs through the grouped multi-source BFS
        (:meth:`~repro.graph.traversal.BFSEngine.vicinity_sizes`), which
        advances a whole block of per-node searches per vectorised frontier
        expansion instead of looping one Python BFS per node.
        """
        levels = [level] if level is not None else list(self.levels)
        for lvl in levels:
            self._require_level(lvl)
            self._fill_missing(np.arange(self.graph.num_nodes, dtype=np.int64), lvl)

    def _fill_missing(self, nodes: np.ndarray, level: int) -> None:
        """Compute and memoise sizes for the uncached nodes among ``nodes``."""
        sizes = self._sizes[level]
        missing = nodes[sizes[nodes] < 0]
        if missing.size:
            sizes[missing] = self._engine.vicinity_sizes(missing, level)

    def size(self, node: int, level: int) -> int:
        """``|V^h_node|`` for ``h = level`` (computed lazily if needed)."""
        self._require_level(level)
        cached = self._sizes[level][node]
        if cached >= 0:
            return int(cached)
        size = int(self._engine.vicinity(node, level).size)
        self._sizes[level][node] = size
        return size

    def sizes(self, nodes: Iterable[int], level: int) -> np.ndarray:
        """Vector of ``|V^h_v|`` for the given nodes.

        Uncached nodes are expanded together through one grouped BFS rather
        than one at a time, so a cold index pays a few vectorised passes
        instead of ``len(nodes)`` Python-level searches.
        """
        self._require_level(level)
        node_array = np.fromiter(
            (int(node) for node in nodes), dtype=np.int64
        )
        self._fill_missing(np.unique(node_array), level)
        return self._sizes[level][node_array].copy()

    def total_size(self, nodes: Iterable[int], level: int) -> int:
        """``N_sum = sum_v |V^h_v|`` over the given nodes (Section 4.2)."""
        return int(self.sizes(nodes, level).sum())

    def invalidate(self, nodes: Optional[Iterable[int]] = None) -> None:
        """Drop cached sizes after a graph mutation.

        ``nodes=None`` clears the whole index; otherwise only the given nodes
        are invalidated (callers should pass every node whose ``h_max``
        vicinity touched the mutated edge).
        """
        if nodes is None:
            for level in self.levels:
                self._sizes[level].fill(-1)
            return
        node_array = np.fromiter((int(n) for n in nodes), dtype=np.int64)
        for level in self.levels:
            self._sizes[level][node_array] = -1

    def rebase(
        self,
        graph: CSRGraph,
        dirty: Optional[Mapping[int, Iterable[int]]] = None,
    ) -> "VicinityIndex":
        """A new index over a structurally patched graph, keeping clean sizes.

        ``dirty`` maps each level to the nodes whose ``|V^h_v|`` may have
        changed under the patch (nodes within ``h - 1`` hops of a touched
        edge endpoint); those entries are dropped, every other memoised size
        is carried over.  ``dirty=None`` carries nothing over (a full
        invalidation).  This is the "efficiently updated as the graph
        changes" property the paper claims for the offline index.
        """
        rebased = VicinityIndex(graph, levels=self.levels, lazy=True)
        if dirty is None or graph.num_nodes != self.graph.num_nodes:
            return rebased
        for level in self.levels:
            rebased._sizes[level][:] = self._sizes[level]
            nodes = dirty.get(level)
            if nodes is None:
                rebased._sizes[level].fill(-1)
                continue
            node_array = np.asarray(
                nodes if isinstance(nodes, np.ndarray) else list(nodes),
                dtype=np.int64,
            )
            if node_array.size:
                rebased._sizes[level][node_array] = -1
        return rebased

    def export_sizes(self) -> Dict[int, np.ndarray]:
        """Copies of the memoised ``|V^h_v|`` columns, keyed by level.

        Uncomputed entries are ``-1``; the checkpoint store persists the
        columns verbatim so a restored index resumes with exactly the warmth
        it had when the checkpoint was cut.
        """
        return {level: sizes.copy() for level, sizes in self._sizes.items()}

    def load_sizes(self, level: int, sizes: np.ndarray) -> None:
        """Install a persisted ``|V^h_v|`` column for ``level``.

        The column must be one int64 entry per node (``-1`` marking
        uncomputed); unknown levels raise ``KeyError`` and mismatched lengths
        raise ``ValueError`` rather than silently serving wrong sizes.
        """
        self._require_level(level)
        column = np.asarray(sizes, dtype=np.int64)
        if column.shape != (self.graph.num_nodes,):
            raise ValueError(
                f"vicinity column for level {level} has shape {column.shape}, "
                f"expected ({self.graph.num_nodes},)"
            )
        self._sizes[level] = column.copy()

    def is_cached(self, node: int, level: int) -> bool:
        """Whether the size for ``(node, level)`` is already memoised."""
        self._require_level(level)
        return bool(self._sizes[level][node] >= 0)

    def _require_level(self, level: int) -> None:
        if level not in self._sizes:
            raise KeyError(
                f"vicinity level {level} is not indexed; available: {self.levels}"
            )
