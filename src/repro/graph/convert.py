"""networkx interoperability.

networkx is never used on the hot path, but converting back and forth lets
tests cross-check traversal results against a reference implementation and
lets downstream users bring their own networkx graphs to the TESC API.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import networkx as nx

from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph


def from_networkx(nx_graph: "nx.Graph") -> Tuple[Graph, Dict[Hashable, int]]:
    """Convert a networkx graph to a dense-id :class:`Graph`.

    Directed graphs are treated as undirected (matching the paper's setting)
    and self-loops are dropped.  Returns the graph and the label→id mapping.
    """
    undirected = nx_graph.to_undirected() if nx_graph.is_directed() else nx_graph
    labels = list(undirected.nodes())
    label_to_id = {label: index for index, label in enumerate(labels)}
    graph = Graph(len(labels))
    for u, v in undirected.edges():
        if u == v:
            continue
        graph.add_edge(label_to_id[u], label_to_id[v])
    return graph, label_to_id


def to_networkx(graph, labels: Optional[List[Hashable]] = None) -> "nx.Graph":
    """Convert a :class:`Graph` or :class:`CSRGraph` to networkx."""
    if not isinstance(graph, (Graph, CSRGraph)):
        raise TypeError(f"expected Graph or CSRGraph, got {type(graph).__name__}")
    nx_graph = nx.Graph()
    if labels is not None and len(labels) != graph.num_nodes:
        raise ValueError("labels length must equal the number of nodes")
    name = (lambda node: labels[node]) if labels is not None else (lambda node: node)
    nx_graph.add_nodes_from(name(node) for node in range(graph.num_nodes))
    nx_graph.add_edges_from((name(u), name(v)) for u, v in graph.edges())
    return nx_graph
