"""Graph and event file IO.

Two simple text formats cover everything the experiments need:

* **edge list** — one ``u<whitespace>v`` pair per line, ``#`` comments
  allowed; node labels may be arbitrary strings and are densified through
  :class:`~repro.graph.builder.GraphBuilder`.
* **event file** — one ``event_name<TAB>node_label`` record per line, mapping
  events (keywords, alert types, products) to the nodes they occurred on.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import GraphFormatError
from repro.graph.adjacency import Graph
from repro.graph.builder import GraphBuilder


def read_edge_list(path: str, comment: str = "#") -> Tuple[Graph, List[str]]:
    """Read an edge-list file.

    Returns the graph and the list of node labels indexed by dense node id.
    """
    if not os.path.exists(path):
        raise GraphFormatError(f"edge list file not found: {path}")
    builder = GraphBuilder()
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{path}:{line_number}: expected 'u v', got {line!r}"
                )
            builder.add_edge(parts[0], parts[1])
    return builder.build(), [str(label) for label in builder.labels()]


def write_edge_list(graph: Graph, path: str,
                    labels: Optional[Sequence[str]] = None) -> None:
    """Write a graph to an edge-list file (labels default to node ids)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
        for u, v in graph.edges():
            lu = labels[u] if labels is not None else u
            lv = labels[v] if labels is not None else v
            handle.write(f"{lu}\t{lv}\n")


def read_event_file(path: str, label_to_id: Optional[Mapping[str, int]] = None,
                    comment: str = "#") -> Dict[str, List[int]]:
    """Read an event file into ``{event_name: [node ids]}``.

    When ``label_to_id`` is given, node labels are translated to dense ids
    and unknown labels raise :class:`GraphFormatError`; otherwise labels must
    already be integer node ids.
    """
    if not os.path.exists(path):
        raise GraphFormatError(f"event file not found: {path}")
    events: Dict[str, List[int]] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.rstrip("\n")
            if not line.strip() or line.startswith(comment):
                continue
            parts = line.split("\t") if "\t" in line else line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{path}:{line_number}: expected 'event<TAB>node', got {line!r}"
                )
            event, label = parts[0], parts[1]
            if label_to_id is not None:
                if label not in label_to_id:
                    raise GraphFormatError(
                        f"{path}:{line_number}: unknown node label {label!r}"
                    )
                node = int(label_to_id[label])
            else:
                try:
                    node = int(label)
                except ValueError as exc:
                    raise GraphFormatError(
                        f"{path}:{line_number}: node label {label!r} is not an id "
                        "and no label mapping was provided"
                    ) from exc
            events.setdefault(event, []).append(node)
    return events


def write_event_file(events: Mapping[str, Iterable[int]], path: str,
                     labels: Optional[Sequence[str]] = None) -> None:
    """Write ``{event: node ids}`` to an event file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# event\tnode\n")
        for event in sorted(events):
            for node in events[event]:
                label = labels[node] if labels is not None else node
                handle.write(f"{event}\t{label}\n")
