"""Random edge addition and removal.

Section 5.2.3 (Figure 8) studies the impact of graph density on the
correlation results by "randomly adding/removing edges" in the DBLP graph.
These helpers perform exactly that perturbation on the mutable
:class:`~repro.graph.adjacency.Graph`.

Each helper optionally reports the concrete edge deltas it applied
(``with_deltas=True``), in application order, as ``(op, u, v)`` tuples with
``op`` in ``{"add", "remove"}`` — the shape the streaming subsystem's
:class:`~repro.streaming.DeltaLog` replays.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from repro.graph.adjacency import Graph
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_non_negative_int

#: One applied mutation: ``("add" | "remove", u, v)``.
EdgeDelta = Tuple[str, int, int]

MutationResult = Union[Graph, Tuple[Graph, List[EdgeDelta]]]


def remove_random_edges(graph: Graph, count: int,
                        random_state: RandomState = None,
                        in_place: bool = False,
                        with_deltas: bool = False) -> MutationResult:
    """Remove ``count`` uniformly chosen edges.

    Removing edges tends to *increase* distances among nodes, which is why
    the paper observes recall of positive pairs declining under edge removal.
    If ``count`` exceeds the number of edges, every edge is removed.

    With ``with_deltas=True`` the return value is ``(graph, deltas)`` where
    ``deltas`` lists every removed edge as ``("remove", u, v)``; the default
    keeps the historical Graph-only return.
    """
    count = check_non_negative_int(count, "count")
    target = graph if in_place else graph.copy()
    deltas: List[EdgeDelta] = []
    edges: List[Tuple[int, int]] = list(target.edges())
    if edges:
        rng = ensure_rng(random_state)
        count = min(count, len(edges))
        chosen = rng.choice(len(edges), size=count, replace=False)
        for index in chosen:
            u, v = edges[int(index)]
            target.remove_edge(u, v)
            deltas.append(("remove", u, v))
    if with_deltas:
        return target, deltas
    return target


def add_random_edges(graph: Graph, count: int,
                     random_state: RandomState = None,
                     in_place: bool = False,
                     with_deltas: bool = False) -> MutationResult:
    """Add ``count`` uniformly chosen new edges.

    Adding edges makes nodes nearer one another, which is why the paper
    observes recall of negative pairs declining under edge addition.  The
    helper rejects duplicates and self-loops; it gives up (returning fewer
    additions) only if the graph becomes complete.

    With ``with_deltas=True`` the return value is ``(graph, deltas)`` where
    ``deltas`` lists every added edge as ``("add", u, v)``.
    """
    count = check_non_negative_int(count, "count")
    target = graph if in_place else graph.copy()
    num_nodes = target.num_nodes
    max_edges = num_nodes * (num_nodes - 1) // 2
    rng = ensure_rng(random_state)
    deltas: List[EdgeDelta] = []
    added = 0
    guard = 0
    guard_limit = 100 * count + 1000
    while added < count and target.num_edges < max_edges and guard < guard_limit:
        guard += 1
        u = int(rng.integers(0, num_nodes))
        v = int(rng.integers(0, num_nodes))
        if u == v:
            continue
        if target.add_edge(u, v):
            added += 1
            deltas.append(("add", u, v))
    if with_deltas:
        return target, deltas
    return target


def rewire_random_edges(graph: Graph, count: int,
                        random_state: RandomState = None,
                        in_place: bool = False,
                        with_deltas: bool = False) -> MutationResult:
    """Rewire ``count`` edges: remove a random edge, add a random new one.

    Keeps the edge count constant while perturbing structure; used by
    robustness tests and the ablation benchmarks.  With ``with_deltas=True``
    the interleaved remove/add deltas are returned alongside the graph.
    """
    count = check_non_negative_int(count, "count")
    rng = ensure_rng(random_state)
    target = graph if in_place else graph.copy()
    deltas: List[EdgeDelta] = []
    for _ in range(count):
        _, removed = remove_random_edges(
            target, 1, random_state=rng, in_place=True, with_deltas=True
        )
        _, added = add_random_edges(
            target, 1, random_state=rng, in_place=True, with_deltas=True
        )
        deltas.extend(removed)
        deltas.extend(added)
    if with_deltas:
        return target, deltas
    return target
