"""Incremental graph builder.

`GraphBuilder` accepts arbitrary hashable node labels (author names, IP
addresses, user handles), assigns dense integer ids, and produces both the
CSR graph and the label mapping.  The synthetic dataset generators and the
edge-list reader are built on top of it.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph


class GraphBuilder:
    """Accumulate labelled edges and build a dense-id graph.

    Examples
    --------
    >>> builder = GraphBuilder()
    >>> builder.add_edge("alice", "bob")
    >>> builder.add_edge("bob", "carol")
    >>> graph = builder.build()
    >>> graph.num_nodes, graph.num_edges
    (3, 2)
    >>> builder.node_id("carol")
    2
    """

    def __init__(self) -> None:
        self._labels: Dict[Hashable, int] = {}
        self._order: List[Hashable] = []
        self._edges: List[Tuple[int, int]] = []

    def add_node(self, label: Hashable) -> int:
        """Register ``label`` (if new) and return its dense id."""
        node_id = self._labels.get(label)
        if node_id is None:
            node_id = len(self._order)
            self._labels[label] = node_id
            self._order.append(label)
        return node_id

    def add_edge(self, source: Hashable, target: Hashable) -> None:
        """Register an undirected edge between two labelled nodes."""
        u = self.add_node(source)
        v = self.add_node(target)
        if u != v:
            self._edges.append((u, v))

    def add_edges(self, edges: Iterable[Tuple[Hashable, Hashable]]) -> None:
        """Register many labelled edges."""
        for source, target in edges:
            self.add_edge(source, target)

    @property
    def num_nodes(self) -> int:
        """Number of distinct labels registered so far."""
        return len(self._order)

    @property
    def num_edge_records(self) -> int:
        """Number of edge records registered (duplicates not collapsed yet)."""
        return len(self._edges)

    def node_id(self, label: Hashable) -> Optional[int]:
        """Dense id for ``label``, or ``None`` if it was never registered."""
        return self._labels.get(label)

    def label_of(self, node_id: int) -> Hashable:
        """Label originally supplied for dense id ``node_id``."""
        return self._order[node_id]

    def labels(self) -> List[Hashable]:
        """All labels in dense-id order."""
        return list(self._order)

    def build(self) -> Graph:
        """Build the mutable :class:`Graph` (duplicates collapsed)."""
        graph = Graph(len(self._order))
        graph.add_edges(self._edges)
        return graph

    def build_csr(self) -> CSRGraph:
        """Build the immutable :class:`CSRGraph` directly."""
        return CSRGraph.from_edges(len(self._order), self._edges)
